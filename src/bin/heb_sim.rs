//! `heb-sim` — run a configurable HEB simulation from the command line.
//!
//! ```bash
//! heb-sim --policy heb-d --hours 8 --budget 260 --capacity 150 \
//!         --workloads TS,WS --seed 42
//! heb-sim --all-policies --hours 4
//! heb-sim --solar 500 --hours 24 --policy sc-first
//! heb-sim --supply-trace demand.csv --hours 2  # drive supply from a CSV
//! heb-sim --trace out.jsonl --metrics --hours 2  # capture telemetry
//! ```

use heb::telemetry::{MetricsRecorder, TeeRecorder};
use heb::workload::{read_trace_csv, Archetype, SolarTraceBuilder};
use heb::{
    FaultSchedule, Joules, JsonlRecorder, Metrics, PolicyKind, PowerMode, RecorderHandle, Seconds,
    SimConfig, Simulation, Watts,
};
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug)]
struct Options {
    policy: PolicyKind,
    all_policies: bool,
    hours: f64,
    budget: f64,
    capacity_wh: f64,
    sc_fraction: f64,
    workloads: Vec<Archetype>,
    solar_peak: Option<f64>,
    supply_trace: Option<String>,
    trace_out: Option<String>,
    metrics: bool,
    faults: Option<FaultSchedule>,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            policy: PolicyKind::HebD,
            all_policies: false,
            hours: 4.0,
            budget: 260.0,
            capacity_wh: 150.0,
            sc_fraction: 0.3,
            workloads: vec![Archetype::WebSearch, Archetype::Terasort],
            solar_peak: None,
            supply_trace: None,
            trace_out: None,
            metrics: false,
            faults: None,
            seed: 42,
        }
    }
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    PolicyKind::ALL.into_iter().find(|p| {
        p.name().eq_ignore_ascii_case(s)
            || p.name()
                .replace('-', "")
                .eq_ignore_ascii_case(&s.replace('-', ""))
    })
}

fn parse_workloads(s: &str) -> Option<Vec<Archetype>> {
    s.split(',')
        .map(|abbr| {
            Archetype::ALL
                .into_iter()
                .find(|w| w.abbreviation().eq_ignore_ascii_case(abbr.trim()))
        })
        .collect()
}

fn usage() {
    eprintln!(
        "usage: heb-sim [options]\n\
         \n\
         --policy <name>      BaOnly|BaFirst|SCFirst|HEB-F|HEB-S|HEB-D (default HEB-D)\n\
         --all-policies       run and compare all six schemes\n\
         --hours <f>          simulated hours (default 4)\n\
         --budget <W>         utility power budget (default 260)\n\
         --capacity <Wh>      total usable buffer energy (default 150)\n\
         --sc-fraction <f>    SC share of capacity, 0..1 (default 0.3)\n\
         --workloads <list>   comma list of PR,WC,DA,WS,MS,DFS,HB,TS (default WS,TS)\n\
         --solar <W>          power the rack from a solar array with this peak\n\
         --supply-trace <csv> power the rack from a CSV supply trace (1 s samples)\n\
         --trace <out.jsonl>  stream telemetry events to a JSONL file\n\
         --metrics            print event counters after the run\n\
         --faults <spec>      inject faults, e.g. 'blackout@1800~600;ba-fail(0)@3600'\n\
         \u{20}                    names: blackout brownout(x) solar-drop ba-fail(i)\n\
         \u{20}                    ba-degrade(f,g) sc-fail(i) relay-open(s) meter-drop\n\
         \u{20}                    meter-freeze meter-spike(x); times in seconds\n\
         --seed <n>           RNG seed (default 42)"
    );
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--policy" => {
                let v = value("--policy")?;
                opts.policy = parse_policy(&v).ok_or_else(|| format!("unknown policy {v:?}"))?;
            }
            "--all-policies" => opts.all_policies = true,
            "--hours" => {
                opts.hours = value("--hours")?
                    .parse()
                    .map_err(|_| "bad --hours".to_string())?;
            }
            "--budget" => {
                opts.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "bad --budget".to_string())?;
            }
            "--capacity" => {
                opts.capacity_wh = value("--capacity")?
                    .parse()
                    .map_err(|_| "bad --capacity".to_string())?;
            }
            "--sc-fraction" => {
                opts.sc_fraction = value("--sc-fraction")?
                    .parse()
                    .map_err(|_| "bad --sc-fraction".to_string())?;
            }
            "--workloads" => {
                let v = value("--workloads")?;
                opts.workloads =
                    parse_workloads(&v).ok_or_else(|| format!("unknown workload in {v:?}"))?;
            }
            "--solar" => {
                opts.solar_peak = Some(
                    value("--solar")?
                        .parse()
                        .map_err(|_| "bad --solar".to_string())?,
                );
            }
            "--supply-trace" => opts.supply_trace = Some(value("--supply-trace")?),
            "--trace" => opts.trace_out = Some(value("--trace")?),
            "--metrics" => opts.metrics = true,
            "--faults" => {
                let v = value("--faults")?;
                opts.faults = Some(FaultSchedule::parse(&v).map_err(|e| e.to_string())?);
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.trace_out.is_some() && opts.all_policies {
        return Err("--trace captures a single run; drop --all-policies".to_string());
    }
    Ok(opts)
}

fn run_one(
    opts: &Options,
    policy: PolicyKind,
) -> Result<(heb::SimReport, Option<Arc<Metrics>>), String> {
    let config = SimConfig::builder()
        .policy(policy)
        .budget(Watts::new(opts.budget))
        .total_capacity(Joules::from_watt_hours(opts.capacity_wh))
        .sc_fraction(opts.sc_fraction)
        .build()
        .map_err(|e| e.to_string())?;
    let mut sim =
        Simulation::try_new(config, &opts.workloads, opts.seed).map_err(|e| e.to_string())?;
    if let Some(path) = &opts.supply_trace {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let trace =
            read_trace_csv(file, Seconds::new(1.0)).map_err(|e| format!("parse {path}: {e}"))?;
        sim = sim.with_mode(PowerMode::Solar(trace));
    } else if let Some(peak) = opts.solar_peak {
        let trace = SolarTraceBuilder::new(Watts::new(peak))
            .seed(opts.seed)
            .days((opts.hours / 24.0).max(1.0).ceil())
            .build();
        sim = sim.with_mode(PowerMode::Solar(trace));
    }
    if let Some(schedule) = &opts.faults {
        sim = sim.with_faults(schedule.clone());
    }
    let metrics = opts.metrics.then(|| Arc::new(Metrics::new()));
    let mut branches: Vec<RecorderHandle> = Vec::new();
    if let Some(path) = &opts.trace_out {
        let jsonl = JsonlRecorder::create(path).map_err(|e| format!("create {path}: {e}"))?;
        branches.push(Arc::new(jsonl));
    }
    if let Some(m) = &metrics {
        branches.push(Arc::new(MetricsRecorder::new(Arc::clone(m))));
    }
    match branches.len() {
        0 => {}
        1 => sim.set_recorder(branches.pop().expect("one branch")),
        _ => sim.set_recorder(Arc::new(TeeRecorder::new(branches))),
    }
    Ok((sim.run_for_hours(opts.hours), metrics))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let policies: Vec<PolicyKind> = if opts.all_policies {
        PolicyKind::ALL.to_vec()
    } else {
        vec![opts.policy]
    };

    let workload_names: Vec<&str> = opts.workloads.iter().map(|w| w.abbreviation()).collect();
    println!(
        "heb-sim: {:.1} h, budget {} W, buffer {} Wh ({}% SC), workloads {}, seed {}",
        opts.hours,
        opts.budget,
        opts.capacity_wh,
        (opts.sc_fraction * 100.0).round(),
        workload_names.join(","),
        opts.seed
    );

    for policy in policies {
        match run_one(&opts, policy) {
            Ok((report, metrics)) => {
                println!("\n--- {policy} ---");
                println!("{report}");
                if let Some(metrics) = metrics {
                    println!("--- telemetry counters ---");
                    print!("{}", metrics.snapshot());
                }
                if let Some(path) = &opts.trace_out {
                    eprintln!("trace written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.policy, PolicyKind::HebD);
        assert_eq!(o.hours, 4.0);
        assert!(!o.all_policies);
    }

    #[test]
    fn full_option_set_parses() {
        let o = parse_args(&args(&[
            "--policy",
            "sc-first",
            "--hours",
            "2.5",
            "--budget",
            "200",
            "--capacity",
            "80",
            "--sc-fraction",
            "0.5",
            "--workloads",
            "ts,ws,pr",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(o.policy, PolicyKind::ScFirst);
        assert_eq!(o.hours, 2.5);
        assert_eq!(o.budget, 200.0);
        assert_eq!(o.capacity_wh, 80.0);
        assert_eq!(o.sc_fraction, 0.5);
        assert_eq!(o.workloads.len(), 3);
        assert_eq!(o.seed, 9);
    }

    #[test]
    fn policy_names_accept_paper_spelling() {
        assert_eq!(parse_policy("HEB-D"), Some(PolicyKind::HebD));
        assert_eq!(parse_policy("hebd"), Some(PolicyKind::HebD));
        assert_eq!(parse_policy("BaOnly"), Some(PolicyKind::BaOnly));
        assert_eq!(parse_policy("nonsense"), None);
    }

    #[test]
    fn workload_abbreviations_round_trip() {
        let all = parse_workloads("PR,WC,DA,WS,MS,DFS,HB,TS").unwrap();
        assert_eq!(all.len(), 8);
        assert!(parse_workloads("PR,??").is_none());
    }

    #[test]
    fn bad_arguments_are_rejected() {
        assert!(parse_args(&args(&["--hours"])).is_err());
        assert!(parse_args(&args(&["--hours", "x"])).is_err());
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--policy", "zap"])).is_err());
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = parse_args(&args(&["--trace", "out.jsonl", "--metrics"])).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("out.jsonl"));
        assert!(o.metrics);
        let o = parse_args(&args(&["--supply-trace", "demand.csv"])).unwrap();
        assert_eq!(o.supply_trace.as_deref(), Some("demand.csv"));
        assert!(o.trace_out.is_none());
    }

    #[test]
    fn trace_conflicts_with_all_policies() {
        let err = parse_args(&args(&["--trace", "out.jsonl", "--all-policies"])).unwrap_err();
        assert!(err.contains("--all-policies"), "{err}");
    }

    #[test]
    fn fault_spec_parses_into_schedule() {
        let o = parse_args(&args(&[
            "--faults",
            "blackout@1800~600;ba-fail(0)@3600;meter-spike(2.5)@100~60",
        ]))
        .unwrap();
        assert_eq!(o.faults.as_ref().map(FaultSchedule::len), Some(3));
        assert!(parse_args(&args(&["--faults", "nonsense@10"])).is_err());
        assert!(parse_args(&args(&["--faults"])).is_err());
    }
}
