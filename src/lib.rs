//! # HEB — Hybrid Energy Buffers for datacenter efficiency and economy
//!
//! A full reproduction, as a Rust library, of *"HEB: Deploying and
//! Managing Hybrid Energy Buffers for Improving Datacenter Efficiency
//! and Economy"* (ISCA 2015): pooled lead-acid batteries and
//! super-capacitors behind a relay fabric, dispatched slot-by-slot by
//! the *hControl* power-management framework to absorb the power
//! mismatches of under-provisioned and renewable-powered datacenters.
//!
//! The original evaluation ran on a hardware prototype; this crate
//! bundles physics-faithful simulation substitutes for every piece of
//! that hardware (see `DESIGN.md`) and re-exports the whole stack:
//!
//! * [`units`] — typed physical quantities ([`Watts`], [`Joules`], …);
//! * [`esd`] — battery/super-capacitor device models
//!   ([`LeadAcidBattery`], [`SuperCapacitor`], [`Bank`]);
//! * [`powersys`] — servers, metering, relays, converters, feeds;
//! * [`workload`] — the Table 1 workload archetypes, cluster and solar
//!   trace generators;
//! * [`forecast`] — Holt-Winters and baseline predictors;
//! * [`core`] — the HEB controller, the six Table 2 policies, the
//!   power-allocation table, and the end-to-end [`Simulation`];
//! * [`tco`] — the Figure 15 economics (cost breakdown, ROI,
//!   peak-shaving revenue);
//! * [`telemetry`] — typed trace events, zero-cost recorders
//!   ([`NullRecorder`], [`RingRecorder`], [`JsonlRecorder`]) and a
//!   [`Metrics`] registry for counters, gauges and phase timers.
//!
//! # Quickstart
//!
//! ```
//! use heb::{PolicyKind, SimConfig, Simulation};
//! use heb::workload::Archetype;
//!
//! // Simulate the scale-down prototype for half an hour under the
//! // dynamic HEB policy:
//! let config = SimConfig::prototype().with_policy(PolicyKind::HebD);
//! let mut sim = Simulation::new(config, &[Archetype::WebSearch], 42);
//! let report = sim.run_for_hours(0.5);
//! println!("buffer efficiency: {}", report.energy_efficiency());
//! assert!(report.energy_efficiency().get() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use heb_core as core;
pub use heb_esd as esd;
pub use heb_forecast as forecast;
pub use heb_powersys as powersys;
pub use heb_tco as tco;
pub use heb_telemetry as telemetry;
pub use heb_units as units;
pub use heb_workload as workload;

pub use heb_core::{
    experiments, ConfigError, FaultInjector, FaultKind, FaultLedger, FaultProfile, FaultSchedule,
    HebController, HybridBuffers, PolicyKind, PowerAllocationTable, PowerMode, SimConfig,
    SimConfigBuilder, SimError, SimReport, Simulation, SlotPlan,
};
pub use heb_esd::{Bank, LeadAcidBattery, StorageDevice, SuperCapacitor};
pub use heb_telemetry::{
    null_recorder, JsonlRecorder, Metrics, NullRecorder, Recorder, RecorderHandle, RingRecorder,
};
pub use heb_units::{Joules, Ratio, Seconds, Watts};
