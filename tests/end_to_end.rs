//! End-to-end integration tests across the whole HEB stack: build real
//! simulations through the facade crate and check system-level
//! invariants that no single crate can verify alone.

use heb::workload::{Archetype, SolarTraceBuilder};
use heb::{Joules, PolicyKind, PowerMode, Ratio, SimConfig, Simulation, Watts};

fn mixed_rack() -> [Archetype; 4] {
    [
        Archetype::WebSearch,
        Archetype::Terasort,
        Archetype::PageRank,
        Archetype::Dfsioe,
    ]
}

#[test]
fn every_policy_survives_a_simulated_day() {
    for policy in PolicyKind::ALL {
        let config = SimConfig::prototype().with_policy(policy);
        let mut sim = Simulation::new(config, &mixed_rack(), 99);
        let report = sim.run_for_hours(24.0);
        assert_eq!(report.sim_time.as_hours(), 24.0, "{policy}");
        assert!(report.slots >= 143, "{policy} ran {} slots", report.slots);
        // Energy books must balance to numerical noise.
        assert!(
            ((report.buffer_delivered + report.discharge_loss) - report.buffer_drained)
                .get()
                .abs()
                < 10.0,
            "{policy} discharge books"
        );
        assert!(
            ((report.charge_stored + report.charge_loss) - report.charge_drawn)
                .get()
                .abs()
                < 10.0,
            "{policy} charge books"
        );
    }
}

#[test]
fn buffer_energy_is_conserved_against_flows() {
    // Initial + stored − drained must equal final available, within the
    // kinetic slack a battery keeps between its wells.
    let config = SimConfig::prototype().with_policy(PolicyKind::HebD);
    let mut sim = Simulation::new(config, &mixed_rack(), 5);
    let initial = sim.buffers().total_available();
    let report = sim.run_for_hours(6.0);
    let expected = initial + report.charge_stored - report.buffer_drained;
    let actual = sim.buffers().total_available();
    let drift = (expected - actual).get().abs();
    assert!(
        drift < 0.1 * initial.get().max(report.charge_stored.get()),
        "energy drift {drift} J too large (expected {expected:?}, got {actual:?})"
    );
}

#[test]
fn no_downtime_when_budget_covers_nameplate() {
    // With a budget above the rack's absolute worst case, no scheme may
    // ever shed a server.
    let config = SimConfig::prototype().with_budget(Watts::new(425.0));
    for policy in [PolicyKind::BaOnly, PolicyKind::HebD] {
        let mut sim = Simulation::new(config.clone().with_policy(policy), &mixed_rack(), 3);
        let report = sim.run_for_hours(4.0);
        assert_eq!(report.server_downtime.get(), 0.0, "{policy}");
        assert_eq!(report.shed_events, 0, "{policy}");
    }
}

#[test]
fn deeper_underprovisioning_never_reduces_downtime() {
    // Monotonicity across the provisioning axis for the same seed.
    let mut last = -1.0;
    for budget in [250.0, 235.0, 215.0] {
        let config = SimConfig::prototype()
            .with_policy(PolicyKind::HebD)
            .with_budget(Watts::new(budget))
            .with_total_capacity(Joules::from_watt_hours(60.0));
        let mut sim = Simulation::new(config, &mixed_rack(), 8);
        let down = sim.run_for_hours(6.0).server_downtime.get();
        assert!(
            down >= last,
            "budget {budget}: downtime {down} fell below {last}"
        );
        last = down;
    }
}

#[test]
fn bigger_buffers_never_hurt() {
    let mut last = f64::INFINITY;
    for wh in [40.0, 80.0, 160.0] {
        let config = SimConfig::prototype()
            .with_policy(PolicyKind::HebD)
            .with_budget(Watts::new(240.0))
            .with_total_capacity(Joules::from_watt_hours(wh));
        let mut sim = Simulation::new(config, &mixed_rack(), 21);
        let down = sim.run_for_hours(6.0).server_downtime.get();
        assert!(
            down <= last,
            "{wh} Wh: downtime {down} above smaller buffer's {last}"
        );
        last = down;
    }
}

#[test]
fn solar_rack_reu_is_a_valid_fraction_and_hybrids_lead() {
    let trace = SolarTraceBuilder::new(Watts::new(500.0))
        .seed(31)
        .days(1.0)
        .clouds_per_day(80.0)
        .mean_cloud_secs(360.0)
        .build();
    let mut reu_ba = 0.0;
    let mut reu_heb = 0.0;
    for policy in [PolicyKind::BaOnly, PolicyKind::HebD] {
        let config = SimConfig::prototype().with_policy(policy);
        let mut sim =
            Simulation::new(config, &mixed_rack(), 31).with_mode(PowerMode::Solar(trace.clone()));
        sim.set_buffer_soc(Ratio::new_clamped(0.15));
        let report = sim.run_for_hours(24.0);
        let reu = report.reu().get();
        assert!((0.0..=1.0).contains(&reu));
        match policy {
            PolicyKind::BaOnly => reu_ba = reu,
            _ => reu_heb = reu,
        }
    }
    assert!(
        reu_heb > reu_ba,
        "hybrid REU {reu_heb} should beat battery-only {reu_ba}"
    );
}

#[test]
fn relay_fabric_reflects_policy() {
    // BaOnly must never point a relay at the (empty) SC pool.
    let config = SimConfig::prototype().with_policy(PolicyKind::BaOnly);
    let mut sim = Simulation::new(config, &mixed_rack(), 12);
    let report = sim.run_for_hours(2.0);
    assert!(sim.buffers().sc_pool().is_empty());
    assert_eq!(report.pat_entries, 0);
}

#[test]
fn controller_learns_only_under_dynamic_policies() {
    let run = |policy| {
        let config = SimConfig::prototype()
            .with_policy(policy)
            .with_budget(Watts::new(245.0));
        let mut sim = Simulation::new(config, &[Archetype::Terasort], 77);
        sim.run_for_hours(8.0).pat_entries
    };
    assert_eq!(run(PolicyKind::ScFirst), 0);
    assert!(run(PolicyKind::HebD) > 0, "HEB-D must populate its PAT");
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let make = || {
        let config = SimConfig::prototype().with_policy(PolicyKind::HebD);
        let mut sim = Simulation::new(config, &mixed_rack(), 4242);
        sim.run_for_hours(3.0)
    };
    let a = make();
    let b = make();
    assert_eq!(a, b);
}

#[test]
fn buffers_cycle_rather_than_only_drain() {
    // Over a long run the buffers must both discharge and recharge —
    // the control loop is a cycle, not a one-way drain.
    let config = SimConfig::prototype().with_policy(PolicyKind::HebD);
    let mut sim = Simulation::new(config, &mixed_rack(), 64);
    let report = sim.run_for_hours(12.0);
    assert!(report.buffer_delivered.get() > 0.0, "never discharged");
    assert!(report.charge_stored.get() > 0.0, "never recharged");
    // And the pools must end somewhere inside their window.
    let soc = sim.buffers().total_available() / sim.buffers().total_capacity();
    assert!((0.0..=1.0 + 1e-9).contains(&soc));
}
