//! Scale-out and robustness integration tests: the simulator must hold
//! its invariants on datacenter-sized racks and under degraded
//! instrumentation.

use heb::workload::Archetype;
use heb::{Joules, PolicyKind, SimConfig, Simulation, Watts};

/// A 48-server hall with proportionally scaled budget and buffers.
fn hall_config(policy: PolicyKind) -> SimConfig {
    let mut config = SimConfig::prototype().with_policy(policy);
    let scale = 8.0;
    config.servers = 48;
    config.budget = config.budget * scale;
    config.total_capacity = Joules::new(config.total_capacity.get() * scale);
    config
}

#[test]
fn datacenter_scale_run_holds_invariants() {
    let mut sim = Simulation::new(hall_config(PolicyKind::HebD), &Archetype::ALL, 2024);
    let report = sim.run_for_hours(6.0);
    assert_eq!(report.sim_time.as_hours(), 6.0);
    assert!(report.buffer_delivered.get() > 0.0);
    assert!(
        ((report.buffer_delivered + report.discharge_loss) - report.buffer_drained)
            .get()
            .abs()
            < 10.0
    );
    assert!(report.energy_efficiency().get() > 0.5);
    // Downtime bounded by fleet-time.
    assert!(report.server_downtime.get() <= 6.0 * 3600.0 * 48.0);
}

#[test]
fn scale_out_preserves_scheme_ordering() {
    // The HEB-vs-BaOnly efficiency win must survive the jump from 6 to
    // 48 servers.
    let run = |policy| {
        let mut sim = Simulation::new(hall_config(policy), &Archetype::ALL, 7);
        sim.run_for_hours(4.0)
    };
    let heb = run(PolicyKind::HebD);
    let ba = run(PolicyKind::BaOnly);
    assert!(
        heb.energy_efficiency() > ba.energy_efficiency(),
        "HEB-D {} vs BaOnly {}",
        heb.energy_efficiency(),
        ba.energy_efficiency()
    );
}

#[test]
fn metering_noise_degrades_gracefully() {
    // A 3 % instrument must not break the controller: the run completes,
    // books balance, and performance stays within a sane band of the
    // ideal-instrument run.
    let run = |noise: f64| {
        let mut config = SimConfig::prototype()
            .with_policy(PolicyKind::HebD)
            .with_budget(Watts::new(250.0));
        config.metering_noise = noise;
        let mut sim = Simulation::new(config, &[Archetype::Terasort, Archetype::WebSearch], 33);
        sim.run_for_hours(6.0)
    };
    let clean = run(0.0);
    let noisy = run(0.03);
    assert!(
        ((noisy.buffer_delivered + noisy.discharge_loss) - noisy.buffer_drained)
            .get()
            .abs()
            < 10.0
    );
    let clean_eff = clean.energy_efficiency().get();
    let noisy_eff = noisy.energy_efficiency().get();
    assert!(
        noisy_eff > clean_eff - 0.15,
        "3 % metering noise collapsed efficiency: {clean_eff} -> {noisy_eff}"
    );
}

#[test]
fn heavy_noise_is_survivable() {
    // Even a 10 % instrument (broken, by datacenter standards) must not
    // panic or produce nonsense accounting.
    let mut config = SimConfig::prototype().with_policy(PolicyKind::HebD);
    config.metering_noise = 0.10;
    let mut sim = Simulation::new(config, &[Archetype::Dfsioe], 1);
    let report = sim.run_for_hours(2.0);
    assert!(report.energy_efficiency().in_unit_interval());
    assert!(report.server_downtime.get() >= 0.0);
}

#[test]
fn single_server_rack_works() {
    // Degenerate fleet size.
    let mut config = SimConfig::prototype().with_policy(PolicyKind::HebD);
    config.servers = 1;
    config.budget = Watts::new(45.0);
    config.total_capacity = Joules::from_watt_hours(25.0);
    let mut sim = Simulation::new(config, &[Archetype::WebSearch], 3);
    let report = sim.run_for_hours(2.0);
    assert_eq!(report.sim_time.as_hours(), 2.0);
    assert!(report.energy_efficiency().in_unit_interval());
}
