//! The paper's headline claims, asserted against the simulation at
//! reduced (CI-friendly) scale. EXPERIMENTS.md records the full-scale
//! paper-vs-measured comparison; these tests pin the *shape* — who
//! wins, and in which direction — so regressions are caught.

use heb::core::experiments::{
    assignment_sweep, deep_valley_absorption, discharge_curves, efficiency_characterization,
    scheme_comparison,
};
use heb::tco::{PeakShavingModel, RoiModel, SchemeEconomics, StorageTechnology};
use heb::units::Dollars;
use heb::workload::{ClusterTraceBuilder, PeakClass};
use heb::{Joules, PolicyKind, Ratio, SimConfig, Watts};

/// Figure 1(a): under-provisioning raises MPPU monotonically.
#[test]
fn claim_fig1_underprovisioning_raises_mppu() {
    let trace = ClusterTraceBuilder::new(Watts::new(1000.0))
        .seed(42)
        .days(2.0)
        .build();
    let mppu: Vec<f64> = [1.0, 0.8, 0.6, 0.4]
        .iter()
        .map(|f| trace.mppu(Watts::new(1000.0 * f)))
        .collect();
    assert!(mppu.windows(2).all(|w| w[1] >= w[0]), "{mppu:?}");
    assert!(mppu[3] > 10.0 * mppu[0].max(0.001));
}

/// Figure 3: SC round trip 90–95 %, battery below 80 % and falling with
/// load, recovery helping, on/off waste eating a chunk of the gain.
#[test]
fn claim_fig3_efficiency_characterisation() {
    let rs = efficiency_characterization(&[1, 4]);
    for r in &rs {
        assert!(r.sc_efficiency.get() >= 0.85);
        assert!(r.battery_one_shot.get() < 0.80);
        assert!(r.battery_with_recovery >= r.battery_one_shot);
    }
    assert!(rs[1].battery_one_shot < rs[0].battery_one_shot);
    assert!(rs[1].on_off_waste_fraction.get() > 0.2);
}

/// Figure 4: SC initial cost is orders above lead-acid, amortised cost
/// lands in the NiCd/Li-ion band.
#[test]
fn claim_fig4_amortised_cost_competitive() {
    let sc = StorageTechnology::super_capacitor();
    let la = StorageTechnology::lead_acid();
    assert!(sc.initial_cost_per_kwh().get() > 30.0 * la.initial_cost_per_kwh().get());
    let amort = sc.amortized_cost_per_kwh_cycle().get();
    assert!((0.2..=0.6).contains(&amort));
}

/// Figure 5: SC discharge is near-linear, battery shows a knee that
/// worsens with load.
#[test]
fn claim_fig5_discharge_shapes() {
    let curves = discharge_curves(&[1, 4]);
    let get = |dev: &str, n: usize| {
        curves
            .iter()
            .find(|c| c.device == dev && c.servers == n)
            .unwrap()
            .clone()
    };
    assert!(get("supercap", 1).nonlinearity() < 0.1);
    assert!(get("supercap", 4).nonlinearity() < 0.1);
    assert!(get("battery", 4).nonlinearity() > get("supercap", 4).nonlinearity());
}

/// Figure 6: runtime is maximised at an interior assignment; leaning
/// fully on SCs costs ~10 % or more.
#[test]
fn claim_fig6_interior_assignment_optimum() {
    let points = assignment_sweep(
        4,
        Watts::new(65.0),
        Joules::from_watt_hours(150.0),
        Ratio::new_clamped(0.3),
    );
    let best = points
        .iter()
        .max_by(|a, b| a.runtime.get().partial_cmp(&b.runtime.get()).unwrap())
        .unwrap();
    assert!(best.sc_servers > 0 && best.sc_servers < 4);
    let all_sc = points.last().unwrap().runtime.get();
    assert!(all_sc < 0.92 * best.runtime.get());
}

/// Figure 12(a): hybrid schemes beat BaOnly on energy efficiency, with
/// a bigger margin on small peaks than large.
#[test]
fn claim_fig12a_efficiency_ordering() {
    let base = SimConfig::prototype();
    let results = scheme_comparison(&base, 2.0, 0.2, 2015);
    let eff = |p: PolicyKind, class| {
        results
            .iter()
            .find(|r| r.policy == p)
            .unwrap()
            .mean_efficiency(class)
            .get()
    };
    assert!(eff(PolicyKind::HebD, None) > eff(PolicyKind::BaOnly, None));
    assert!(eff(PolicyKind::ScFirst, None) > eff(PolicyKind::BaOnly, None));
    let small_gain = eff(PolicyKind::HebD, Some(PeakClass::Small))
        - eff(PolicyKind::BaOnly, Some(PeakClass::Small));
    let large_gain = eff(PolicyKind::HebD, Some(PeakClass::Large))
        - eff(PolicyKind::BaOnly, Some(PeakClass::Large));
    assert!(
        small_gain > large_gain,
        "small-peak gain {small_gain} should exceed large-peak gain {large_gain}"
    );
}

/// Figure 12(b): under a lowered budget, HEB reduces downtime vs
/// BaOnly; BaFirst is the worst hybrid.
#[test]
fn claim_fig12b_downtime_ordering() {
    let base = SimConfig::prototype()
        .with_budget(Watts::new(245.0))
        .with_total_capacity(Joules::from_watt_hours(60.0));
    let results = scheme_comparison(&base, 6.0, 0.2, 2015);
    let down = |p: PolicyKind| {
        results
            .iter()
            .find(|r| r.policy == p)
            .unwrap()
            .total_downtime(None)
            .get()
    };
    assert!(
        down(PolicyKind::HebD) < down(PolicyKind::BaOnly),
        "HEB-D {} vs BaOnly {}",
        down(PolicyKind::HebD),
        down(PolicyKind::BaOnly)
    );
}

/// Figure 12(c): SC-preferential schemes cut battery wear by a large
/// factor.
#[test]
fn claim_fig12c_battery_life_extension() {
    let base = SimConfig::prototype();
    let results = scheme_comparison(&base, 4.0, 0.2, 2015);
    let find = |p: PolicyKind| results.iter().find(|r| r.policy == p).unwrap();
    let improvement =
        find(PolicyKind::HebD).lifetime_improvement_vs(find(PolicyKind::BaOnly), 10.0);
    assert!(
        improvement > 2.0,
        "HEB-D wear improvement {improvement} should be well above 2x"
    );
}

/// Figure 12(d): in a deep-valley window, SC-charging schemes utilise
/// far more renewable energy than battery-only.
#[test]
fn claim_fig12d_deep_valley_reu() {
    let points = deep_valley_absorption(&SimConfig::prototype(), Watts::new(230.0), 15.0, 2015);
    let reu = |p: PolicyKind| points.iter().find(|v| v.policy == p).unwrap().reu.get();
    let improvement = (reu(PolicyKind::HebD) - reu(PolicyKind::BaOnly)) / reu(PolicyKind::BaOnly);
    assert!(
        improvement > 0.35,
        "deep-valley REU improvement {improvement} too small"
    );
}

/// Figure 15(b)–(c): positive ROI over most of the region; break-even
/// ordering HEB < BaOnly < SCFirst < BaFirst; ≥1.9× 8-year gain;
/// BaFirst below BaOnly.
#[test]
fn claim_fig15_economics() {
    let roi = RoiModel::paper_defaults();
    assert!(roi.roi(Dollars::new(10.0), 0.5) > 0.0);

    let m = PeakShavingModel::paper_defaults();
    let be = |s: &SchemeEconomics| m.break_even_years(s, 20.0).unwrap();
    let heb = SchemeEconomics::heb();
    let ba = SchemeEconomics::ba_only();
    assert!(be(&heb) < be(&ba));
    assert!(be(&ba) < be(&SchemeEconomics::sc_first()));
    assert!(be(&SchemeEconomics::sc_first()) < be(&SchemeEconomics::ba_first()));
    assert!(m.gain_vs(&heb, &ba, 8.0).unwrap() >= 1.9);
    assert!(m.net_profit(&SchemeEconomics::ba_first(), 8.0) < m.net_profit(&ba, 8.0));
}
