//! Scenario: audit the hControl's slot-by-slot decisions.
//!
//! Prints the controller's telemetry for a few hours of operation —
//! predicted vs observed mismatch, the small/large classification's
//! effect on `R_λ`, and buffer state — plus the prediction error the
//! Holt-Winters forecaster achieved. This is the view a datacenter
//! operator would chart to decide whether to trust the controller.
//!
//! ```bash
//! cargo run --release --example controller_trace
//! ```

use heb::workload::Archetype;
use heb::{PolicyKind, SimConfig, SimError, Simulation, Watts};

fn main() -> Result<(), SimError> {
    let config = SimConfig::builder()
        .policy(PolicyKind::HebD)
        .budget(Watts::new(250.0))
        .build()?;
    let mut sim = Simulation::try_new(
        config,
        &[Archetype::Terasort, Archetype::WebSearch, Archetype::Dfsioe],
        123,
    )?;
    let report = sim.run_for_hours(5.0);

    println!(
        "{:>4}  {:>10} {:>10} {:>8}  {:>7} {:>7}",
        "slot", "predicted", "observed", "R_l", "SC SoC", "BA SoC"
    );
    let mut abs_err = 0.0;
    let mut count = 0usize;
    for rec in sim.slot_log() {
        println!(
            "{:>4}  {:>8.1} W {:>8.1} W {:>8.2}  {:>6.1}% {:>6.1}%",
            rec.slot,
            rec.predicted_mismatch.get(),
            rec.actual_mismatch.get(),
            rec.r_lambda.get(),
            rec.sc_soc.as_percent(),
            rec.ba_soc.as_percent(),
        );
        if rec.slot > 2 {
            abs_err += (rec.predicted_mismatch - rec.actual_mismatch).get().abs();
            count += 1;
        }
    }
    if count > 0 {
        println!(
            "\nmean absolute prediction error after warm-up: {:.1} W over {count} slots",
            abs_err / count as f64
        );
    }
    println!(
        "run summary: efficiency {:.1}, downtime {:.0} s, PAT {} entries",
        report.energy_efficiency(),
        report.server_downtime.get(),
        report.pat_entries
    );
    Ok(())
}
