//! Scenario: right-sizing a hybrid buffer purchase.
//!
//! Walks the capacity-planning space of Figures 13–15: sweeps the
//! SC:battery ratio for a fixed budget, then runs the TCO models to
//! answer "is the hybrid worth buying, and when does it pay back?"
//!
//! ```bash
//! cargo run --release --example capacity_advisor
//! ```

use heb::core::experiments::capacity_ratio_sweep;
use heb::tco::{PeakShavingModel, RoiModel, SchemeEconomics};
use heb::units::Dollars;
use heb::{SimConfig, SimError, Watts};

fn main() -> Result<(), SimError> {
    // 1. Performance side: sweep SC share at constant total capacity.
    println!("== performance vs SC:battery ratio (HEB-D, equal total capacity) ==");
    let base = SimConfig::builder().budget(Watts::new(250.0)).build()?;
    let points = capacity_ratio_sweep(&base, &[1, 3, 5], 2.0, 2.0, 9);
    for p in &points {
        let (eff, downtime, _, reu) = p.metrics();
        println!(
            "  {:<4} efficiency {:>5.1}%  downtime {:>5.0}s  battery wear {:>8.6}  REU {:>5.1}%",
            p.label,
            100.0 * eff,
            downtime,
            p.report.battery_life_used.get(),
            100.0 * reu
        );
    }

    // 2. Investment side: ROI against provisioning more infrastructure.
    println!("\n== ROI of buying buffers instead of provisioning watts ==");
    let roi = RoiModel::paper_defaults();
    for c_cap in [5.0, 10.0, 20.0] {
        for hours in [0.5, 1.0, 2.0] {
            println!(
                "  C_cap {:>4.0} $/W, {:>3.1} h peaks -> ROI {:+.1}",
                c_cap,
                hours,
                roi.roi(Dollars::new(c_cap), hours)
            );
        }
    }

    // 3. Operating side: the 8-year peak-shaving race.
    println!("\n== 8-year peak-shaving outlook (100 kW facility, 20 kWh buffer) ==");
    let model = PeakShavingModel::paper_defaults();
    let baseline = SchemeEconomics::ba_only();
    for scheme in SchemeEconomics::figure15_schemes() {
        let be = model
            .break_even_years(&scheme, 20.0)
            .map_or("never".to_string(), |y| format!("{y:.1} y"));
        let gain = model
            .gain_vs(&scheme, &baseline, 8.0)
            .map_or("-".into(), |g| format!("{g:.2}x"));
        println!(
            "  {:<8} capex {:>7.0} $  break-even {:>6}  8-y net {:>7.0} $  gain {}",
            scheme.name,
            model.capex(&scheme).get(),
            be,
            model.net_profit(&scheme, 8.0).get(),
            gain
        );
    }

    // 4. The verdict the paper reaches.
    let heb = SchemeEconomics::heb();
    let gain = model.gain_vs(&heb, &baseline, 8.0).unwrap_or(0.0);
    println!(
        "\nverdict: a well-managed 3:7 hybrid breaks even in {:.1} years and nets\n\
         {gain:.1}x the homogeneous battery's profit over 8 years — but the same\n\
         hardware under a battery-first policy would under-perform BaOnly.",
        model.break_even_years(&heb, 20.0).unwrap_or(f64::NAN),
    );
    Ok(())
}
