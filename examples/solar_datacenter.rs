//! Scenario: a solar-powered rack maximising renewable utilisation.
//!
//! The Section 2.2 / 7.4 setting: the rack runs from a rooftop array
//! with hybrid buffers smoothing clouds and demand bursts. Compares the
//! renewable-energy utilisation (REU) of battery-only vs hybrid
//! buffering across a cloudy day, plus the deep-valley absorption test
//! behind the paper's headline REU gain.
//!
//! ```bash
//! cargo run --release --example solar_datacenter
//! ```

use heb::core::experiments::deep_valley_absorption;
use heb::workload::{Archetype, SolarTraceBuilder};
use heb::{PolicyKind, PowerMode, Ratio, SimConfig, SimError, Simulation, Watts};

fn main() -> Result<(), SimError> {
    // A cloudy day on a 500 W array.
    let trace = SolarTraceBuilder::new(Watts::new(500.0))
        .seed(11)
        .days(1.0)
        .clouds_per_day(80.0)
        .mean_cloud_secs(360.0)
        .build();
    println!(
        "solar day: {:.1} kWh generated, peak {:.0}",
        trace.energy().as_kilowatt_hours(),
        trace.peak()
    );

    let mix = [
        Archetype::WebSearch,
        Archetype::Terasort,
        Archetype::MediaStreaming,
    ];
    println!("\nfull-day REU by scheme (buffers start drained overnight):");
    for policy in [PolicyKind::BaOnly, PolicyKind::BaFirst, PolicyKind::HebD] {
        let config = SimConfig::builder().policy(policy).build()?;
        let mut sim =
            Simulation::try_new(config, &mix, 11)?.with_mode(PowerMode::Solar(trace.clone()));
        sim.set_buffer_soc(Ratio::new_clamped(0.15));
        let report = sim.run_for_hours(24.0);
        println!(
            "  {:<8} REU {:>5.1}%  (generated {:>6.1} Wh, used {:>6.1} Wh)",
            policy.name(),
            report.reu().as_percent(),
            report.renewable_generated.as_watt_hours().get(),
            report.renewable_used.as_watt_hours().get()
        );
    }

    // One deep valley: a 230 W surplus window of 15 minutes hitting
    // drained buffers — where the charge-current asymmetry bites.
    println!("\ndeep-valley absorption (230 W surplus, 15 min, drained buffers):");
    for point in deep_valley_absorption(&SimConfig::prototype(), Watts::new(230.0), 15.0, 3) {
        println!(
            "  {:<8} window REU {:>5.1}%  absorbed {:>5.1} Wh",
            point.policy.name(),
            point.reu.as_percent(),
            point.absorbed_wh
        );
    }
    println!(
        "\nthe battery pool is pinned at its charge-acceptance limit; the SC\n\
         pool swallows the whole valley — the paper's Figure 12(d) story."
    );
    Ok(())
}
