//! Scenario: an under-provisioned rack rides out peak mismatches.
//!
//! The motivating workload of the paper's Section 2.1 — a rack whose
//! utility feed is deliberately provisioned below its nameplate demand.
//! This example compares how each Table 2 power-management scheme fares
//! on an identical day, then shows the PAT the dynamic controller
//! learned.
//!
//! ```bash
//! cargo run --release --example underprovisioned_rack
//! ```

use heb::workload::Archetype;
use heb::{Joules, PolicyKind, SimConfig, SimError, Simulation, Watts};

fn main() -> Result<(), SimError> {
    // Aggressive under-provisioning: the stress regime the paper uses
    // to expose downtime differences (lowered budget, small buffers).
    let base = SimConfig::builder()
        .budget(Watts::new(245.0))
        .total_capacity(Joules::from_watt_hours(60.0))
        .build()?;

    println!(
        "under-provisioned rack: 6 servers (180–420 W band) on a {:.0} feed,\n\
         {:.0} Wh hybrid buffer\n",
        base.budget,
        base.total_capacity.as_watt_hours().get()
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "scheme", "eff", "downtime", "shed events", "PAT size"
    );

    for policy in PolicyKind::ALL {
        let config = base.clone().with_policy(policy);
        let mut sim = Simulation::try_new(
            config,
            &[Archetype::Terasort, Archetype::Dfsioe, Archetype::WebSearch],
            7,
        )?;
        let report = sim.run_for_hours(6.0);
        println!(
            "{:<8} {:>9.1}% {:>9.0}s {:>12} {:>10}",
            policy.name(),
            report.energy_efficiency().as_percent(),
            report.server_downtime.get(),
            report.shed_events,
            report.pat_entries
        );
    }

    // Peek inside HEB-D's learned allocation table.
    let config = base.with_policy(PolicyKind::HebD);
    let mut sim = Simulation::try_new(
        config,
        &[Archetype::Terasort, Archetype::Dfsioe, Archetype::WebSearch],
        7,
    )?;
    let _ = sim.run_for_hours(6.0);
    println!("\nHEB-D's learned power-allocation table (bucketed):");
    let mut entries: Vec<_> = sim.controller().pat().iter().collect();
    entries.sort_by_key(|(k, _)| (k.pm_bucket, k.sc_bucket, k.ba_bucket));
    for (key, entry) in entries.into_iter().take(12) {
        println!(
            "  SC~{:>2} BA~{:>2} PM~{:>2}  ->  R_lambda = {:.2}  ({} hits)",
            key.sc_bucket,
            key.ba_bucket,
            key.pm_bucket,
            entry.r_lambda.get(),
            entry.hits
        );
    }
    Ok(())
}
