//! Quickstart: simulate the scale-down HEB prototype for one hour and
//! print the paper's four metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use heb::workload::Archetype;
use heb::{PolicyKind, SimConfig, SimError, Simulation};

fn main() -> Result<(), SimError> {
    // The paper's prototype: six 30–70 W servers on a 260 W utility
    // budget, backed by 150 Wh of buffers split 3:7 SC:battery.
    let config = SimConfig::builder().policy(PolicyKind::HebD).build()?;
    println!(
        "prototype: {} servers, {:.0} budget, {:.0} Wh buffer ({:.0} % SC)",
        config.servers,
        config.budget,
        config.total_capacity.as_watt_hours().get(),
        config.sc_fraction.as_percent(),
    );

    // One hour of a mixed rack: web search (small peaks) alongside
    // Terasort (large peaks), exactly the two-group setup of Section 6.
    let mut sim = Simulation::try_new(config, &[Archetype::WebSearch, Archetype::Terasort], 42)?;
    let report = sim.run_for_hours(1.0);

    println!("\nafter {:.1} simulated hours:", report.sim_time.as_hours());
    println!(
        "  buffers delivered {:.1} Wh at {:.1} efficiency",
        report.buffer_delivered.as_watt_hours().get(),
        report.energy_efficiency()
    );
    println!(
        "  downtime {:.0} s across {} shed events",
        report.server_downtime.get(),
        report.shed_events
    );
    if let Some(years) = report.battery_lifetime_years() {
        println!("  battery lifetime projection: {years:.1} years");
    }
    println!(
        "  controller ran {} slots, PAT holds {} entries",
        report.slots, report.pat_entries
    );
    Ok(())
}
