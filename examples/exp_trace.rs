//! Scenario: capture a telemetry trace, then chart pool state from it.
//!
//! Runs the prototype rack with a [`JsonlRecorder`] attached, then
//! re-reads the captured event stream and renders an SoC-over-time
//! table for both pools — the offline-analysis loop an operator would
//! script against `heb-sim --trace out.jsonl`, exercised end-to-end
//! against the same JSONL format.
//!
//! ```bash
//! cargo run --release --example exp_trace            # capture + render
//! cargo run --release --example exp_trace out.jsonl  # render existing
//! ```

use heb::telemetry::json_field;
use heb::workload::Archetype;
use heb::{FaultSchedule, JsonlRecorder, PolicyKind, SimConfig, Simulation};
use std::sync::Arc;

fn capture(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::builder().policy(PolicyKind::HebD).build()?;
    let mut sim = Simulation::try_new(
        config,
        &[Archetype::WebSearch, Archetype::Terasort, Archetype::Dfsioe],
        42,
    )?
    .with_faults(FaultSchedule::parse("brownout(0.9)@3600~1200")?);
    sim.set_recorder(Arc::new(JsonlRecorder::create(path)?));
    let report = sim.run_for_hours(3.0);
    // Drop the simulation so the recorder flushes before we re-read.
    drop(sim);
    println!(
        "captured 3 h of HEB-D telemetry to {path} (efficiency {:.1})",
        report.energy_efficiency()
    );
    Ok(())
}

fn render(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    // Collate `esd.pool_state` samples by timestamp: one row per slot
    // boundary, one SoC column per pool.
    let mut rows: Vec<(f64, Option<f64>, Option<f64>)> = Vec::new();
    let mut events = 0usize;
    for line in text.lines() {
        events += 1;
        if json_field(line, "type") != Some("esd.pool_state") {
            continue;
        }
        let t: f64 = json_field(line, "t")
            .ok_or("pool_state without t")?
            .parse()?;
        let soc: f64 = json_field(line, "soc")
            .ok_or("pool_state without soc")?
            .parse()?;
        let row = match rows.last_mut() {
            Some(row) if row.0 == t => row,
            _ => {
                rows.push((t, None, None));
                rows.last_mut().expect("just pushed")
            }
        };
        match json_field(line, "pool") {
            Some("sc") => row.1 = Some(soc),
            Some("ba") => row.2 = Some(soc),
            other => return Err(format!("unknown pool {other:?}").into()),
        }
    }

    println!("\n{events} events in trace; pool state over time:");
    println!(
        "{:>8}  {:>7}  {:>7}   SC charge bar",
        "t [min]", "SC SoC", "BA SoC"
    );
    let bar = |soc: f64| "#".repeat((soc * 24.0).round().max(0.0) as usize);
    for (t, sc, ba) in &rows {
        let sc = sc.unwrap_or(f64::NAN);
        println!(
            "{:>8.0}  {:>6.1}%  {:>6.1}%   {}",
            t / 60.0,
            100.0 * sc,
            100.0 * ba.unwrap_or(f64::NAN),
            bar(sc),
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    match std::env::args().nth(1) {
        // Render a trace somebody else captured (e.g. heb-sim --trace).
        Some(path) => render(&path),
        None => {
            let path = std::env::temp_dir().join("heb_exp_trace.jsonl");
            let path = path.to_string_lossy().into_owned();
            capture(&path)?;
            render(&path)
        }
    }
}
