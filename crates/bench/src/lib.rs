//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md §3 for the index).
//!
//! Each binary under `src/bin/` prints one figure's rows to stdout and,
//! with `--json <path>`, also serialises the raw series for archival.
//! The binaries are deliberately thin: all experiment logic lives in
//! `heb_core::experiments` so that the integration tests exercise the
//! exact same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

use std::fs;
use std::path::Path;

/// A labelled series of `(x, y)` points — the common shape every
/// figure's output reduces to.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// A complete figure: a title plus its series, serialisable to JSON.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure identifier ("Figure 12(a)").
    pub title: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates a figure.
    #[must_use]
    pub fn new(title: impl Into<String>, series: Vec<Series>) -> Self {
        Self {
            title: title.into(),
            series,
        }
    }

    /// Writes the figure as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn write_json(&self, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
        fs::write(path, self.to_json_pretty())?;
        Ok(())
    }

    /// Renders the figure as pretty-printed JSON.
    ///
    /// Hand-rolled emitter: the build environment is offline, so the
    /// figure shape is kept simple enough (strings and finite floats)
    /// that serde is unnecessary.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"series\": [\n");
        for (si, s) in self.series.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", json_string(&s.label)));
            out.push_str("      \"points\": [\n");
            for (pi, (x, y)) in s.points.iter().enumerate() {
                let comma = if pi + 1 < s.points.len() { "," } else { "" };
                out.push_str(&format!(
                    "        [{}, {}]{comma}\n",
                    json_number(*x),
                    json_number(*y)
                ));
            }
            out.push_str("      ]\n");
            let comma = if si + 1 < self.series.len() { "," } else { "" };
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (JSON has no NaN/Inf — map to null).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` prints integral floats without a dot; keep them valid
        // JSON numbers either way, but add `.0` for round-trip clarity.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Prints a markdown-style table: a header row and aligned cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (idx, cell) in row.iter().enumerate() {
            if idx < widths.len() {
                widths[idx] = widths[idx].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (idx, cell) in cells.iter().enumerate() {
            let w = widths.get(idx).copied().unwrap_or(cell.len());
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Parses an optional `--json <path>` argument pair from `args`.
#[must_use]
pub fn json_path(args: &[String]) -> Option<std::path::PathBuf> {
    args.windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| std::path::PathBuf::from(&w[1]))
}

/// Parses an optional `--hours <f64>` argument (scale knob so CI can run
/// the binaries quickly while full runs default to paper-scale).
#[must_use]
pub fn hours_arg(args: &[String], default: f64) -> f64 {
    args.windows(2)
        .find(|w| w[0] == "--hours")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_path_parsing() {
        let args = vec!["--json".to_string(), "/tmp/x.json".to_string()];
        assert_eq!(json_path(&args).unwrap().to_str().unwrap(), "/tmp/x.json");
        assert!(json_path(&[]).is_none());
    }

    #[test]
    fn hours_parsing() {
        let args = vec!["--hours".to_string(), "2.5".to_string()];
        assert_eq!(hours_arg(&args, 8.0), 2.5);
        assert_eq!(hours_arg(&[], 8.0), 8.0);
        let bad = vec!["--hours".to_string(), "x".to_string()];
        assert_eq!(hours_arg(&bad, 8.0), 8.0);
    }

    #[test]
    fn figure_round_trips_to_json() {
        let fig = Figure::new("test", vec![Series::new("s", vec![(1.0, 2.0)])]);
        let dir = std::env::temp_dir().join("heb_fig_test.json");
        fig.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(&dir).unwrap();
        assert!(body.contains("\"label\": \"s\""));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn print_table_is_total() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
