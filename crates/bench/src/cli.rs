//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary under `src/bin/` accepts the same core flags; this
//! module parses them once so the binaries stay thin:
//!
//! ```text
//! --hours H      simulated hours (per-binary default; CI passes small)
//! --seed S       base RNG seed (per-binary default)
//! --json PATH    also serialise the figure's raw series
//! --jobs N       fleet-engine worker count (default: all cores)
//! --no-cache     bypass the content-addressed result cache
//! --cache-dir D  cache root (default results/cache)
//! --max-retries N    attempts after a failed scenario (default 1)
//! --timeout-secs S   per-scenario wall-clock watchdog (default off)
//! ```
//!
//! [`BenchArgs::engine`] builds the [`FleetEngine`] the scenario-ised
//! experiments run on; binaries with no simulation batches just read
//! `hours` / `seed` / `json` and ignore the engine knobs.

use std::path::PathBuf;

use heb_fleet::{FleetEngine, HardenPolicy, ResultCache};

use crate::{hours_arg, json_path};

/// The core flags shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Simulated hours (`--hours`, per-binary default).
    pub hours: f64,
    /// Base RNG seed (`--seed`, per-binary default).
    pub seed: u64,
    /// Optional JSON output path (`--json`).
    pub json: Option<PathBuf>,
    /// Fleet-engine worker count (`--jobs`, default: all cores).
    pub jobs: usize,
    /// Whether the result cache is consulted (`--no-cache` disables).
    pub use_cache: bool,
    /// Result-cache root (`--cache-dir`, default `results/cache`).
    pub cache_dir: PathBuf,
    /// Retries after a failed scenario attempt (`--max-retries`,
    /// default 1 — a transient failure gets one more chance).
    pub max_retries: u32,
    /// Per-scenario wall-clock watchdog (`--timeout-secs`, default
    /// off).
    pub timeout_secs: Option<u64>,
    /// The raw argument list, for binary-specific flags.
    pub raw: Vec<String>,
}

impl BenchArgs {
    /// Parses the process's own arguments.
    #[must_use]
    pub fn from_env(default_hours: f64, default_seed: u64) -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        Self::from_slice(&raw, default_hours, default_seed)
    }

    /// Parses an explicit argument slice (testable entry point).
    #[must_use]
    pub fn from_slice(args: &[String], default_hours: f64, default_seed: u64) -> Self {
        let value_of = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
        let default_jobs = std::thread::available_parallelism().map_or(1, usize::from);
        Self {
            hours: hours_arg(args, default_hours),
            seed: value_of("--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_seed),
            json: json_path(args),
            jobs: value_of("--jobs")
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_jobs),
            use_cache: !args.iter().any(|a| a == "--no-cache"),
            cache_dir: value_of("--cache-dir")
                .map_or_else(|| PathBuf::from("results/cache"), PathBuf::from),
            max_retries: value_of("--max-retries")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
            timeout_secs: value_of("--timeout-secs").and_then(|v| v.parse().ok()),
            raw: args.to_vec(),
        }
    }

    /// Whether a bare flag (e.g. `--ablate-pat`) was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// Builds the fleet engine these arguments describe: `jobs`
    /// workers, the robustness policy (retries and watchdog), and the
    /// result cache attached unless `--no-cache`. Every sim-driven
    /// experiment binary inherits panic isolation, retry, and graceful
    /// cache degradation through this one constructor.
    #[must_use]
    pub fn engine(&self) -> FleetEngine {
        let engine = FleetEngine::new(self.jobs).with_policy(HardenPolicy {
            max_retries: self.max_retries,
            timeout_ms: self.timeout_secs.map(|s| s.saturating_mul(1000)),
            ..HardenPolicy::default()
        });
        if self.use_cache {
            engine.with_cache(ResultCache::new(&self.cache_dir))
        } else {
            engine
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_string()).collect()
    }

    #[test]
    fn defaults_apply_when_unset() {
        let args = BenchArgs::from_slice(&[], 6.0, 2015);
        assert_eq!(args.hours, 6.0);
        assert_eq!(args.seed, 2015);
        assert!(args.json.is_none());
        assert!(args.use_cache);
        assert_eq!(args.cache_dir, PathBuf::from("results/cache"));
        assert!(args.jobs >= 1);
    }

    #[test]
    fn every_core_flag_parses() {
        let args = BenchArgs::from_slice(
            &to_args(&[
                "--hours",
                "0.5",
                "--seed",
                "7",
                "--json",
                "/tmp/f.json",
                "--jobs",
                "3",
                "--no-cache",
                "--cache-dir",
                "/tmp/cc",
            ]),
            6.0,
            2015,
        );
        assert_eq!(args.hours, 0.5);
        assert_eq!(args.seed, 7);
        assert_eq!(args.json.unwrap(), PathBuf::from("/tmp/f.json"));
        assert_eq!(args.jobs, 3);
        assert!(!args.use_cache);
        assert_eq!(args.cache_dir, PathBuf::from("/tmp/cc"));
    }

    #[test]
    fn malformed_values_fall_back_to_defaults() {
        let args = BenchArgs::from_slice(&to_args(&["--seed", "x", "--jobs", "y"]), 1.0, 11);
        assert_eq!(args.seed, 11);
        assert!(args.jobs >= 1);
    }

    #[test]
    fn binary_specific_flags_stay_reachable() {
        let args = BenchArgs::from_slice(&to_args(&["--ablate-pat"]), 1.0, 1);
        assert!(args.flag("--ablate-pat"));
        assert!(!args.flag("--ablate-dr"));
    }

    #[test]
    fn robustness_flags_parse_and_reach_the_engine() {
        let args = BenchArgs::from_slice(
            &to_args(&["--max-retries", "3", "--timeout-secs", "10"]),
            1.0,
            1,
        );
        assert_eq!(args.max_retries, 3);
        assert_eq!(args.timeout_secs, Some(10));
        let engine = args.engine();
        assert_eq!(engine.policy().max_retries, 3);
        assert_eq!(engine.policy().timeout_ms, Some(10_000));
        let defaults = BenchArgs::from_slice(&[], 1.0, 1);
        assert_eq!(defaults.max_retries, 1);
        assert_eq!(defaults.timeout_secs, None);
    }

    #[test]
    fn engine_honours_the_cache_switch() {
        let on = BenchArgs::from_slice(&[], 1.0, 1).engine();
        assert!(on.cache().is_some());
        let off = BenchArgs::from_slice(&to_args(&["--no-cache"]), 1.0, 1).engine();
        assert!(off.cache().is_none());
    }
}
