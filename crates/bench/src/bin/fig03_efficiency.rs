//! Figure 3: round-trip efficiency comparison with 1, 2, and 4 servers.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::efficiency_characterization;

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let results = efficiency_characterization(&[1, 2, 4]);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.servers.to_string(),
                format!("{:.1} %", r.sc_efficiency.as_percent()),
                format!("{:.1} %", r.battery_one_shot.as_percent()),
                format!("{:.1} %", r.battery_with_recovery.as_percent()),
                format!(
                    "+{:.1} pts",
                    r.battery_with_recovery.as_percent() - r.battery_one_shot.as_percent()
                ),
                format!("{:.0} %", r.on_off_waste_fraction.as_percent()),
            ]
        })
        .collect();
    print_table(
        "Figure 3: energy-efficiency characterisation",
        &[
            "servers",
            "SC round trip",
            "battery one-shot",
            "battery w/ recovery",
            "recovery gain",
            "on/off waste of gain",
        ],
        &rows,
    );
    println!(
        "\nshape check: SC 90-95 % band, battery <80 % and falling with load, \
         recovery adds points but server cycling burns a large share of them."
    );

    if let Some(path) = cli.json.as_deref() {
        let to_series = |label: &str, f: fn(&heb_core::experiments::EfficiencyResult) -> f64| {
            Series::new(
                label,
                results.iter().map(|r| (r.servers as f64, f(r))).collect(),
            )
        };
        let fig = Figure::new(
            "Figure 3: efficiency comparison",
            vec![
                to_series("supercap", |r| r.sc_efficiency.get()),
                to_series("battery one-shot", |r| r.battery_one_shot.get()),
                to_series("battery recovery", |r| r.battery_with_recovery.get()),
            ],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
