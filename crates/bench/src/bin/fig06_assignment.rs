//! Figure 6: cluster runtime vs SC/battery server assignment.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::assignment_sweep;
use heb_units::{Joules, Ratio, Watts};

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let servers = 4;
    let points = assignment_sweep(
        servers,
        Watts::new(65.0),
        Joules::from_watt_hours(150.0),
        Ratio::new_clamped(0.3),
    );
    let best = points
        .iter()
        .map(|p| p.runtime.get())
        .fold(0.0_f64, f64::max);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!(
                    "{} SC / {} BA",
                    p.sc_servers,
                    p.total_servers - p.sc_servers
                ),
                format!("{:.2}", p.r_lambda().get()),
                format!("{:.0} s", p.runtime.get()),
                format!("{:.1} %", 100.0 * p.runtime.get() / best),
            ]
        })
        .collect();
    print_table(
        "Figure 6: runtime vs server assignment (constant demand, buffers only)",
        &["assignment", "R_lambda", "runtime", "vs best"],
        &rows,
    );
    println!(
        "\nshape check: an interior assignment maximises runtime; leaning fully \
         on the SC pool costs ~10-25 % of uptime."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "Figure 6: assignment sweep",
            vec![Series::new(
                "runtime (s)",
                points
                    .iter()
                    .map(|p| (p.r_lambda().get(), p.runtime.get()))
                    .collect(),
            )],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
