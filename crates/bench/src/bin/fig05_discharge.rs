//! Figure 5: discharge voltage curves, super-capacitor vs battery.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::discharge_curves;

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let curves = discharge_curves(&[1, 2, 4]);

    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            let duration = c.sample_every.get() * (c.voltages.len().max(1) - 1) as f64;
            vec![
                c.device.to_string(),
                c.servers.to_string(),
                format!("{:.0} s", duration),
                format!("{:.2} V", c.total_drop().get()),
                format!("{:.3} V", c.max_step_drop().get()),
                format!("{:.3}", c.nonlinearity()),
            ]
        })
        .collect();
    print_table(
        "Figure 5: discharge voltage characterisation",
        &[
            "device",
            "servers",
            "runtime",
            "total drop",
            "worst step drop",
            "nonlinearity",
        ],
        &rows,
    );
    println!(
        "\nshape check: SC curves decline near-linearly at every load; battery \
         curves hold a plateau then collapse, the harder the bigger the load."
    );

    if let Some(path) = cli.json.as_deref() {
        let series = curves
            .iter()
            .map(|c| {
                Series::new(
                    format!("{} x{}", c.device, c.servers),
                    c.voltages
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (i as f64 * c.sample_every.get(), v.get()))
                        .collect(),
                )
            })
            .collect();
        Figure::new("Figure 5: discharge curves", series)
            .write_json(path)
            .expect("write json");
        println!("(series written to {})", path.display());
    }
}
