//! Extension experiment: the operating bill per scheme — Figure 12's
//! metrics priced at Figure 15's rates (energy + demand charge +
//! downtime cost), in dollars.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::{PolicyKind, SimConfig, Simulation};
use heb_tco::{bill_run, Tariff};
use heb_units::{Joules, Watts};
use heb_workload::Archetype;

fn main() {
    let cli = BenchArgs::from_env(12.0, 2015);
    let hours = cli.hours;
    // The stressed regime where scheme quality shows up as money.
    let base = SimConfig::prototype()
        .with_budget(Watts::new(245.0))
        .with_total_capacity(Joules::from_watt_hours(60.0));
    let tariff = Tariff::paper_defaults();
    let mix = [
        Archetype::Terasort,
        Archetype::WebSearch,
        Archetype::Dfsioe,
        Archetype::PageRank,
        Archetype::Hivebench,
        Archetype::MediaStreaming,
    ];

    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for (idx, policy) in PolicyKind::ALL.into_iter().enumerate() {
        let mut sim = Simulation::new(base.clone().with_policy(policy), &mix, cli.seed);
        let report = sim.run_for_hours(hours);
        let bill = bill_run(
            &tariff,
            report.utility_supplied,
            report.utility_peak,
            report.server_downtime,
            report.sim_time,
        );
        rows.push(vec![
            policy.name().to_string(),
            format!("{:.2} $", bill.energy_cost.get()),
            format!("{:.2} $", bill.demand_cost.get()),
            format!("{:.2} $", bill.downtime_cost.get()),
            format!("{:.2} $", bill.total().get()),
        ]);
        totals.push((idx as f64, bill.total().get()));
    }
    print_table(
        &format!(
            "operating bill per scheme ({hours:.1} h stressed run; energy 0.10 $/kWh, \
             demand 12 $/kW-mo, downtime 20 $/server-h)"
        ),
        &["scheme", "energy", "demand", "downtime", "total"],
        &rows,
    );
    println!(
        "\ndowntime dominates the bill at real rates — the dollars behind the\n\
         paper's argument that buffer management quality, not buffer capacity,\n\
         is what pays."
    );

    if let Some(path) = cli.json.as_deref() {
        Figure::new(
            "operating bill per scheme",
            vec![Series::new("total_usd", totals)],
        )
        .write_json(path)
        .expect("write json");
        println!("(series written to {})", path.display());
    }
}
