//! Extension experiment: the fleet-scale hot path. Simulates a full
//! steady day at datacenter scale (1 k → 100 k servers by default) and
//! reports wall-clock throughput alongside the physics sanity numbers.
//!
//! Timing is the point here, so scenarios run inline and uncached —
//! `--jobs`/cache flags are accepted but ignored. `--scales a,b,c`
//! overrides the trajectory.

use std::time::Instant;

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::{megafleet_scenario, MEGAFLEET_SCALES};

fn main() {
    let cli = BenchArgs::from_env(24.0, 2015);
    let scales: Vec<usize> = cli.raw.windows(2).find(|w| w[0] == "--scales").map_or_else(
        || MEGAFLEET_SCALES.to_vec(),
        |w| {
            w[1].split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        },
    );
    if scales.is_empty() {
        eprintln!("--scales parsed to an empty trajectory");
        std::process::exit(2);
    }

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &servers in &scales {
        let scenario = megafleet_scenario(servers, cli.hours, cli.seed);
        let start = Instant::now();
        let report = scenario.run_expect();
        let wall = start.elapsed();
        let wall_secs = wall.as_secs_f64();
        let server_hours_per_sec =
            servers as f64 * report.sim_time.as_hours() / wall_secs.max(1e-9);
        rows.push(vec![
            format!("{servers}"),
            format!("{:.1} h", report.sim_time.as_hours()),
            format!("{wall_secs:.3} s"),
            format!("{server_hours_per_sec:.3e}"),
            format!("{}", report.shed_events),
            format!(
                "{:.1} W",
                report.utility_supplied.get() / report.sim_time.get() / servers as f64
            ),
        ]);
        points.push((servers as f64, wall_secs));
    }
    print_table(
        &format!(
            "megafleet: steady {:.0} h day through the event-driven core",
            cli.hours
        ),
        &[
            "servers",
            "simulated",
            "wall clock",
            "server-hours/s",
            "sheds",
            "mean W/server",
        ],
        &rows,
    );
    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "megafleet scale trajectory",
            vec![Series::new("wall_secs", points)],
        );
        fig.write_json(path).expect("write json");
    }
    println!(
        "\nthe struct-of-arrays cluster, the aggregation tree, and batched ESD\n\
         stepping keep a 100 k-server day in single-digit seconds; scaling is\n\
         linear in fleet size because per-tick work is O(changed servers)."
    );
}
