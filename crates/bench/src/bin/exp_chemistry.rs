//! Extension experiment: buffer-chemistry shoot-out on a peak-shaving
//! duty cycle, with Figure 4's economics attached.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::{chemistry_comparison, DutyCycle};
use heb_tco::StorageTechnology;
use heb_units::Joules;

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let usable = Joules::from_watt_hours(105.0);
    let points = chemistry_comparison(usable, &DutyCycle::prototype_day());

    let tech = |name: &str| -> Option<StorageTechnology> {
        match name {
            "lead-acid" => Some(StorageTechnology::lead_acid()),
            "lithium-ion" => Some(StorageTechnology::li_ion()),
            "super-capacitor" => Some(StorageTechnology::super_capacitor()),
            _ => None,
        }
    };

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let price = tech(p.chemistry).map_or("-".to_string(), |t| {
                format!(
                    "{:.0} $ / {:.0} $/yr",
                    t.initial_cost_per_kwh().get() * usable.as_kilowatt_hours(),
                    t.amortized_cost_per_kwh_year().get() * usable.as_kilowatt_hours()
                )
            });
            vec![
                p.chemistry.to_string(),
                format!("{:.1} %", p.coverage.as_percent()),
                format!("{:.1} %", p.round_trip.as_percent()),
                format!("{:.5}", p.life_used),
                price,
            ]
        })
        .collect();
    print_table(
        "chemistry shoot-out: 48x (150 W x 6 min peak / 25 W recharge) on 105 Wh usable",
        &[
            "chemistry",
            "peak coverage",
            "round trip",
            "life used (day)",
            "capex / amortised",
        ],
        &rows,
    );
    println!(
        "\nFigure 4 in action: lead-acid is cheap but wears and under-covers;\n\
         lithium-ion closes most of the performance gap at mid price; the SC\n\
         is operationally ideal and economically absurd as bulk storage —\n\
         which is exactly why HEB pairs a small SC pool with bulk batteries."
    );

    if let Some(path) = cli.json.as_deref() {
        Figure::new(
            "chemistry comparison",
            vec![
                Series::new(
                    "coverage",
                    points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.coverage.get()))
                        .collect(),
                ),
                Series::new(
                    "life_used",
                    points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.life_used))
                        .collect(),
                ),
            ],
        )
        .write_json(path)
        .expect("write json");
        println!("(series written to {})", path.display());
    }
}
