//! Extension experiment: slot-peak prediction accuracy — the quantified
//! motivation for HEB-D over HEB-F.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::predictor_comparison;
use heb_core::SimConfig;

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let points = predictor_comparison(&SimConfig::prototype(), 288, cli.seed);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.predictor.to_string(),
                format!("{:.2} %", p.peak_mape),
                format!("{:.1} W", p.peak_mae.get()),
            ]
        })
        .collect();
    print_table(
        "slot-peak prediction accuracy over all 8 workloads (288 slots each)",
        &["predictor", "MAPE", "MAE"],
        &rows,
    );
    println!(
        "\nthe gap between last-value (HEB-F's effective predictor) and\n\
         Holt-Winters (HEB-D's) is the prediction-error reduction the paper's\n\
         scheme comparison is designed to expose."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "prediction accuracy",
            vec![Series::new(
                "mape",
                points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i as f64, p.peak_mape))
                    .collect(),
            )],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
