//! Figure 1: (a) MPPU vs provisioning level P1–P4 on a Google-style
//! cluster trace; (b) peak/valley mismatch under renewable supply.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_units::{Seconds, Watts};
use heb_workload::{ClusterTraceBuilder, SegmentKind, SolarTraceBuilder};

fn main() {
    let cli = BenchArgs::from_env(72.0, 2015);
    let days = cli.hours / 24.0;
    let nameplate = Watts::new(1000.0);
    let trace = ClusterTraceBuilder::new(nameplate)
        .seed(42)
        .days(days)
        .build();

    // Part (a): provisioning levels P1 (over) … P4 (40 %).
    let levels = [("P1", 1.0), ("P2", 0.8), ("P3", 0.6), ("P4", 0.4)];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (name, fraction) in levels {
        let budget = nameplate * fraction;
        let mppu = trace.mppu(budget);
        let shaved = trace.energy_above(budget).as_kilowatt_hours();
        rows.push(vec![
            name.to_string(),
            format!("{:.0} W", budget.get()),
            format!("{:.1} %", 100.0 * mppu),
            format!("{shaved:.1} kWh"),
        ]);
        points.push((fraction, mppu));
    }
    print_table(
        &format!("Figure 1(a): provisioning analysis over {days:.1} days (Google-style trace)"),
        &["level", "budget", "MPPU", "energy above budget"],
        &rows,
    );

    // Part (b): mismatch segmentation under a solar supply equal to the
    // mean demand.
    let solar = SolarTraceBuilder::new(Watts::new(2.0 * trace.mean().get()))
        .seed(7)
        .days(days.min(2.0))
        .dt(Seconds::new(60.0))
        .build();
    let demand_mean = trace.mean();
    let segments = solar.segments(demand_mean);
    let peaks = segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Peak)
        .count();
    let valleys = segments.len() - peaks;
    println!(
        "\nFigure 1(b): vs a stable {demand_mean:.0} demand, the solar supply produced \
         {peaks} surplus segments and {valleys} deficit segments — the mismatches \
         HEB buffers absorb."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "Figure 1(a): MPPU vs provisioning level",
            vec![Series::new("MPPU", points)],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
