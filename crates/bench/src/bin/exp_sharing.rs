//! Extension experiment: pooled vs per-server batteries (the Figure
//! 7(b) critique of dedicated in-server UPSes).

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::sharing_comparison;
use heb_units::{Joules, Watts};

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for hot in 1..=4usize {
        let r = sharing_comparison(
            6,
            hot,
            Watts::new(70.0),
            Watts::new(32.0),
            Joules::from_watt_hours(150.0),
        );
        rows.push(vec![
            format!("{hot} of 6"),
            format!("{:.0} s", r.pooled_runtime.get()),
            format!("{:.0} s", r.dedicated_runtime.get()),
            format!("{:.2}x", r.sharing_gain()),
            format!("{:.0} Wh", r.stranded.as_watt_hours().get()),
        ]);
        gains.push((hot as f64, r.sharing_gain()));
    }
    print_table(
        "pooled vs per-server batteries (150 Wh total, hot servers at 70 W, idle at 32 W)",
        &[
            "hot servers",
            "pooled runtime",
            "dedicated runtime",
            "sharing gain",
            "stranded (dedicated)",
        ],
        &rows,
    );
    println!(
        "\nthe paper's Section 4 point: dedicated in-server batteries cannot\n\
         assist each other, so imbalanced load strands energy that a pooled\n\
         bank would have delivered."
    );

    if let Some(path) = cli.json.as_deref() {
        Figure::new(
            "sharing gain vs load imbalance",
            vec![Series::new("gain", gains)],
        )
        .write_json(path)
        .expect("write json");
        println!("(series written to {})", path.display());
    }
}
