//! Extension experiment: the chaos harness — fault intensity × policy.
//!
//! Sweeps seeded stochastic fault storms (grid, solar, strings, relays,
//! meters) over every power-management scheme and reports how each
//! degrades: efficiency, downtime, ride-through, unserved energy during
//! faults, and recovery latency.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::fault_intensity_sweep_with;
use heb_core::SimConfig;

fn main() {
    let cli = BenchArgs::from_env(2.0, 2015);
    let hours = cli.hours;
    let intensities = [0.0, 1.0, 2.0, 4.0];

    // Three battery strings so string failures quarantine a slice of
    // the pool instead of all of it.
    let base = SimConfig::prototype().with_battery_strings(3);
    let points = fault_intensity_sweep_with(&cli.engine(), &base, hours, &intensities, cli.seed);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.policy.name().to_string(),
                format!("{:.1}x", p.intensity),
                format!("{}", p.events),
                format!("{:.3}", p.efficiency.get()),
                format!("{:.0} s", p.downtime.get()),
                format!("{:.0} s", p.ledger.ride_through.get()),
                format!("{:.0} Wh", p.ledger.fault_unserved.as_watt_hours().get()),
                format!("{:.0} s", p.ledger.recovery_latency.get()),
                format!("{}", p.ledger.replans),
                format!("{}", p.ledger.forecast_fallbacks),
            ]
        })
        .collect();
    print_table(
        &format!("fault-intensity sweep: {hours:.1} h storms, nominal profile scaled"),
        &[
            "scheme",
            "intensity",
            "events",
            "efficiency",
            "downtime",
            "ride-through",
            "fault unserved",
            "recovery",
            "replans",
            "blind slots",
        ],
        &rows,
    );

    if let Some(path) = cli.json.as_deref() {
        let mut series = Vec::new();
        for &intensity in &intensities {
            let pts: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.intensity == intensity)
                .enumerate()
                .map(|(i, p)| (i as f64, p.downtime.get()))
                .collect();
            series.push(Series::new(format!("downtime_{intensity}x"), pts));
        }
        let fig = Figure::new("fault intensity sweep", series);
        fig.write_json(path).expect("write json");
    }

    println!(
        "\nthe hybrid schemes hold efficiency under storms the battery-only\n\
         baseline cannot: quarantined strings shrink the pool gracefully and\n\
         the controller re-plans around brownouts instead of shedding."
    );
}
