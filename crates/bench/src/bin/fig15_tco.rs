//! Figure 15: TCO — (a) cost breakdown, (b) ROI surface, (c) 8-year
//! peak-shaving revenue race.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_tco::{CostBreakdown, PeakShavingModel, RoiModel, SchemeEconomics};
use heb_units::Dollars;

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);

    // (a) cost breakdown.
    let bom = CostBreakdown::prototype();
    let rows: Vec<Vec<String>> = bom
        .shares()
        .iter()
        .map(|(name, share)| vec![(*name).to_string(), format!("{:.1} %", share.as_percent())])
        .collect();
    print_table(
        "Figure 15(a): HEB node cost breakdown",
        &["component", "share"],
        &rows,
    );
    println!(
        "node total ${:.0} = {:.1} % of the ${:.0} of servers it protects",
        bom.total().get(),
        bom.fraction_of_server_cost().as_percent(),
        bom.protected_server_cost().get()
    );

    // (b) ROI surface.
    let roi = RoiModel::paper_defaults();
    let c_caps: Vec<Dollars> = [2.0, 5.0, 10.0, 15.0, 20.0]
        .iter()
        .map(|&c| Dollars::new(c))
        .collect();
    let durations = [0.25, 0.5, 1.0, 2.0, 4.0];
    let surface = roi.surface(&c_caps, &durations);
    let rows: Vec<Vec<String>> = c_caps
        .iter()
        .zip(&surface)
        .map(|(c, row)| {
            let mut cells = vec![format!("{:.0} $/W", c.get())];
            cells.extend(row.iter().map(|v| format!("{v:+.1}")));
            cells
        })
        .collect();
    print_table(
        "Figure 15(b): ROI of hybrid storage vs infrastructure CAPEX",
        &["C_cap \\ peak", "15 min", "30 min", "1 h", "2 h", "4 h"],
        &rows,
    );
    println!("positive across most of the operating region => buying buffers beats provisioning.");

    // (c) peak-shaving race.
    let model = PeakShavingModel::paper_defaults();
    let schemes = SchemeEconomics::figure15_schemes();
    let ba_only = SchemeEconomics::ba_only();
    let rows: Vec<Vec<String>> = schemes
        .iter()
        .map(|s| {
            let be = model
                .break_even_years(s, 20.0)
                .map_or("never".to_string(), |y| format!("{y:.1} y"));
            let net8 = model.net_profit(s, 8.0);
            let gain = model
                .gain_vs(s, &ba_only, 8.0)
                .map_or("-".to_string(), |g| format!("{g:.2}x"));
            vec![
                s.name.to_string(),
                format!("{:.0} $", model.capex(s).get()),
                format!("{:.0} $/y", model.annual_revenue(s).get()),
                be,
                format!("{:.0} $", net8.get()),
                gain,
            ]
        })
        .collect();
    print_table(
        "Figure 15(c): 8-year peak-shaving race (100 kW DC, 20 kWh buffer, 12 $/kW tariff)",
        &[
            "scheme",
            "capex",
            "revenue",
            "break-even",
            "8-y net",
            "gain vs BaOnly",
        ],
        &rows,
    );
    println!(
        "\npaper shape: break-even ordering HEB < BaOnly < SCFirst < BaFirst \
         (paper: 3.7/4.2/4.9/6.3 y); HEB nets >1.9x BaOnly over 8 years; a \
         mismanaged hybrid (BaFirst) under-performs homogeneous batteries."
    );

    if let Some(path) = cli.json.as_deref() {
        let series = schemes
            .iter()
            .map(|s| {
                Series::new(
                    s.name,
                    (0..=96)
                        .map(|m| {
                            let years = f64::from(m) / 12.0;
                            (years, model.net_profit(s, years).get())
                        })
                        .collect(),
                )
            })
            .collect();
        Figure::new("Figure 15(c): cumulative net profit", series)
            .write_json(path)
            .expect("write json");
        println!("(series written to {})", path.display());
    }
}
