//! Extension experiment: cluster-level vs rack-level deployment
//! (Figure 8(b) vs 8(c)) on an imbalanced multi-rack datacenter.

use heb_bench::{hours_arg, json_path, print_table, Figure, Series};
use heb_core::experiments::deployment_comparison;
use heb_core::SimConfig;
use heb_units::{Joules, Watts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hours = hours_arg(&args, 6.0);
    let base = SimConfig::prototype()
        .with_budget(Watts::new(250.0))
        .with_total_capacity(Joules::from_watt_hours(50.0));

    let mut rows = Vec::new();
    let mut benefit_series = Vec::new();
    for racks in [2usize, 3, 4] {
        let r = deployment_comparison(&base, racks, hours, 2015);
        rows.push(vec![
            racks.to_string(),
            format!("{:.0} s", r.cluster_level.server_downtime.get()),
            format!("{:.0} s", r.rack_level.server_downtime.get()),
            if r.sharing_benefit().is_finite() {
                format!("{:.2}x", r.sharing_benefit())
            } else {
                "eliminated".to_string()
            },
            format!(
                "{:.1}/{:.1} Wh",
                r.cluster_level.conversion_loss.as_watt_hours().get(),
                r.rack_level.conversion_loss.as_watt_hours().get()
            ),
        ]);
        benefit_series.push((racks as f64, r.sharing_benefit().min(100.0)));
    }
    print_table(
        &format!(
            "Figure 8(b) vs 8(c): deployment comparison ({hours:.1} h, one hot rack per datacenter)"
        ),
        &[
            "racks",
            "cluster-level downtime",
            "rack-level downtime",
            "sharing benefit",
            "conversion loss (cluster/rack)",
        ],
        &rows,
    );
    println!(
        "\nthe paper's trade-off, quantified: cluster-level deployment shares\n\
         buffer energy across racks (hot racks ride on cool racks' storage) at\n\
         the price of a DC/AC inversion on the buffer path; rack-level delivery\n\
         is lossless but strands the cool racks' energy."
    );

    if let Some(path) = json_path(&args) {
        Figure::new(
            "deployment sharing benefit",
            vec![Series::new("rack/cluster downtime ratio", benefit_series)],
        )
        .write_json(&path)
        .expect("write json");
        println!("(series written to {})", path.display());
    }
}
