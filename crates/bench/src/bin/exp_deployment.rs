//! Extension experiment: cluster-level vs rack-level deployment
//! (Figure 8(b) vs 8(c)) on an imbalanced multi-rack datacenter.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::deployment_comparison_with;
use heb_core::SimConfig;
use heb_units::{Joules, Watts};

fn main() {
    let cli = BenchArgs::from_env(6.0, 2015);
    let hours = cli.hours;
    let engine = cli.engine();
    let base = SimConfig::prototype()
        .with_budget(Watts::new(250.0))
        .with_total_capacity(Joules::from_watt_hours(50.0));

    let mut rows = Vec::new();
    let mut benefit_series = Vec::new();
    for racks in [2usize, 3, 4] {
        let r = deployment_comparison_with(&engine, &base, racks, hours, cli.seed);
        rows.push(vec![
            racks.to_string(),
            format!("{:.0} s", r.cluster_level.server_downtime.get()),
            format!("{:.0} s", r.rack_level.server_downtime.get()),
            if r.sharing_benefit().is_finite() {
                format!("{:.2}x", r.sharing_benefit())
            } else {
                "eliminated".to_string()
            },
            format!(
                "{:.1}/{:.1} Wh",
                r.cluster_level.conversion_loss.as_watt_hours().get(),
                r.rack_level.conversion_loss.as_watt_hours().get()
            ),
        ]);
        benefit_series.push((racks as f64, r.sharing_benefit().min(100.0)));
    }
    print_table(
        &format!(
            "Figure 8(b) vs 8(c): deployment comparison ({hours:.1} h, one hot rack per datacenter)"
        ),
        &[
            "racks",
            "cluster-level downtime",
            "rack-level downtime",
            "sharing benefit",
            "conversion loss (cluster/rack)",
        ],
        &rows,
    );
    println!(
        "\nthe paper's trade-off, quantified: cluster-level deployment shares\n\
         buffer energy across racks (hot racks ride on cool racks' storage) at\n\
         the price of a DC/AC inversion on the buffer path; rack-level delivery\n\
         is lossless but strands the cool racks' energy."
    );

    if let Some(path) = cli.json.as_deref() {
        Figure::new(
            "deployment sharing benefit",
            vec![Series::new("rack/cluster downtime ratio", benefit_series)],
        )
        .write_json(path)
        .expect("write json");
        println!("(series written to {})", path.display());
    }
}
