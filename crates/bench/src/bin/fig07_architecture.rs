//! Figures 7–8: energy-storage architecture comparison — centralized
//! double-converting UPS vs distributed DC batteries vs HEB at cluster
//! and rack level, all running the same HEB-D policy and workloads.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::architecture_comparison_with;
use heb_core::SimConfig;
use heb_units::Watts;

fn main() {
    let cli = BenchArgs::from_env(6.0, 2015);
    let hours = cli.hours;
    let base = SimConfig::prototype().with_budget(Watts::new(255.0));
    let points = architecture_comparison_with(&cli.engine(), &base, hours, cli.seed);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.1} %", p.report.energy_efficiency().as_percent()),
                format!("{:.1} Wh", p.report.conversion_loss.as_watt_hours().get()),
                format!("{:.1} Wh", p.report.utility_supplied.as_watt_hours().get()),
                format!("{:.0} s", p.report.server_downtime.get()),
            ]
        })
        .collect();
    print_table(
        &format!("Figures 7-8: storage-architecture comparison ({hours:.1} h, HEB-D policy)"),
        &[
            "architecture",
            "scheme efficiency",
            "conversion loss",
            "utility energy",
            "downtime",
        ],
        &rows,
    );
    println!(
        "\npaper shape: the centralized online UPS pays a 4-10 % double-conversion\n\
         tax on every watt; distributed and rack-level HEB deliver DC directly;\n\
         cluster-level HEB pays one inversion on the buffer path but can share\n\
         buffer energy across the whole cluster."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "Figures 7-8: architecture comparison",
            vec![
                Series::new(
                    "efficiency",
                    points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.report.energy_efficiency().get()))
                        .collect(),
                ),
                Series::new(
                    "conversion_loss_wh",
                    points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.report.conversion_loss.as_watt_hours().get()))
                        .collect(),
                ),
            ],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
