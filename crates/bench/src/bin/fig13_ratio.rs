//! Figure 13: SC:battery capacity-ratio sweep, normalised to 3:7.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::capacity_ratio_sweep_with;
use heb_core::SimConfig;
use heb_units::Watts;

fn main() {
    let cli = BenchArgs::from_env(4.0, 13);
    let hours = cli.hours;
    // The standard regime: the ratio's dominant effect is on battery
    // wear (the paper's strongest Figure 13 trend); efficiency, REU and
    // downtime shift by smaller margins.
    let base = SimConfig::prototype().with_budget(Watts::new(245.0));
    let points = capacity_ratio_sweep_with(
        &cli.engine(),
        &base,
        &[1, 2, 3, 4, 5],
        hours,
        hours,
        cli.seed,
    );

    let reference = points
        .iter()
        .find(|p| p.label == "3:7")
        .expect("3:7 present");
    let (ref_eff, ref_down, _, ref_reu) = reference.metrics();
    let ref_wear = reference.report.battery_life_used.get().max(1e-12);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let (eff, down, _, reu) = p.metrics();
            let wear = p.report.battery_life_used.get();
            vec![
                p.label.clone(),
                format!("{:.3}", eff / ref_eff),
                format!("{:.3}", if ref_down > 0.0 { down / ref_down } else { 1.0 }),
                // Lifetime improvement is the inverse of wear rate.
                format!("{:.2}", ref_wear / wear.max(1e-12)),
                format!("{:.3}", reu / ref_reu),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 13: capacity-ratio sweep, normalised to 3:7 ({hours:.1} h runs)"),
        &[
            "SC:BA",
            "efficiency (norm)",
            "downtime (norm)",
            "battery life (norm)",
            "REU (norm)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: every metric improves with more SC share; battery \
         lifetime improves the most, efficiency and downtime flatten out."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "Figure 13: ratio sweep",
            vec![
                Series::new(
                    "efficiency",
                    points
                        .iter()
                        .map(|p| (p.sc_fraction.get(), p.metrics().0))
                        .collect(),
                ),
                Series::new(
                    "battery wear",
                    points
                        .iter()
                        .map(|p| (p.sc_fraction.get(), p.report.battery_life_used.get()))
                        .collect(),
                ),
                Series::new(
                    "reu",
                    points
                        .iter()
                        .map(|p| (p.sc_fraction.get(), p.metrics().3))
                        .collect(),
                ),
            ],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
