//! Extension experiment: utility-outage ride-through (the original UPS
//! duty the buffers still owe the rack).

use heb_bench::{hours_arg, json_path, print_table, Figure, Series};
use heb_core::experiments::outage_ride_through;
use heb_core::SimConfig;
use heb_units::Joules;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outage_minutes = hours_arg(&args, 0.5) * 60.0;

    for capacity_wh in [60.0, 150.0] {
        let base = SimConfig::prototype().with_total_capacity(Joules::from_watt_hours(capacity_wh));
        let points = outage_ride_through(&base, 5.0, outage_minutes, 2015);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.policy.name().to_string(),
                    format!("{:.1} min", p.survival.as_minutes()),
                    format!("{:.0} s", p.downtime.get()),
                ]
            })
            .collect();
        print_table(
            &format!(
                "outage ride-through: {outage_minutes:.0} min blackout on a {capacity_wh:.0} Wh buffer"
            ),
            &["scheme", "survival to first shed", "downtime during outage"],
            &rows,
        );
        if let Some(path) = json_path(&args) {
            let fig = Figure::new(
                format!("outage ride-through ({capacity_wh:.0} Wh)"),
                vec![Series::new(
                    "survival_min",
                    points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.survival.as_minutes()))
                        .collect(),
                )],
            );
            let file = path.with_file_name(format!(
                "{}_{capacity_wh:.0}wh.json",
                path.file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("outage")
            ));
            fig.write_json(&file).expect("write json");
        }
    }
    println!(
        "\nall schemes ride through on the full prototype buffer; survival scales\n\
         with installed capacity — the safety layer the paper's equal-capacity\n\
         fairness rule protects."
    );
}
