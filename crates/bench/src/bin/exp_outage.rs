//! Extension experiment: utility-outage ride-through (the original UPS
//! duty the buffers still owe the rack).

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::outage_ride_through_with;
use heb_core::SimConfig;
use heb_units::Joules;

fn main() {
    let cli = BenchArgs::from_env(0.5, 2015);
    let outage_minutes = cli.hours * 60.0;
    let engine = cli.engine();

    for capacity_wh in [60.0, 150.0] {
        let base = SimConfig::prototype().with_total_capacity(Joules::from_watt_hours(capacity_wh));
        let points = outage_ride_through_with(&engine, &base, 5.0, outage_minutes, cli.seed);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.policy.name().to_string(),
                    format!("{:.1} min", p.survival.as_minutes()),
                    format!("{:.0} s", p.downtime.get()),
                ]
            })
            .collect();
        print_table(
            &format!(
                "outage ride-through: {outage_minutes:.0} min blackout on a {capacity_wh:.0} Wh buffer"
            ),
            &["scheme", "survival to first shed", "downtime during outage"],
            &rows,
        );
        if let Some(path) = cli.json.as_deref() {
            let fig = Figure::new(
                format!("outage ride-through ({capacity_wh:.0} Wh)"),
                vec![Series::new(
                    "survival_min",
                    points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i as f64, p.survival.as_minutes()))
                        .collect(),
                )],
            );
            let file = path.with_file_name(format!(
                "{}_{capacity_wh:.0}wh.json",
                path.file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("outage")
            ));
            fig.write_json(&file).expect("write json");
        }
    }
    println!(
        "\nall schemes ride through on the full prototype buffer; survival scales\n\
         with installed capacity — the safety layer the paper's equal-capacity\n\
         fairness rule protects."
    );
}
