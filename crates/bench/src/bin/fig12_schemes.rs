//! Figure 12: the six-scheme comparison on all four metrics, plus the
//! ablation sweeps DESIGN.md calls out (`--ablate-threshold`,
//! `--ablate-dr`, `--ablate-slot`, `--ablate-pat`).
//!
//! Two regimes are run, mirroring Section 7's methodology:
//! * the **standard** regime (260 W budget, 150 Wh buffer) for energy
//!   efficiency (12a), battery lifetime (12c), and daily REU (12d);
//! * the **stressed** regime (245 W budget, 60 Wh buffer — the paper's
//!   "intentionally lower the utility power budget") for server
//!   downtime (12b);
//! * plus the event-scale deep-valley absorption test behind the
//!   paper's headline REU improvement.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::{deep_valley_absorption_with, scheme_comparison_with, SchemeResult};
use heb_core::{PolicyKind, SimConfig};
use heb_units::{Joules, Ratio, Seconds, Watts};
use heb_workload::PeakClass;

fn standard_config() -> SimConfig {
    SimConfig::prototype()
}

fn stressed_config() -> SimConfig {
    SimConfig::prototype()
        .with_budget(Watts::new(245.0))
        .with_total_capacity(Joules::from_watt_hours(60.0))
}

fn find(results: &[SchemeResult], policy: PolicyKind) -> &SchemeResult {
    results
        .iter()
        .find(|r| r.policy == policy)
        .expect("scheme present")
}

fn report(standard: &[SchemeResult], stressed: &[SchemeResult], title: &str) {
    let base = find(standard, PolicyKind::BaOnly);
    let base_eff = base.mean_efficiency(None).get();
    let base_reu = base.reu().get();
    let base_down = find(stressed, PolicyKind::BaOnly)
        .total_downtime(None)
        .get()
        .max(1.0);

    let rows: Vec<Vec<String>> = standard
        .iter()
        .map(|r| {
            let eff = r.mean_efficiency(None).get();
            let eff_small = r.mean_efficiency(Some(PeakClass::Small)).get();
            let eff_large = r.mean_efficiency(Some(PeakClass::Large)).get();
            let down = find(stressed, r.policy).total_downtime(None).get();
            let life = r.mean_battery_lifetime_years().unwrap_or(f64::NAN);
            let life_x = r.lifetime_improvement_vs(base, 10.0);
            let reu = r.reu().get();
            vec![
                r.policy.name().to_string(),
                format!(
                    "{:.1} % ({:+.1} %)",
                    100.0 * eff,
                    100.0 * (eff - base_eff) / base_eff
                ),
                format!("{:.1}/{:.1} %", 100.0 * eff_small, 100.0 * eff_large),
                format!(
                    "{down:.0} s ({:+.0} %)",
                    100.0 * (down - base_down) / base_down
                ),
                format!("{life:.1} y ({life_x:.1}x wear)"),
                format!(
                    "{:.1} % ({:+.1} %)",
                    100.0 * reu,
                    100.0 * (reu - base_reu) / base_reu
                ),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "scheme",
            "efficiency (vs BaOnly)",
            "eff small/large",
            "downtime (vs BaOnly)",
            "battery life (vs BaOnly)",
            "daily REU (vs BaOnly)",
        ],
        &rows,
    );
}

fn main() {
    let cli = BenchArgs::from_env(8.0, 2015);
    let hours = cli.hours;
    let solar_hours = 12.0_f64.min(hours * 1.5);
    let seed = cli.seed;
    let engine = cli.engine();

    let standard = scheme_comparison_with(&engine, &standard_config(), hours, solar_hours, seed);
    let stressed = scheme_comparison_with(&engine, &stressed_config(), hours, 0.1, seed);
    report(
        &standard,
        &stressed,
        &format!(
            "Figure 12: scheme comparison ({hours:.1} h/workload standard + stressed, {solar_hours:.1} h solar)"
        ),
    );

    // Event-scale REU: the deep-valley absorption test.
    let valley =
        deep_valley_absorption_with(&engine, &standard_config(), Watts::new(230.0), 15.0, seed);
    let base_reu = valley
        .iter()
        .find(|v| v.policy == PolicyKind::BaOnly)
        .expect("BaOnly present")
        .reu
        .get();
    let rows: Vec<Vec<String>> = valley
        .iter()
        .map(|v| {
            vec![
                v.policy.name().to_string(),
                format!("{:.1} %", 100.0 * v.reu.get()),
                format!("{:.1} Wh", v.absorbed_wh),
                format!("{:+.1} %", 100.0 * (v.reu.get() - base_reu) / base_reu),
            ]
        })
        .collect();
    print_table(
        "Figure 12(d) at event scale: deep-valley absorption (230 W surplus, 15 min)",
        &["scheme", "window REU", "absorbed", "vs BaOnly"],
        &rows,
    );
    println!(
        "\npaper shape: HEB-D leads every metric — higher efficiency (more on \
         small peaks), ~-41 % downtime under a lowered budget, ~4.7x battery \
         life, and ~+81 % renewable utilisation in deep-valley windows."
    );

    // Ablations (each reruns the sweep with one knob varied).
    let ablate = |label: &str, configs: Vec<(String, SimConfig)>| {
        for (name, cfg) in configs {
            let std_r = scheme_comparison_with(
                &engine,
                &cfg,
                hours / 2.0,
                (solar_hours / 2.0).max(0.1),
                seed,
            );
            let mut stress = stressed_config();
            stress.small_peak_threshold = cfg.small_peak_threshold;
            stress.delta_r = cfg.delta_r;
            stress.slot_length = cfg.slot_length;
            stress.pat_energy_bucket = cfg.pat_energy_bucket;
            let str_r = scheme_comparison_with(&engine, &stress, hours / 2.0, 0.1, seed);
            report(&std_r, &str_r, &format!("ablation {label}: {name}"));
        }
    };
    if cli.flag("--ablate-threshold") {
        ablate(
            "small-peak threshold",
            [40.0, 80.0, 120.0]
                .iter()
                .map(|&t| {
                    let mut c = standard_config();
                    c.small_peak_threshold = Watts::new(t);
                    (format!("{t} W"), c)
                })
                .collect(),
        );
    }
    if cli.flag("--ablate-dr") {
        ablate(
            "delta_r",
            [0.005, 0.01, 0.05]
                .iter()
                .map(|&d| {
                    let mut c = standard_config();
                    c.delta_r = Ratio::new_clamped(d);
                    (format!("{d}"), c)
                })
                .collect(),
        );
    }
    if cli.flag("--ablate-slot") {
        ablate(
            "slot length",
            [5.0, 10.0, 20.0]
                .iter()
                .map(|&m| {
                    let mut c = standard_config();
                    c.slot_length = Seconds::from_minutes(m);
                    (format!("{m} min"), c)
                })
                .collect(),
        );
    }
    if cli.flag("--ablate-pat") {
        ablate(
            "PAT energy bucket",
            [5.0, 10.0, 20.0]
                .iter()
                .map(|&b| {
                    let mut c = standard_config();
                    c.pat_energy_bucket = Joules::from_watt_hours(b);
                    (format!("{b} Wh"), c)
                })
                .collect(),
        );
    }

    if let Some(path) = cli.json.as_deref() {
        let series = vec![
            Series::new(
                "efficiency",
                standard
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (i as f64, r.mean_efficiency(None).get()))
                    .collect(),
            ),
            Series::new(
                "downtime_s",
                stressed
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (i as f64, r.total_downtime(None).get()))
                    .collect(),
            ),
            Series::new(
                "battery_life_y",
                standard
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        (
                            i as f64,
                            r.mean_battery_lifetime_years().unwrap_or(f64::NAN),
                        )
                    })
                    .collect(),
            ),
            Series::new(
                "valley_reu",
                valley
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i as f64, v.reu.get()))
                    .collect(),
            ),
        ];
        Figure::new("Figure 12: scheme comparison", series)
            .write_json(path)
            .expect("write json");
        println!("(series written to {})", path.display());
    }
}
