//! Figure 14: total-capacity growth (DoD 40 % → 80 %) at fixed 3:7.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_core::experiments::capacity_growth_sweep_with;
use heb_core::SimConfig;
use heb_units::Watts;

fn main() {
    let cli = BenchArgs::from_env(4.0, 14);
    let hours = cli.hours;
    // Mild stress so the smallest configuration visibly struggles.
    let base = SimConfig::prototype().with_budget(Watts::new(240.0));
    let points = capacity_growth_sweep_with(
        &cli.engine(),
        &base,
        &[40, 50, 60, 70, 80],
        hours,
        hours,
        cli.seed,
    );

    let smallest = &points[0];
    let (ref_eff, ref_down, _, ref_reu) = smallest.metrics();
    let ref_wear = smallest.report.battery_life_used.get().max(1e-12);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let (eff, down, _, reu) = p.metrics();
            let wear = p.report.battery_life_used.get();
            vec![
                p.label.clone(),
                format!("{:.0} Wh", p.total_capacity.as_watt_hours().get()),
                format!("{:.3}", eff / ref_eff),
                format!("{:.3}", if ref_down > 0.0 { down / ref_down } else { 1.0 }),
                format!("{:.2}", ref_wear / wear.max(1e-12)),
                format!("{:.3}", reu / ref_reu),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 14: capacity growth via DoD, normalised to DoD 40 % ({hours:.1} h runs)"),
        &[
            "configuration",
            "usable capacity",
            "efficiency (norm)",
            "downtime (norm)",
            "battery life (norm)",
            "REU (norm)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: larger installed capacity improves efficiency and \
         resiliency, but the relationship is non-linear — gains taper."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "Figure 14: capacity growth",
            vec![
                Series::new(
                    "efficiency",
                    points
                        .iter()
                        .map(|p| (p.total_capacity.as_watt_hours().get(), p.metrics().0))
                        .collect(),
                ),
                Series::new(
                    "downtime_s",
                    points
                        .iter()
                        .map(|p| (p.total_capacity.as_watt_hours().get(), p.metrics().1))
                        .collect(),
                ),
                Series::new(
                    "reu",
                    points
                        .iter()
                        .map(|p| (p.total_capacity.as_watt_hours().get(), p.metrics().3))
                        .collect(),
                ),
            ],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
