//! Figure 4: initial vs amortised cost of storage technologies.

use heb_bench::cli::BenchArgs;
use heb_bench::{print_table, Figure, Series};
use heb_tco::StorageTechnology;

fn main() {
    let cli = BenchArgs::from_env(1.0, 2015);
    let catalog = StorageTechnology::figure4_catalog();

    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|t| {
            vec![
                t.name().to_string(),
                format!("{:.0} $/kWh", t.initial_cost_per_kwh().get()),
                format!("{:.0}", t.cycle_life()),
                format!("{:.3} $/kWh/cycle", t.amortized_cost_per_kwh_cycle().get()),
                format!("{:.0} $/kWh/yr", t.amortized_cost_per_kwh_year().get()),
                format!("{:.0} %", 100.0 * t.round_trip_efficiency()),
            ]
        })
        .collect();
    print_table(
        "Figure 4: storage-technology cost comparison",
        &[
            "technology",
            "initial cost",
            "cycle life",
            "amortised/cycle",
            "amortised/year",
            "round trip",
        ],
        &rows,
    );
    println!(
        "\nshape check: SCs cost 1-2 orders more up front but land near the \
         NiCd/Li-ion ~0.4 $/kWh/cycle band once amortised."
    );

    if let Some(path) = cli.json.as_deref() {
        let fig = Figure::new(
            "Figure 4: cost comparison",
            vec![
                Series::new(
                    "initial $/kWh",
                    catalog
                        .iter()
                        .enumerate()
                        .map(|(i, t)| (i as f64, t.initial_cost_per_kwh().get()))
                        .collect(),
                ),
                Series::new(
                    "amortised $/kWh/cycle",
                    catalog
                        .iter()
                        .enumerate()
                        .map(|(i, t)| (i as f64, t.amortized_cost_per_kwh_cycle().get()))
                        .collect(),
                ),
            ],
        );
        fig.write_json(path).expect("write json");
        println!("(series written to {})", path.display());
    }
}
