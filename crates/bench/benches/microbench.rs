//! Micro-benchmarks for HEB's hot paths: the PAT lookup, the
//! Holt-Winters step, the device step functions, and a full control
//! slot of the end-to-end simulation per policy.
//!
//! Plain `harness = false` timing loops (median-of-runs over a fixed
//! iteration budget) — the build environment is offline, so criterion
//! is unavailable. Run with `cargo bench`.
//!
//! `cargo bench -p heb-bench --bench microbench -- --telemetry-guard`
//! runs only the telemetry-overhead guard: an interleaved A/B of the
//! end-to-end slot loop without and with an explicitly attached
//! `NullRecorder`, failing (exit 1) if the attached side is more than
//! 5 % slower. Together with the core `disabled_recorder_is_never_invoked`
//! test this pins the "zero-cost when disabled" contract.

use heb_core::{PolicyKind, PowerAllocationTable, Scenario, SimConfig, Simulation};
use heb_esd::{LeadAcidBattery, StorageDevice, SuperCapacitor};
use heb_fleet::FleetEngine;
use heb_forecast::{HoltWinters, Predictor};
use heb_units::{Joules, Ratio, Seconds, Watts};
use heb_workload::Archetype;
use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `f`, repeated over `runs` runs, and prints
/// the best per-iteration latency (least-noise estimator for short,
/// deterministic kernels).
fn bench(name: &str, runs: usize, iters: u64, mut f: impl FnMut()) {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per_iter);
    }
    let (value, unit) = if best < 1e-6 {
        (best * 1e9, "ns")
    } else if best < 1e-3 {
        (best * 1e6, "us")
    } else {
        (best * 1e3, "ms")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({runs} runs x {iters} iters)");
}

fn bench_pat() {
    let mut pat = PowerAllocationTable::new(
        Joules::from_watt_hours(10.0),
        Watts::new(20.0),
        Ratio::new_clamped(0.01),
    );
    // Populate a realistic table (hundreds of entries).
    for sc in 0..8 {
        for ba in 0..12 {
            for pm in 0..8 {
                let key = pat.key(
                    Joules::from_watt_hours(f64::from(sc) * 10.0),
                    Joules::from_watt_hours(f64::from(ba) * 10.0),
                    Watts::new(f64::from(pm) * 20.0),
                );
                pat.insert(key, Ratio::new_clamped(0.3));
            }
        }
    }
    let miss = pat.key(
        Joules::from_watt_hours(83.0),
        Joules::from_watt_hours(123.0),
        Watts::new(171.0),
    );
    bench("pat/lookup_similar_miss", 10, 10_000, || {
        black_box(pat.lookup_similar(black_box(miss)));
    });
    let hit = pat.key(
        Joules::from_watt_hours(40.0),
        Joules::from_watt_hours(60.0),
        Watts::new(80.0),
    );
    bench("pat/lookup_hit", 10, 100_000, || {
        black_box(pat.lookup(black_box(hit)));
    });
}

fn bench_forecast() {
    let mut hw = HoltWinters::for_power_series(144);
    let mut x = 0.0_f64;
    bench("forecast/holt_winters_observe", 10, 50_000, || {
        x += 1.0;
        hw.observe(black_box(200.0 + (x * 0.1).sin() * 50.0));
        black_box(hw.forecast(1));
    });
}

fn bench_devices() {
    let mut battery = LeadAcidBattery::prototype_string();
    bench("esd/battery_discharge_tick", 10, 50_000, || {
        let r = battery.discharge(black_box(Watts::new(120.0)), Seconds::new(1.0));
        if battery.is_depleted() {
            battery = LeadAcidBattery::prototype_string();
        }
        black_box(r);
    });
    let mut sc = SuperCapacitor::prototype_module();
    bench("esd/supercap_discharge_tick", 10, 50_000, || {
        let r = sc.discharge(black_box(Watts::new(120.0)), Seconds::new(1.0));
        if sc.is_depleted() {
            sc = SuperCapacitor::prototype_module();
        }
        black_box(r);
    });
}

fn bench_simulation() {
    for policy in [PolicyKind::BaOnly, PolicyKind::ScFirst, PolicyKind::HebD] {
        bench(&format!("sim/one_slot/{}", policy.name()), 5, 10, || {
            let mut sim = Simulation::new(
                SimConfig::prototype().with_policy(policy),
                &[Archetype::WebSearch, Archetype::Terasort],
                42,
            );
            black_box(sim.run_ticks(600));
        });
    }
}

fn bench_fleet_engine() {
    // Engine throughput: a 16-scenario batch of short mixed-workload
    // runs, executed at increasing worker counts (no cache, so every
    // scenario simulates). On a single-core host the levels collapse
    // to serial throughput; on multi-core the scaling is visible.
    let batch: Vec<Scenario> = (0..16)
        .map(|i| {
            Scenario::new(
                format!("microbench/{i}"),
                SimConfig::prototype().with_policy(PolicyKind::HebD),
                &[Archetype::WebSearch, Archetype::Terasort],
                0.05,
                42 + i,
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut levels = vec![1, 4];
    if !levels.contains(&cores) {
        levels.push(cores);
    }
    for jobs in levels {
        let engine = FleetEngine::new(jobs);
        let mut throughput = 0.0_f64;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(engine.run(black_box(&batch)));
            throughput = throughput.max(batch.len() as f64 / start.elapsed().as_secs_f64());
        }
        println!(
            "{:<40} {throughput:>10.2} scenarios/s  (best of 3 x {}-scenario batches)",
            format!("fleet/engine_throughput/jobs={jobs}"),
            batch.len()
        );
    }
}

/// Best per-iteration seconds for one full control slot, with or
/// without an explicitly attached `NullRecorder`.
fn slot_latency(attach_null: bool, runs: usize, iters: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        for _ in 0..iters {
            let mut sim = Simulation::new(
                SimConfig::prototype().with_policy(PolicyKind::HebD),
                &[Archetype::WebSearch, Archetype::Terasort],
                42,
            );
            if attach_null {
                sim.set_recorder(heb_telemetry::null_recorder());
            }
            black_box(sim.run_ticks(600));
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// The NullRecorder overhead budget: attaching the default recorder
/// explicitly must stay within 5 % of the untouched simulation. The
/// sides are interleaved (A, B, A, B, …) so frequency drift and cache
/// warm-up hit both equally; each side keeps its own best-of estimate.
fn telemetry_guard() -> i32 {
    println!("telemetry-overhead guard: slot loop, default vs attached NullRecorder\n");
    let (runs, iters) = (6, 8);
    let mut baseline = f64::INFINITY;
    let mut with_null = f64::INFINITY;
    for _ in 0..runs {
        baseline = baseline.min(slot_latency(false, 1, iters));
        with_null = with_null.min(slot_latency(true, 1, iters));
    }
    let ratio = with_null / baseline;
    println!("baseline      {:>10.3} ms/slot", baseline * 1e3);
    println!("null recorder {:>10.3} ms/slot", with_null * 1e3);
    println!("ratio         {ratio:>10.3}  (budget 1.05)");
    if ratio > 1.05 {
        eprintln!("FAIL: NullRecorder overhead exceeds the 5 % budget");
        1
    } else {
        println!("OK: NullRecorder within the overhead budget");
        0
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--telemetry-guard") {
        std::process::exit(telemetry_guard());
    }
    println!("HEB micro-benchmarks (best-of-runs per-iteration latency)\n");
    bench_pat();
    bench_forecast();
    bench_devices();
    bench_simulation();
    bench_fleet_engine();
}
