//! Criterion micro-benchmarks for HEB's hot paths: the PAT lookup, the
//! Holt-Winters step, the device step functions, and a full control
//! slot of the end-to-end simulation per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heb_core::{PolicyKind, PowerAllocationTable, SimConfig, Simulation};
use heb_esd::{LeadAcidBattery, StorageDevice, SuperCapacitor};
use heb_forecast::{HoltWinters, Predictor};
use heb_units::{Joules, Ratio, Seconds, Watts};
use heb_workload::Archetype;
use std::hint::black_box;

fn bench_pat(c: &mut Criterion) {
    let mut pat = PowerAllocationTable::new(
        Joules::from_watt_hours(10.0),
        Watts::new(20.0),
        Ratio::new_clamped(0.01),
    );
    // Populate a realistic table (hundreds of entries).
    for sc in 0..8 {
        for ba in 0..12 {
            for pm in 0..8 {
                let key = pat.key(
                    Joules::from_watt_hours(f64::from(sc) * 10.0),
                    Joules::from_watt_hours(f64::from(ba) * 10.0),
                    Watts::new(f64::from(pm) * 20.0),
                );
                pat.insert(key, Ratio::new_clamped(0.3));
            }
        }
    }
    let miss = pat.key(
        Joules::from_watt_hours(83.0),
        Joules::from_watt_hours(123.0),
        Watts::new(171.0),
    );
    c.bench_function("pat/lookup_similar_miss", |b| {
        b.iter(|| black_box(pat.lookup_similar(black_box(miss))))
    });
    let hit = pat.key(
        Joules::from_watt_hours(40.0),
        Joules::from_watt_hours(60.0),
        Watts::new(80.0),
    );
    c.bench_function("pat/lookup_hit", |b| {
        b.iter(|| black_box(pat.lookup(black_box(hit))))
    });
}

fn bench_forecast(c: &mut Criterion) {
    c.bench_function("forecast/holt_winters_observe", |b| {
        let mut hw = HoltWinters::for_power_series(144);
        let mut x = 0.0_f64;
        b.iter(|| {
            x += 1.0;
            hw.observe(black_box(200.0 + (x * 0.1).sin() * 50.0));
            black_box(hw.forecast(1))
        })
    });
}

fn bench_devices(c: &mut Criterion) {
    c.bench_function("esd/battery_discharge_tick", |b| {
        let mut battery = LeadAcidBattery::prototype_string();
        b.iter(|| {
            let r = battery.discharge(black_box(Watts::new(120.0)), Seconds::new(1.0));
            if battery.is_depleted() {
                battery = LeadAcidBattery::prototype_string();
            }
            black_box(r)
        })
    });
    c.bench_function("esd/supercap_discharge_tick", |b| {
        let mut sc = SuperCapacitor::prototype_module();
        b.iter(|| {
            let r = sc.discharge(black_box(Watts::new(120.0)), Seconds::new(1.0));
            if sc.is_depleted() {
                sc = SuperCapacitor::prototype_module();
            }
            black_box(r)
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/one_slot");
    group.sample_size(10);
    for policy in [PolicyKind::BaOnly, PolicyKind::ScFirst, PolicyKind::HebD] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || {
                        Simulation::new(
                            SimConfig::prototype().with_policy(policy),
                            &[Archetype::WebSearch, Archetype::Terasort],
                            42,
                        )
                    },
                    |mut sim| black_box(sim.run_ticks(600)),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pat,
    bench_forecast,
    bench_devices,
    bench_simulation
);
criterion_main!(benches);
