//! Micro-benchmarks for HEB's hot paths: the PAT lookup, the
//! Holt-Winters step, the device step functions, and a full control
//! slot of the end-to-end simulation per policy.
//!
//! Plain `harness = false` timing loops (median-of-runs over a fixed
//! iteration budget) — the build environment is offline, so criterion
//! is unavailable. Run with `cargo bench`.
//!
//! `cargo bench -p heb-bench --bench microbench -- --telemetry-guard`
//! runs only the telemetry-overhead guard: an interleaved A/B of the
//! end-to-end slot loop without and with an explicitly attached
//! `NullRecorder`, failing (exit 1) if the attached side is more than
//! 5 % slower. Together with the core `disabled_recorder_is_never_invoked`
//! test this pins the "zero-cost when disabled" contract.
//!
//! `-- --throughput-baseline [PATH]` measures fleet-engine throughput
//! and writes it to `PATH` (default `BENCH_engine_throughput.json`);
//! the committed copy at the repo root is the regression reference.
//! `-- --throughput-guard PATH` re-measures and fails (exit 1) if
//! throughput fell below `floor_fraction` of the recorded baseline —
//! the floor is deliberately generous (0.25) so the guard catches
//! order-of-magnitude regressions (an accidentally quadratic probe
//! pass, a sync added per tick) rather than machine-to-machine noise.
//!
//! `-- --scale-sweep [PATH]` runs the megafleet scale trajectory
//! (1 k / 10 k / 100 k servers, a steady 24 h day each, through the
//! event driver) and records per-point wall-clock and server-hours/s
//! into the baseline JSON, preserving the other recorded fields.
//! `-- --scale-guard PATH` re-measures every recorded point and fails
//! (exit 1) if a point's throughput fell below `scale_floor_fraction`
//! of its recorded baseline, or if the largest fleet no longer
//! finishes its day in single-digit seconds — the tentpole product
//! claim, enforced as a hard cap rather than a relative floor.
//!
//! `-- --sparse-speedup-guard PATH` runs the sparse-workload
//! microbench: the same valley-heavy simulation driven dense
//! (`SimDriver::tick`) and leaping (`SimDriver::event`), asserting the
//! reports are identical and failing (exit 1) if event mode's
//! wall-clock speedup falls below the `sparse_speedup_floor` recorded
//! in the baseline JSON. A speedup ratio is machine-independent, so
//! unlike the throughput guard this floor is a hard product claim
//! (≥ 5×), not a noise allowance.

use heb_core::experiments::{megafleet_scenario, MEGAFLEET_SCALES};
use heb_core::{PolicyKind, PowerAllocationTable, Scenario, SimConfig, SimDriver, Simulation};
use heb_esd::{LeadAcidBattery, StorageDevice, SuperCapacitor};
use heb_fleet::{FleetEngine, RunPolicy};
use heb_forecast::{HoltWinters, Predictor};
use heb_units::{Joules, Ratio, Seconds, Watts};
use heb_workload::Archetype;
use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `f`, repeated over `runs` runs, and prints
/// the best per-iteration latency (least-noise estimator for short,
/// deterministic kernels).
fn bench(name: &str, runs: usize, iters: u64, mut f: impl FnMut()) {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per_iter);
    }
    let (value, unit) = if best < 1e-6 {
        (best * 1e9, "ns")
    } else if best < 1e-3 {
        (best * 1e6, "us")
    } else {
        (best * 1e3, "ms")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({runs} runs x {iters} iters)");
}

fn bench_pat() {
    let mut pat = PowerAllocationTable::new(
        Joules::from_watt_hours(10.0),
        Watts::new(20.0),
        Ratio::new_clamped(0.01),
    );
    // Populate a realistic table (hundreds of entries).
    for sc in 0..8 {
        for ba in 0..12 {
            for pm in 0..8 {
                let key = pat.key(
                    Joules::from_watt_hours(f64::from(sc) * 10.0),
                    Joules::from_watt_hours(f64::from(ba) * 10.0),
                    Watts::new(f64::from(pm) * 20.0),
                );
                pat.insert(key, Ratio::new_clamped(0.3));
            }
        }
    }
    let miss = pat.key(
        Joules::from_watt_hours(83.0),
        Joules::from_watt_hours(123.0),
        Watts::new(171.0),
    );
    bench("pat/lookup_similar_miss", 10, 10_000, || {
        black_box(pat.lookup_similar(black_box(miss)));
    });
    let hit = pat.key(
        Joules::from_watt_hours(40.0),
        Joules::from_watt_hours(60.0),
        Watts::new(80.0),
    );
    bench("pat/lookup_hit", 10, 100_000, || {
        black_box(pat.lookup(black_box(hit)));
    });
}

fn bench_forecast() {
    let mut hw = HoltWinters::for_power_series(144);
    let mut x = 0.0_f64;
    bench("forecast/holt_winters_observe", 10, 50_000, || {
        x += 1.0;
        hw.observe(black_box(200.0 + (x * 0.1).sin() * 50.0));
        black_box(hw.forecast(1));
    });
}

fn bench_devices() {
    let mut battery = LeadAcidBattery::prototype_string();
    bench("esd/battery_discharge_tick", 10, 50_000, || {
        let r = battery.discharge(black_box(Watts::new(120.0)), Seconds::new(1.0));
        if battery.is_depleted() {
            battery = LeadAcidBattery::prototype_string();
        }
        black_box(r);
    });
    let mut sc = SuperCapacitor::prototype_module();
    bench("esd/supercap_discharge_tick", 10, 50_000, || {
        let r = sc.discharge(black_box(Watts::new(120.0)), Seconds::new(1.0));
        if sc.is_depleted() {
            sc = SuperCapacitor::prototype_module();
        }
        black_box(r);
    });
}

fn bench_simulation() {
    for policy in [PolicyKind::BaOnly, PolicyKind::ScFirst, PolicyKind::HebD] {
        bench(&format!("sim/one_slot/{}", policy.name()), 5, 10, || {
            let mut sim = Simulation::new(
                SimConfig::prototype().with_policy(policy),
                &[Archetype::WebSearch, Archetype::Terasort],
                42,
            );
            black_box(sim.run_ticks(600));
        });
    }
}

fn bench_fleet_engine() {
    // Engine throughput: a 16-scenario batch of short mixed-workload
    // runs, executed at increasing worker counts (no cache, so every
    // scenario simulates). On a single-core host the levels collapse
    // to serial throughput; on multi-core the scaling is visible.
    let batch: Vec<Scenario> = (0..16)
        .map(|i| {
            Scenario::new(
                format!("microbench/{i}"),
                SimConfig::prototype().with_policy(PolicyKind::HebD),
                &[Archetype::WebSearch, Archetype::Terasort],
                0.05,
                42 + i,
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut levels = vec![1, 4];
    if !levels.contains(&cores) {
        levels.push(cores);
    }
    for jobs in levels {
        let engine = FleetEngine::new(jobs);
        let mut throughput = 0.0_f64;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(
                engine
                    .run(black_box(&batch), &RunPolicy::new())
                    .expect_reports(),
            );
            throughput = throughput.max(batch.len() as f64 / start.elapsed().as_secs_f64());
        }
        println!(
            "{:<40} {throughput:>10.2} scenarios/s  (best of 3 x {}-scenario batches)",
            format!("fleet/engine_throughput/jobs={jobs}"),
            batch.len()
        );
    }
}

/// The workload the throughput baseline and guard both measure: a
/// 16-scenario uncached batch (every scenario simulates), best of
/// `runs` passes at a fixed worker count.
fn measure_throughput(jobs: usize, runs: usize) -> (f64, usize) {
    let batch: Vec<Scenario> = (0..16)
        .map(|i| {
            Scenario::new(
                format!("microbench/{i}"),
                SimConfig::prototype().with_policy(PolicyKind::HebD),
                &[Archetype::WebSearch, Archetype::Terasort],
                0.05,
                42 + i,
            )
        })
        .collect();
    let engine = FleetEngine::new(jobs);
    let mut throughput = 0.0_f64;
    for _ in 0..runs {
        let start = Instant::now();
        black_box(
            engine
                .run(black_box(&batch), &RunPolicy::new())
                .expect_reports(),
        );
        throughput = throughput.max(batch.len() as f64 / start.elapsed().as_secs_f64());
    }
    (throughput, batch.len())
}

/// Fraction of the recorded baseline the current measurement must
/// reach. Generous on purpose: CI containers and laptops differ by
/// small factors, real regressions by large ones.
const THROUGHPUT_FLOOR_FRACTION: f64 = 0.25;

/// Worker count both modes pin, for comparability across machines.
const THROUGHPUT_JOBS: usize = 4;

/// One recorded (or freshly measured) megafleet scale point.
#[derive(Debug, Clone, Copy)]
struct ScalePoint {
    servers: u64,
    wall_secs: f64,
    server_hours_per_sec: f64,
}

/// Simulated horizon of every scale point: one full day.
const SCALE_HOURS: f64 = 24.0;

/// Seed pinning the scale trajectory's scenarios.
const SCALE_SEED: u64 = 2015;

/// Fraction of a recorded scale point the re-measured throughput must
/// reach — generous for the same machine-variance reason as
/// [`THROUGHPUT_FLOOR_FRACTION`].
const SCALE_FLOOR_FRACTION: f64 = 0.25;

/// Hard wall-clock cap on the largest recorded fleet's day — the
/// "100 k servers, 24 h, single-digit seconds" product claim.
const SCALE_MAX_WALL_SECS: f64 = 10.0;

/// Runs the megafleet day at `servers` and returns the best-of-`runs`
/// wall-clock measurement.
fn measure_scale_point(servers: u64, runs: usize) -> ScalePoint {
    let scenario = megafleet_scenario(servers as usize, SCALE_HOURS, SCALE_SEED);
    let mut wall_secs = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        black_box(scenario.run_expect());
        wall_secs = wall_secs.min(start.elapsed().as_secs_f64());
    }
    ScalePoint {
        servers,
        wall_secs,
        server_hours_per_sec: servers as f64 * SCALE_HOURS / wall_secs.max(1e-9),
    }
}

/// The scale points recorded in a parsed baseline, oldest format
/// (no `scale` key) yielding an empty list.
fn parse_scale(baseline: &heb_serve::Json) -> Vec<ScalePoint> {
    baseline
        .get("scale")
        .and_then(heb_serve::Json::as_arr)
        .map(|points| {
            points
                .iter()
                .filter_map(|p| {
                    Some(ScalePoint {
                        servers: p.get("servers")?.as_u64()?,
                        wall_secs: p.get("wall_secs")?.as_f64()?,
                        server_hours_per_sec: p.get("server_hours_per_sec")?.as_f64()?,
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Serialises the complete baseline file: the engine-throughput
/// fields plus the (possibly empty) megafleet scale trajectory.
fn render_baseline(batch: usize, scenarios_per_sec: f64, scale: &[ScalePoint]) -> String {
    let mut body = format!(
        "{{\n  \"bench\": \"fleet/engine_throughput\",\n  \"batch_size\": {batch},\n  \
         \"jobs\": {THROUGHPUT_JOBS},\n  \"best_of\": 3,\n  \
         \"scenarios_per_sec\": {scenarios_per_sec:.2},\n  \
         \"floor_fraction\": {THROUGHPUT_FLOOR_FRACTION},\n  \
         \"sparse_speedup_floor\": {SPARSE_SPEEDUP_FLOOR}"
    );
    if scale.is_empty() {
        body.push_str("\n}\n");
        return body;
    }
    body.push_str(&format!(
        ",\n  \"scale_hours\": {SCALE_HOURS},\n  \
         \"scale_floor_fraction\": {SCALE_FLOOR_FRACTION},\n  \
         \"scale_max_wall_secs\": {SCALE_MAX_WALL_SECS},\n  \"scale\": [\n"
    ));
    for (i, p) in scale.iter().enumerate() {
        let comma = if i + 1 < scale.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{\"servers\": {}, \"wall_secs\": {:.4}, \"server_hours_per_sec\": {:.1}}}{comma}\n",
            p.servers, p.wall_secs, p.server_hours_per_sec
        ));
    }
    body.push_str("  ]\n}\n");
    body
}

/// The baseline currently at `path`, if readable and valid.
fn load_baseline(path: &str) -> Option<heb_serve::Json> {
    let raw = std::fs::read_to_string(path).ok()?;
    heb_serve::json::parse(&raw).ok()
}

fn throughput_baseline(path: &str) -> i32 {
    let (scenarios_per_sec, batch) = measure_throughput(THROUGHPUT_JOBS, 3);
    // Refreshing the throughput number must not drop a recorded scale
    // trajectory — the two sweeps are updated independently.
    let scale = load_baseline(path)
        .map(|b| parse_scale(&b))
        .unwrap_or_default();
    match std::fs::write(path, render_baseline(batch, scenarios_per_sec, &scale)) {
        Ok(()) => {
            println!("throughput baseline: {scenarios_per_sec:.2} scenarios/s -> {path}");
            0
        }
        Err(err) => {
            eprintln!("FAIL: cannot write {path}: {err}");
            1
        }
    }
}

fn scale_sweep(path: &str) -> i32 {
    println!("megafleet scale sweep: steady {SCALE_HOURS} h day, event driver\n");
    let scale: Vec<ScalePoint> = MEGAFLEET_SCALES
        .iter()
        .map(|&servers| {
            let p = measure_scale_point(servers as u64, 2);
            println!(
                "{:<40} {:>10.3} s  ({:.3e} server-hours/s)",
                format!("megafleet/{servers}"),
                p.wall_secs,
                p.server_hours_per_sec
            );
            p
        })
        .collect();
    // Preserve the recorded engine-throughput number; measure it fresh
    // only when the file does not exist yet.
    let (scenarios_per_sec, batch) = match load_baseline(path).and_then(|b| {
        Some((
            b.get("scenarios_per_sec")?.as_f64()?,
            b.get("batch_size")?.as_u64()? as usize,
        ))
    }) {
        Some(kept) => kept,
        None => measure_throughput(THROUGHPUT_JOBS, 3),
    };
    match std::fs::write(path, render_baseline(batch, scenarios_per_sec, &scale)) {
        Ok(()) => {
            println!("scale trajectory ({} points) -> {path}", scale.len());
            0
        }
        Err(err) => {
            eprintln!("FAIL: cannot write {path}: {err}");
            1
        }
    }
}

fn scale_guard(path: &str) -> i32 {
    let Some(baseline) = load_baseline(path) else {
        eprintln!("FAIL: cannot read baseline {path}");
        eprintln!(
            "regenerate with: cargo bench -p heb-bench --bench microbench -- --scale-sweep {path}"
        );
        return 1;
    };
    let recorded = parse_scale(&baseline);
    if recorded.is_empty() {
        eprintln!("FAIL: baseline {path} records no scale trajectory");
        eprintln!(
            "regenerate with: cargo bench -p heb-bench --bench microbench -- --scale-sweep {path}"
        );
        return 1;
    }
    let floor_fraction = baseline
        .get("scale_floor_fraction")
        .and_then(heb_serve::Json::as_f64)
        .unwrap_or(SCALE_FLOOR_FRACTION);
    let max_wall = baseline
        .get("scale_max_wall_secs")
        .and_then(heb_serve::Json::as_f64)
        .unwrap_or(SCALE_MAX_WALL_SECS);
    println!(
        "megafleet scale guard: {} recorded point(s), steady {SCALE_HOURS} h day\n",
        recorded.len()
    );
    let largest = recorded.iter().map(|p| p.servers).max().unwrap_or(0);
    let mut failed = false;
    for r in &recorded {
        let measured = measure_scale_point(r.servers, 2);
        let floor = r.server_hours_per_sec * floor_fraction;
        let mut verdict = if measured.server_hours_per_sec < floor {
            failed = true;
            "FAIL (below floor)"
        } else {
            "ok"
        };
        // The single-digit-seconds claim binds the trajectory's top.
        if r.servers == largest && measured.wall_secs > max_wall {
            failed = true;
            verdict = "FAIL (over wall-clock cap)";
        }
        println!(
            "megafleet/{:<8} recorded {:>9.3e}  measured {:>9.3e} server-hours/s  \
             (floor {:>9.3e}, wall {:.3} s)  {verdict}",
            r.servers,
            r.server_hours_per_sec,
            measured.server_hours_per_sec,
            floor,
            measured.wall_secs
        );
    }
    if failed {
        eprintln!("FAIL: megafleet scale trajectory regressed");
        1
    } else {
        println!("OK: every scale point holds its throughput floor and the wall-clock cap");
        0
    }
}

fn throughput_guard(path: &str) -> i32 {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("FAIL: cannot read baseline {path}: {err}");
            eprintln!("regenerate with: cargo bench -p heb-bench --bench microbench -- --throughput-baseline {path}");
            return 1;
        }
    };
    let baseline = match heb_serve::json::parse(&raw) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("FAIL: baseline {path} is not valid JSON: {err}");
            return 1;
        }
    };
    let field = |name: &str| baseline.get(name).and_then(heb_serve::Json::as_f64);
    let (Some(recorded), Some(floor_fraction)) =
        (field("scenarios_per_sec"), field("floor_fraction"))
    else {
        eprintln!("FAIL: baseline {path} lacks scenarios_per_sec / floor_fraction");
        return 1;
    };
    let jobs = baseline
        .get("jobs")
        .and_then(heb_serve::Json::as_u64)
        .map_or(THROUGHPUT_JOBS, |j| usize::try_from(j).unwrap_or(1).max(1));

    println!("engine-throughput guard: 16-scenario uncached batch, jobs={jobs}\n");
    let (measured, _) = measure_throughput(jobs, 3);
    let floor = recorded * floor_fraction;
    println!("baseline  {recorded:>10.2} scenarios/s  ({path})");
    println!("measured  {measured:>10.2} scenarios/s");
    println!("floor     {floor:>10.2} scenarios/s  (fraction {floor_fraction})");
    if measured < floor {
        eprintln!("FAIL: engine throughput regressed below {floor_fraction} of baseline");
        1
    } else {
        println!("OK: engine throughput within the regression floor");
        0
    }
}

/// The sparse microbench horizon: 8 simulated hours of overnight-style
/// valley — long enough that the dense side takes milliseconds and the
/// leaping side's fixed per-slot costs amortise away.
const SPARSE_HOURS: f64 = 8.0;

/// The committed speedup floor written into the baseline JSON.
const SPARSE_SPEEDUP_FLOOR: f64 = 5.0;

/// A valley-heavy simulation the event driver can leap end to end:
/// generous budget (utility mode throughout), steady 30 % load, no
/// faults, noiseless metering.
fn sparse_sim() -> Simulation {
    Simulation::new(
        SimConfig::prototype()
            .with_policy(PolicyKind::HebD)
            .with_budget(Watts::new(2000.0)),
        &[Archetype::WordCount],
        42,
    )
    .with_steady_workload(Ratio::new_clamped(0.3))
}

/// Measures the event-over-tick wall-clock speedup on the sparse trace
/// (interleaved best-of, both sides snapshotting identical physics).
/// Errors if the two drivers disagree on the report — the guard must
/// never trade correctness for speed.
fn measure_sparse_speedup(runs: usize) -> Result<(f64, f64, f64), String> {
    let ticks = (SPARSE_HOURS * 3600.0).round() as u64;
    let mut tick_best = f64::INFINITY;
    let mut event_best = f64::INFINITY;
    for _ in 0..runs {
        let mut dense = SimDriver::tick(sparse_sim());
        let start = Instant::now();
        let tick_report = black_box(dense.run_ticks(ticks));
        tick_best = tick_best.min(start.elapsed().as_secs_f64());

        let mut leaping = SimDriver::event(sparse_sim());
        let start = Instant::now();
        let event_report = black_box(leaping.run_ticks(ticks));
        event_best = event_best.min(start.elapsed().as_secs_f64());

        if tick_report != event_report {
            return Err("tick and event drivers disagree on the sparse report".to_string());
        }
    }
    Ok((tick_best / event_best, tick_best, event_best))
}

fn sparse_speedup_guard(path: &str) -> i32 {
    let floor = match std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {path}: {e}"))
        .and_then(|raw| heb_serve::json::parse(&raw).map_err(|e| format!("baseline {path}: {e}")))
    {
        Ok(json) => match json
            .get("sparse_speedup_floor")
            .and_then(heb_serve::Json::as_f64)
        {
            Some(floor) => floor,
            None => {
                eprintln!("FAIL: baseline {path} lacks sparse_speedup_floor");
                return 1;
            }
        },
        Err(err) => {
            eprintln!("FAIL: {err}");
            return 1;
        }
    };
    println!("sparse-speedup guard: {SPARSE_HOURS} h steady valley, tick vs event driver\n");
    match measure_sparse_speedup(5) {
        Err(err) => {
            eprintln!("FAIL: {err}");
            1
        }
        Ok((speedup, tick, event)) => {
            println!("tick driver   {:>10.3} ms  (dense, best of 5)", tick * 1e3);
            println!(
                "event driver  {:>10.3} ms  (leaping, best of 5)",
                event * 1e3
            );
            println!("speedup       {speedup:>10.2} x  (floor {floor} x, {path})");
            if speedup < floor {
                eprintln!("FAIL: event-mode speedup fell below the {floor}x floor");
                1
            } else {
                println!("OK: event mode holds the sparse-workload speedup floor");
                0
            }
        }
    }
}

/// Best per-iteration seconds for one full control slot, with or
/// without an explicitly attached `NullRecorder`.
fn slot_latency(attach_null: bool, runs: usize, iters: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        for _ in 0..iters {
            let mut sim = Simulation::new(
                SimConfig::prototype().with_policy(PolicyKind::HebD),
                &[Archetype::WebSearch, Archetype::Terasort],
                42,
            );
            if attach_null {
                sim.set_recorder(heb_telemetry::null_recorder());
            }
            black_box(sim.run_ticks(600));
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// The NullRecorder overhead budget: attaching the default recorder
/// explicitly must stay within 5 % of the untouched simulation. The
/// sides are interleaved (A, B, A, B, …) so frequency drift and cache
/// warm-up hit both equally; each side keeps its own best-of estimate.
fn telemetry_guard() -> i32 {
    println!("telemetry-overhead guard: slot loop, default vs attached NullRecorder\n");
    let (runs, iters) = (6, 8);
    let mut baseline = f64::INFINITY;
    let mut with_null = f64::INFINITY;
    for _ in 0..runs {
        baseline = baseline.min(slot_latency(false, 1, iters));
        with_null = with_null.min(slot_latency(true, 1, iters));
    }
    let ratio = with_null / baseline;
    println!("baseline      {:>10.3} ms/slot", baseline * 1e3);
    println!("null recorder {:>10.3} ms/slot", with_null * 1e3);
    println!("ratio         {ratio:>10.3}  (budget 1.05)");
    if ratio > 1.05 {
        eprintln!("FAIL: NullRecorder overhead exceeds the 5 % budget");
        1
    } else {
        println!("OK: NullRecorder within the overhead budget");
        0
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--telemetry-guard") {
        std::process::exit(telemetry_guard());
    }
    // `cargo bench` may append its own flags; a following `--flag` is
    // not a path operand.
    let value_of = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .map(|at| argv.get(at + 1).filter(|v| !v.starts_with("--")).cloned())
    };
    if let Some(path) = value_of("--throughput-baseline") {
        let path = path.unwrap_or_else(|| "BENCH_engine_throughput.json".to_string());
        std::process::exit(throughput_baseline(&path));
    }
    if let Some(path) = value_of("--throughput-guard") {
        let Some(path) = path else {
            eprintln!("--throughput-guard needs a baseline path");
            std::process::exit(2);
        };
        std::process::exit(throughput_guard(&path));
    }
    if let Some(path) = value_of("--sparse-speedup-guard") {
        let path = path.unwrap_or_else(|| "BENCH_engine_throughput.json".to_string());
        std::process::exit(sparse_speedup_guard(&path));
    }
    if let Some(path) = value_of("--scale-sweep") {
        let path = path.unwrap_or_else(|| "BENCH_engine_throughput.json".to_string());
        std::process::exit(scale_sweep(&path));
    }
    if let Some(path) = value_of("--scale-guard") {
        let Some(path) = path else {
            eprintln!("--scale-guard needs a baseline path");
            std::process::exit(2);
        };
        std::process::exit(scale_guard(&path));
    }
    println!("HEB micro-benchmarks (best-of-runs per-iteration latency)\n");
    bench_pat();
    bench_forecast();
    bench_devices();
    bench_simulation();
    bench_fleet_engine();
    match measure_sparse_speedup(3) {
        Ok((speedup, tick, event)) => println!(
            "{:<40} {speedup:>10.2} x  (tick {:.2} ms vs event {:.2} ms)",
            "sim/sparse_event_speedup",
            tick * 1e3,
            event * 1e3
        ),
        Err(err) => println!("sim/sparse_event_speedup: {err}"),
    }
}
