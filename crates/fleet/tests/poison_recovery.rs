//! Panic / failure isolation, end to end: one broken scenario in a
//! batch must not poison its siblings, the engine, or the cache — and
//! the plain `run` entry point must still re-raise with the exact
//! message `Scenario::run_expect` would have produced serially.

use std::fs;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::Arc;

use heb_core::experiments::outage_scenarios;
use heb_core::{Scenario, ScenarioRunner, SerialRunner, SimConfig};
use heb_fleet::{
    FleetEngine, HardenPolicy, ResultCache, RunPolicy, ScenarioFailure, ScenarioState,
};
use heb_telemetry::{Event, FleetEvent, RingRecorder};
use heb_units::Watts;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-poison-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn good_batch() -> Vec<Scenario> {
    let base = SimConfig::prototype().with_budget(Watts::new(250.0));
    outage_scenarios(&base, 1.0, 4.0, 23)
}

/// A scenario whose `run` fails with `SimError::NoWorkloads` — the
/// stand-in for any mid-batch worker failure.
fn broken(label: &str) -> Scenario {
    Scenario::new(label, SimConfig::prototype(), &[], 0.05, 23)
}

#[test]
fn broken_scenario_does_not_poison_siblings_at_any_jobs() {
    let good = good_batch();
    let serial = SerialRunner.run_batch(&good);
    for jobs in [1, 4] {
        let mut batch = good.clone();
        batch.insert(batch.len() / 2, broken("poison/mid-batch"));
        let engine = FleetEngine::new(jobs);
        let outcome = engine.run(&batch, &RunPolicy::new());
        let counts = outcome.counts();
        assert_eq!(counts.done, good.len(), "jobs={jobs}: all siblings finish");
        assert_eq!(counts.quarantined, 1);
        // Sibling reports are bit-identical to the serial run.
        let survivors: Vec<_> = outcome
            .outcomes
            .iter()
            .filter_map(|o| o.report.clone())
            .collect();
        assert_eq!(survivors, serial, "jobs={jobs}");
        // The engine is not poisoned: it runs the clean batch fine.
        assert_eq!(
            engine.run(&good, &RunPolicy::new()).counts().done,
            good.len()
        );
    }
}

#[test]
fn run_re_raises_but_sibling_cache_writes_land_first() {
    let root = temp_root("cache-lands");
    let good = good_batch();
    let mut batch = good.clone();
    batch.push(broken("poison/last"));
    let engine = FleetEngine::new(2).with_cache(ResultCache::new(&root));
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        engine.run(&batch, &RunPolicy::new()).expect_reports()
    }));
    assert!(caught.is_err(), "run must re-raise the failure");
    let stats = engine.stats();
    assert_eq!(
        stats.cache_writes,
        good.len(),
        "every sibling's result must be persisted despite the failure"
    );
    // A fresh engine replays the siblings from cache: zero simulations.
    let warm = FleetEngine::new(2).with_cache(ResultCache::new(&root));
    let replayed = warm.run(&good, &RunPolicy::new()).expect_reports();
    assert_eq!(replayed, SerialRunner.run_batch(&good));
    assert_eq!(warm.stats().simulated, 0);
}

#[test]
fn re_raised_message_matches_run_expect() {
    let engine = FleetEngine::new(1);
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        engine
            .run(&[broken("poison/message")], &RunPolicy::new())
            .expect_reports()
    }));
    let payload = caught.expect_err("must re-raise");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("payload is a String");
    let serial =
        std::panic::catch_unwind(AssertUnwindSafe(|| broken("poison/message").run_expect()))
            .expect_err("run_expect panics");
    let serial_message = serial
        .downcast_ref::<String>()
        .cloned()
        .expect("serial payload is a String");
    assert_eq!(message, serial_message);
}

#[test]
fn quarantine_emits_typed_events_after_retries() {
    let ring = Arc::new(RingRecorder::new(64));
    let engine = FleetEngine::new(1)
        .with_policy(HardenPolicy {
            max_retries: 2,
            ..HardenPolicy::default()
        })
        .with_recorder(ring.clone());
    let outcome = engine.run(&[broken("poison/events")], &RunPolicy::new());
    assert_eq!(outcome.outcomes[0].state, ScenarioState::Quarantined);
    assert!(matches!(
        outcome.outcomes[0].failure,
        Some(ScenarioFailure::Error { .. })
    ));
    let kinds: Vec<&str> = ring.events().iter().map(Event::kind).collect();
    assert_eq!(
        kinds,
        [
            "fleet.retry_scheduled",
            "fleet.retry_scheduled",
            "fleet.scenario_quarantined"
        ]
    );
    let quarantine = ring.events().into_iter().find_map(|e| match e {
        Event::Fleet(FleetEvent::ScenarioQuarantined {
            scenario, attempts, ..
        }) => Some((scenario, attempts)),
        _ => None,
    });
    assert_eq!(quarantine, Some(("poison/events".to_string(), 3)));
    assert_eq!(engine.stats().retries, 2);
    assert_eq!(engine.stats().quarantined, 1);
}
