//! One cache directory, many engines: the capacity-advisor service
//! and `heb_fleet` batch runs share `results/cache` by design, so the
//! store's concurrency story — atomic rename publication, per-writer
//! temp names, sweep-vs-writer races — gets exercised here with two
//! live engines instead of assertions about one.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use heb_core::{Scenario, SimConfig, SimReport};
use heb_fleet::{FleetEngine, ResultCache, RunPolicy, ScenarioState};
use heb_workload::Archetype;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-share-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// Distinct-by-seed scenarios, cheap enough to simulate by the dozen.
fn batch(count: u64) -> Vec<Scenario> {
    (0..count)
        .map(|seed| {
            Scenario::new(
                "cache-sharing",
                SimConfig::prototype(),
                &[Archetype::WebSearch],
                0.02,
                seed,
            )
        })
        .collect()
}

fn reports_of(outcome: &heb_fleet::RunOutcome) -> Vec<SimReport> {
    outcome
        .outcomes
        .iter()
        .map(|o| {
            assert_eq!(o.state, ScenarioState::Done, "{}: {:?}", o.label, o.failure);
            o.report.clone().expect("Done implies a report")
        })
        .collect()
}

/// Two engines over one directory, racing on the same scenarios: both
/// must finish every scenario, agree bit-exactly on every report, and
/// leave exactly one valid entry per distinct scenario behind.
#[test]
fn two_engines_share_one_cache_directory_concurrently() {
    let root = temp_root("two-engines");
    let scenarios = batch(8);

    let run = |order: Vec<Scenario>| {
        let cache = ResultCache::new(&root);
        std::thread::spawn(move || {
            let engine = FleetEngine::new(2).with_cache(cache);
            let outcome = engine.run(&order, &RunPolicy::new());
            (reports_of(&outcome), order, engine.stats())
        })
    };
    // Opposite submission orders maximise same-scenario write races.
    let forward = run(scenarios.clone());
    let reverse = run(scenarios.iter().rev().cloned().collect());
    let (reports_fwd, order_fwd, stats_fwd) = forward.join().expect("forward engine");
    let (reports_rev, order_rev, stats_rev) = reverse.join().expect("reverse engine");

    for (scenario, report) in order_fwd.iter().zip(&reports_fwd) {
        let other = order_rev
            .iter()
            .position(|s| s.hash_hex() == scenario.hash_hex())
            .expect("both engines ran every scenario");
        assert_eq!(
            *report,
            reports_rev[other],
            "engines must agree bit-exactly on {}",
            scenario.label()
        );
    }

    // Each engine accounts for all 8 scenarios; between them every
    // scenario was simulated at least once (first writer) and the
    // store never duplicated or lost an entry.
    for stats in [&stats_fwd, &stats_rev] {
        assert_eq!(stats.simulated + stats.cache_hits + stats.resumed, 8);
    }
    assert!(stats_fwd.simulated + stats_rev.simulated >= 8);

    let cache = ResultCache::new(&root);
    assert_eq!(cache.len(), 8, "one entry per distinct scenario");
    for (scenario, report) in order_fwd.iter().zip(&reports_fwd) {
        assert_eq!(
            cache.load(scenario).as_ref(),
            Some(report),
            "entry for {} must replay what the engines returned",
            scenario.label()
        );
    }
    assert_eq!(
        fs::read_dir(cache.dir()).expect("cache dir").count(),
        8,
        "no temp files left behind"
    );
}

/// A sweeper hammering `sweep_stale_tmp` while a writer stores entries:
/// the documented worst case is a lost write (the swept writer's rename
/// fails), never a corrupt or missing published entry.
#[test]
fn tmp_sweep_racing_a_writer_never_corrupts_entries() {
    let root = temp_root("sweep-race");
    let writer_cache = ResultCache::new(&root);
    let sweeper_cache = ResultCache::new(&root);
    let scenarios = batch(6);
    let reports: Vec<SimReport> = scenarios.iter().map(Scenario::run_expect).collect();
    // Seed the directory so the sweeper has a live dir to scan.
    writer_cache
        .store(&scenarios[0], &reports[0])
        .expect("seed store");

    let stop = Arc::new(AtomicBool::new(false));
    let sweeper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reclaimed = 0;
            while !stop.load(Ordering::Relaxed) {
                reclaimed += sweeper_cache.sweep_stale_tmp();
                std::thread::yield_now();
            }
            reclaimed
        })
    };

    // Store every entry many times under the sweeper's nose; a store
    // the sweep races may fail, so retry — lost writes are the
    // documented cost, corruption never is.
    for _ in 0..50 {
        for (scenario, report) in scenarios.iter().zip(&reports) {
            while writer_cache.store(scenario, report).is_err() {}
            assert_eq!(
                writer_cache.load(scenario).as_ref(),
                Some(report),
                "a successful store must be immediately replayable"
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    let _ = sweeper.join().expect("sweeper thread");

    let cache = ResultCache::new(&root);
    assert_eq!(cache.len(), scenarios.len());
    for (scenario, report) in scenarios.iter().zip(&reports) {
        assert_eq!(cache.load(scenario).as_ref(), Some(report));
    }
    assert_eq!(cache.sweep_stale_tmp(), 0, "no orphaned temp files remain");
}

/// Engines attaching to a directory littered by a crashed foreign
/// writer: the attach-time sweep reclaims the orphans, and racing
/// attaches plus a run still produce only valid entries.
#[test]
fn attach_time_sweep_reclaims_a_crashed_writers_litter() {
    let root = temp_root("attach-sweep");
    let seed_cache = ResultCache::new(&root);
    let scenarios = batch(4);
    seed_cache
        .store(&scenarios[0], &scenarios[0].run_expect())
        .expect("seed store");
    // Orphans from a "crashed" process that died between write and
    // rename (pid 999999 is not us; the counter values are arbitrary).
    for n in 0..3 {
        fs::write(
            seed_cache.dir().join(format!("deadbeef.tmp.999999.{n}")),
            "half-written entry from a dead process",
        )
        .expect("plant orphan");
    }

    let engines: Vec<_> = (0..2)
        .map(|_| {
            let cache = ResultCache::new(&root);
            let order = scenarios.clone();
            std::thread::spawn(move || {
                let engine = FleetEngine::new(2).with_cache(cache);
                let outcome = engine.run(&order, &RunPolicy::new());
                (reports_of(&outcome).len(), engine.stats())
            })
        })
        .collect();
    let results: Vec<_> = engines
        .into_iter()
        .map(|h| h.join().expect("engine thread"))
        .collect();

    let reclaimed: usize = results.iter().map(|(_, stats)| stats.tmp_reclaimed).sum();
    assert_eq!(reclaimed, 3, "attach-time sweeps reclaim every orphan");
    for (done, _) in &results {
        assert_eq!(*done, 4);
    }
    let cache = ResultCache::new(&root);
    assert_eq!(cache.len(), 4);
    assert_eq!(
        fs::read_dir(cache.dir()).expect("cache dir").count(),
        4,
        "orphans gone, only real entries remain"
    );
    for scenario in &scenarios {
        assert!(cache.probe(scenario), "{} must be warm", scenario.label());
    }
}
