//! Fleet-level parity for the struct-of-arrays cluster rework: the SoA
//! state layout, the rack aggregation tree, and the batched ESD sweep
//! must be invisible to every fleet consumer.
//!
//! Three contracts, property-tested across seeds, fault schedules, and
//! worker counts:
//!
//! * reports *and* JSONL traces are invariant to `--jobs` — the
//!   parallel engine produces byte-identical output to a serial run;
//! * multi-rack fleets (above `RACK_FANOUT` servers, where the
//!   aggregation tree stops degenerating to a flat sum) are
//!   deterministic run-to-run, and event mode still matches tick mode
//!   bit-for-bit at that scale;
//! * reports survive the journal record round trip losslessly even
//!   under fault storms.

use std::sync::Arc;

use heb_core::experiments::megafleet_scenario;
use heb_core::{DriverMode, FaultSchedule, PolicyKind, Scenario, SimConfig, SimReport};
use heb_fleet::{FleetEngine, RunPolicy};
use heb_telemetry::{RecorderHandle, RingRecorder};
use heb_workload::Archetype;
use proptest::prelude::*;

/// Short horizon (15 simulated minutes) keeping the property cases
/// cheap while still crossing a slot boundary.
const HOURS: f64 = 0.25;

fn archetype_strategy() -> impl Strategy<Value = Archetype> {
    proptest::sample::select(Archetype::ALL.to_vec())
}

/// Randomized fault schedules: nothing, a blackout, or a blackout
/// followed by a brownout — the storm shapes the CLI accepts.
fn fault_strategy() -> impl Strategy<Value = Option<FaultSchedule>> {
    prop_oneof![
        Just(None),
        (30u64..300, 30u64..180).prop_map(|(at, dur)| {
            Some(FaultSchedule::parse(&format!("blackout@{at}~{dur}")).expect("fault spec"))
        }),
        (30u64..240, 30u64..120, 60u64..180, 0.5..0.95f64).prop_map(|(at, dur, dur2, frac)| {
            let spec = format!(
                "blackout@{at}~{dur};brownout({frac:.2})@{}~{dur2}",
                at + 360
            );
            Some(FaultSchedule::parse(&spec).expect("fault spec"))
        }),
    ]
}

fn scenario(
    label: &str,
    workload: Archetype,
    seed: u64,
    faults: Option<FaultSchedule>,
) -> Scenario {
    let config = SimConfig::prototype().with_policy(PolicyKind::HebD);
    let scenario = Scenario::new(label, config, &[workload], HOURS, seed);
    match faults {
        Some(f) => scenario.with_faults(f),
        None => scenario,
    }
}

/// Trace lines with the event driver's additive leap telemetry
/// removed.
fn without_leaps(jsonl: &str) -> Vec<String> {
    jsonl
        .lines()
        .filter(|line| !line.contains("\"type\":\"driver.leaped\""))
        .map(str::to_string)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel engine is a pure scheduler: reports and traces are
    /// byte-identical to a serial run of the same scenarios.
    #[test]
    fn reports_and_traces_are_jobs_invariant(
        seed in 0u64..10_000,
        workload in archetype_strategy(),
        faults in fault_strategy(),
        jobs in 2usize..5,
    ) {
        let serial_ring = Arc::new(RingRecorder::new(8192));
        let parallel_ring = Arc::new(RingRecorder::new(8192));
        let serial = scenario("parity/jobs", workload, seed, faults.clone())
            .with_recorder(Arc::clone(&serial_ring) as RecorderHandle);
        let parallel = scenario("parity/jobs", workload, seed, faults)
            .with_recorder(Arc::clone(&parallel_ring) as RecorderHandle);

        let serial_reports = FleetEngine::new(1)
            .run(std::slice::from_ref(&serial), &RunPolicy::new())
            .expect_reports();
        let parallel_reports = FleetEngine::new(jobs)
            .run(std::slice::from_ref(&parallel), &RunPolicy::new())
            .expect_reports();

        prop_assert_eq!(&serial_reports, &parallel_reports, "--jobs must not change physics");
        prop_assert_eq!(serial_ring.to_jsonl(), parallel_ring.to_jsonl());
    }

    /// Above one rack the aggregation tree's cached sums take over from
    /// the flat degenerate path; runs must stay deterministic and the
    /// event driver must still match the tick driver bit-for-bit.
    #[test]
    fn multi_rack_fleets_are_deterministic_and_driver_invariant(
        servers in 65usize..200,
        seed in 0u64..10_000,
        jobs in 1usize..5,
    ) {
        let event_ring = Arc::new(RingRecorder::new(8192));
        let rerun_ring = Arc::new(RingRecorder::new(8192));
        let tick_ring = Arc::new(RingRecorder::new(8192));
        let event = megafleet_scenario(servers, HOURS, seed)
            .with_recorder(Arc::clone(&event_ring) as RecorderHandle);
        let rerun = megafleet_scenario(servers, HOURS, seed)
            .with_recorder(Arc::clone(&rerun_ring) as RecorderHandle);
        let tick = megafleet_scenario(servers, HOURS, seed)
            .with_driver_mode(DriverMode::Tick)
            .with_recorder(Arc::clone(&tick_ring) as RecorderHandle);

        let batch = vec![event, rerun, tick];
        let reports = FleetEngine::new(jobs).run(&batch, &RunPolicy::new()).expect_reports();

        prop_assert_eq!(&reports[0], &reports[1], "rerun must be bit-identical");
        prop_assert_eq!(event_ring.to_jsonl(), rerun_ring.to_jsonl());
        prop_assert_eq!(&reports[0], &reports[2], "event mode must match tick mode");
        prop_assert_eq!(
            without_leaps(&event_ring.to_jsonl()),
            without_leaps(&tick_ring.to_jsonl()),
            "leap telemetry must be purely additive at multi-rack scale"
        );
    }

    /// Journal records round-trip losslessly even for fault-storm runs,
    /// so crash-resume replays SoA-era reports verbatim.
    #[test]
    fn reports_round_trip_through_journal_records(
        seed in 0u64..10_000,
        workload in archetype_strategy(),
        faults in fault_strategy(),
    ) {
        let run = scenario("parity/record", workload, seed, faults);
        let reports = FleetEngine::new(1)
            .run(std::slice::from_ref(&run), &RunPolicy::new())
            .expect_reports();
        let record = reports[0].to_record();
        let back = SimReport::from_record(&record).expect("record must parse back");
        prop_assert_eq!(&back, &reports[0]);
    }
}
