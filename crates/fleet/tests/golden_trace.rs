//! Golden-trace determinism: a fixed-seed scenario batch captures a
//! bit-identical JSONL event stream across repeated runs and across
//! engine worker counts. Telemetry is observational — the recorder is
//! excluded from the content hash and the event order is fixed by the
//! simulation clock, so parallel scheduling must not leak into traces.

use std::sync::Arc;

use heb_core::{FaultSchedule, PolicyKind, Scenario, SimConfig};
use heb_fleet::{FleetEngine, RunPolicy};
use heb_telemetry::{RecorderHandle, RingRecorder};
use heb_workload::Archetype;

/// Three fixed-seed 2-hour runs with a fault storm folded in, each
/// wired to its own ring, so the capture covers every event category.
fn traced_batch() -> (Vec<Scenario>, Vec<Arc<RingRecorder>>) {
    let faults =
        FaultSchedule::parse("blackout@1800~600;brownout(0.9)@4200~900").expect("fault spec");
    let mut scenarios = Vec::new();
    let mut rings = Vec::new();
    for i in 0..3u64 {
        let ring = Arc::new(RingRecorder::new(8192));
        let config = SimConfig::builder()
            .policy(PolicyKind::HebD)
            .build()
            .expect("prototype defaults are valid");
        let scenario = Scenario::new(
            format!("golden/{i}"),
            config,
            &[Archetype::WebSearch, Archetype::Terasort],
            2.0,
            7 + i,
        )
        .with_faults(faults.clone())
        .with_recorder(Arc::clone(&ring) as RecorderHandle);
        scenarios.push(scenario);
        rings.push(ring);
    }
    (scenarios, rings)
}

fn run_and_capture(jobs: usize) -> Vec<String> {
    let (batch, rings) = traced_batch();
    let reports = FleetEngine::new(jobs)
        .run(&batch, &RunPolicy::new())
        .expect_reports();
    assert_eq!(reports.len(), batch.len());
    rings.iter().map(|ring| ring.to_jsonl()).collect()
}

#[test]
fn trace_is_bit_identical_across_runs_and_worker_counts() {
    let first = run_and_capture(1);
    let repeat = run_and_capture(1);
    let parallel = run_and_capture(4);
    assert_eq!(first, repeat, "same seed, same jobs: traces must match");
    assert_eq!(first, parallel, "worker count must not leak into traces");

    for jsonl in &first {
        assert!(!jsonl.is_empty(), "2-hour run must produce events");
        for prefix in ["controller.", "esd.", "power.", "fault."] {
            assert!(
                jsonl.contains(&format!("\"type\":\"{prefix}")),
                "trace must cover the {prefix}* events"
            );
        }
        // Every line is an object with a leading type field — the
        // shape exp_trace and the json_field extractor rely on.
        for line in jsonl.lines() {
            assert!(
                line.starts_with("{\"type\":\"") && line.ends_with('}'),
                "{line}"
            );
        }
    }
}

#[test]
fn dropping_the_recorder_does_not_change_the_report() {
    let (batch, _rings) = traced_batch();
    let untraced: Vec<Scenario> = (0..3u64)
        .map(|i| {
            Scenario::new(
                format!("golden/{i}"),
                SimConfig::prototype().with_policy(PolicyKind::HebD),
                &[Archetype::WebSearch, Archetype::Terasort],
                2.0,
                7 + i,
            )
            .with_faults(FaultSchedule::parse("blackout@1800~600;brownout(0.9)@4200~900").unwrap())
        })
        .collect();
    // Same cache identity (recorder is hash-blind) and same physics.
    for (a, b) in batch.iter().zip(&untraced) {
        assert_eq!(a.content_hash(), b.content_hash());
    }
    let traced_reports = FleetEngine::new(2)
        .run(&batch, &RunPolicy::new())
        .expect_reports();
    let untraced_reports = FleetEngine::new(2)
        .run(&untraced, &RunPolicy::new())
        .expect_reports();
    assert_eq!(traced_reports, untraced_reports);
}
