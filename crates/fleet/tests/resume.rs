//! Checkpoint/resume, end to end: an interrupted journaled run,
//! resumed, must produce results bit-identical to the uninterrupted
//! run — without re-simulating what the first session completed.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use heb_core::experiments::{outage_scenarios, valley_scenarios};
use heb_core::{Scenario, ScenarioRunner, SerialRunner, SimConfig};
use heb_fleet::{FleetEngine, FsyncPolicy, ReportSource, RunJournal, RunPolicy};
use heb_telemetry::{Event, FleetEvent, RingRecorder};
use heb_units::Watts;

fn temp_runs(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn mixed_batch() -> Vec<Scenario> {
    let base = SimConfig::prototype().with_budget(Watts::new(250.0));
    let mut batch = outage_scenarios(&base, 1.0, 4.0, 23);
    batch.extend(valley_scenarios(&base, Watts::new(230.0), 3.0, 23));
    batch
}

#[test]
fn interrupted_run_resumes_bit_identically_at_any_jobs() {
    let batch = mixed_batch();
    let serial = SerialRunner.run_batch(&batch);
    for jobs in [1, 4] {
        let runs = temp_runs(&format!("interrupt-j{jobs}"));

        // Session one: runs only a prefix of the batch (the shape an
        // interrupted process leaves — some done, the rest untouched),
        // then "dies" (journal dropped).
        {
            let journal = RunJournal::create(&runs, "r", FsyncPolicy::Never).unwrap();
            let engine = FleetEngine::new(jobs);
            let partial = engine.run(
                &batch[..batch.len() / 2],
                &RunPolicy::new().journal(&journal),
            );
            assert!(partial.all_done());
        }

        // Session two: resumes the same run id with the full batch.
        let journal = RunJournal::resume(&runs, "r", FsyncPolicy::Never).unwrap();
        let ring = Arc::new(RingRecorder::new(16));
        let engine = FleetEngine::new(jobs).with_recorder(ring.clone());
        let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
        assert!(outcome.all_done(), "jobs={jobs}");
        assert_eq!(
            outcome.reports(),
            Some(serial.clone()),
            "jobs={jobs}: resumed run must be bit-identical to uninterrupted"
        );

        // The completed prefix was settled from the journal store, not
        // re-simulated.
        let resumed = outcome
            .outcomes
            .iter()
            .filter(|o| o.source == ReportSource::Resumed)
            .count();
        assert_eq!(resumed, batch.len() / 2, "jobs={jobs}");
        assert_eq!(engine.stats().simulated, batch.len() - batch.len() / 2);
        assert_eq!(engine.stats().resumed, batch.len() / 2);

        // And the resume announced itself with a typed event.
        let announced = ring.events().into_iter().find_map(|e| match e {
            Event::Fleet(FleetEvent::RunResumed {
                run_id,
                completed,
                remaining,
            }) => Some((run_id, completed, remaining)),
            _ => None,
        });
        assert_eq!(
            announced,
            Some((
                "r".to_string(),
                batch.len() / 2,
                batch.len() - batch.len() / 2
            ))
        );
    }
}

#[test]
fn resuming_a_finished_run_simulates_nothing() {
    let batch = mixed_batch();
    let runs = temp_runs("finished");
    {
        let journal = RunJournal::create(&runs, "r", FsyncPolicy::Batch).unwrap();
        let outcome = FleetEngine::new(4).run(&batch, &RunPolicy::new().journal(&journal));
        assert!(outcome.all_done());
        assert!(journal.healthy());
    }
    let journal = RunJournal::resume(&runs, "r", FsyncPolicy::Batch).unwrap();
    let engine = FleetEngine::new(4);
    let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
    assert!(outcome.all_done());
    assert_eq!(outcome.reports(), Some(SerialRunner.run_batch(&batch)));
    assert_eq!(engine.stats().simulated, 0, "nothing left to simulate");
    assert_eq!(engine.stats().resumed, batch.len());
}

#[test]
fn journal_and_cache_compose_without_double_counting() {
    let batch = mixed_batch();
    let runs = temp_runs("with-cache");
    let cache_root = temp_runs("with-cache-cache");
    {
        let journal = RunJournal::create(&runs, "r", FsyncPolicy::Never).unwrap();
        let engine = FleetEngine::new(2).with_cache(heb_fleet::ResultCache::new(&cache_root));
        assert!(engine
            .run(&batch, &RunPolicy::new().journal(&journal))
            .all_done());
    }
    // Resume wins over the cache: journal-settled scenarios count as
    // resumed, not as cache hits.
    let journal = RunJournal::resume(&runs, "r", FsyncPolicy::Never).unwrap();
    let engine = FleetEngine::new(2).with_cache(heb_fleet::ResultCache::new(&cache_root));
    let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
    assert!(outcome.all_done());
    assert_eq!(engine.stats().resumed, batch.len());
    assert_eq!(engine.stats().cache_hits, 0);
    assert_eq!(outcome.reports(), Some(SerialRunner.run_batch(&batch)));
}
