//! The engine's determinism contract, end to end: the same batch run
//! serially, run at `--jobs 8`, and replayed from a warm cache must be
//! bit-identical — and the warm replay must perform zero simulations.

use std::fs;
use std::path::PathBuf;

use heb_core::experiments::{outage_scenarios, scheme_comparison_scenarios, valley_scenarios};
use heb_core::{Scenario, ScenarioRunner, SerialRunner, SimConfig};
use heb_fleet::{FleetEngine, ResultCache, RunPolicy};
use heb_units::Watts;

/// A fresh cache root unique to this test run.
fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-det-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// A mixed batch drawn from three real experiments: workload sweeps,
/// solar runs with preset SoC, explicit-trace runs with explicit tick
/// horizons — every scenario feature the engine must preserve.
fn mixed_batch() -> Vec<Scenario> {
    let base = SimConfig::prototype().with_budget(Watts::new(250.0));
    let mut batch = scheme_comparison_scenarios(&base, 0.05, 0.2, 23);
    batch.truncate(12);
    batch.extend(valley_scenarios(&base, Watts::new(230.0), 3.0, 23));
    batch.extend(outage_scenarios(&base, 1.0, 4.0, 23));
    batch
}

#[test]
fn serial_parallel_and_cached_replay_are_bit_identical() {
    let batch = mixed_batch();
    let serial = SerialRunner.run_batch(&batch);

    // Parallel, cold cache.
    let root = temp_root("tri");
    let engine = FleetEngine::new(8).with_cache(ResultCache::new(&root));
    let parallel = engine.run(&batch, &RunPolicy::new()).expect_reports();
    assert_eq!(parallel, serial, "--jobs 8 must be bit-identical to serial");
    let cold = engine.stats();
    assert_eq!(
        cold.simulated,
        batch.len(),
        "cold cache simulates everything"
    );
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_writes, batch.len());

    // Warm replay through a fresh engine on the same cache directory.
    let replay_engine = FleetEngine::new(8).with_cache(ResultCache::new(&root));
    let replayed = replay_engine
        .run(&batch, &RunPolicy::new())
        .expect_reports();
    assert_eq!(replayed, serial, "cache replay must be bit-identical");
    let warm = replay_engine.stats();
    assert_eq!(
        warm.simulated, 0,
        "warm cache must perform zero simulations"
    );
    assert_eq!(warm.cache_hits, batch.len());

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn worker_count_does_not_leak_into_results() {
    let batch = mixed_batch();
    let one = FleetEngine::new(1)
        .run(&batch, &RunPolicy::new())
        .expect_reports();
    for jobs in [2, 3, 8] {
        assert_eq!(
            FleetEngine::new(jobs)
                .run(&batch, &RunPolicy::new())
                .expect_reports(),
            one,
            "jobs={jobs} diverged from jobs=1"
        );
    }
}

#[test]
fn batch_order_is_submission_order() {
    let mut batch = mixed_batch();
    let forward = FleetEngine::new(4)
        .run(&batch, &RunPolicy::new())
        .expect_reports();
    batch.reverse();
    let mut backward = FleetEngine::new(4)
        .run(&batch, &RunPolicy::new())
        .expect_reports();
    backward.reverse();
    assert_eq!(forward, backward, "results must track submission order");
}
