//! Event-core parity at the fleet level: the redesigned `SimDriver`
//! must be invisible to every consumer of the seed tick loop.
//!
//! Three contracts, property-tested across seeds, workloads, and
//! worker counts:
//!
//! * the tick-compatibility adapter (`DriverMode::Tick`, the default)
//!   is byte-identical to the raw `Simulation::step` loop — reports
//!   *and* JSONL traces;
//! * event mode (`DriverMode::Event`) produces the same reports and
//!   the same trace apart from its purely-additive `driver.leaped`
//!   telemetry lines;
//! * content hashes are tick-transparent: every `ResultCache` entry
//!   minted before the event core existed replays verbatim for
//!   tick-mode scenarios, while event-mode scenarios address a
//!   distinct cache identity.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use heb_core::{DriverMode, FaultSchedule, PolicyKind, Scenario, SimConfig, Simulation};
use heb_fleet::{FleetEngine, ReportSource, ResultCache, RunPolicy};
use heb_telemetry::{RecorderHandle, RingRecorder};
use heb_workload::Archetype;
use proptest::prelude::*;

/// Short horizon (15 simulated minutes) keeping the property cases
/// cheap while still crossing a slot boundary.
const HOURS: f64 = 0.25;

fn archetype_strategy() -> impl Strategy<Value = Archetype> {
    proptest::sample::select(Archetype::ALL.to_vec())
}

fn config() -> SimConfig {
    SimConfig::prototype().with_policy(PolicyKind::HebD)
}

/// One parity scenario; `faulted` folds in a blackout + brownout storm
/// so the comparison also covers the fault-handling paths.
fn scenario(label: &str, workload: Archetype, seed: u64, faulted: bool) -> Scenario {
    let scenario = Scenario::new(label, config(), &[workload], HOURS, seed);
    if faulted {
        scenario.with_faults(
            FaultSchedule::parse("blackout@120~90;brownout(0.85)@420~120").expect("fault spec"),
        )
    } else {
        scenario
    }
}

/// Trace lines with the event driver's additive leap telemetry
/// removed.
fn without_leaps(jsonl: &str) -> Vec<String> {
    jsonl
        .lines()
        .filter(|line| !line.contains("\"type\":\"driver.leaped\""))
        .map(str::to_string)
        .collect()
}

fn lines(jsonl: &str) -> Vec<String> {
    jsonl.lines().map(str::to_string).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tick_adapter_is_byte_identical_to_the_raw_step_loop(
        seed in 0u64..10_000,
        workload in archetype_strategy(),
        jobs in 1usize..5,
    ) {
        let ring = Arc::new(RingRecorder::new(8192));
        let traced = scenario("parity/adapter", workload, seed, false)
            .with_recorder(Arc::clone(&ring) as RecorderHandle);
        let ticks = traced.ticks();
        let reports = FleetEngine::new(jobs)
            .run(std::slice::from_ref(&traced), &RunPolicy::new())
            .expect_reports();

        // The seed's tick loop: a raw Simulation stepped by hand.
        let raw_ring = Arc::new(RingRecorder::new(8192));
        let mut sim = Simulation::new(config(), &[workload], seed)
            .with_recorder(Arc::clone(&raw_ring) as RecorderHandle);
        for _ in 0..ticks {
            sim.step();
        }
        prop_assert_eq!(&reports[0], &sim.snapshot());
        prop_assert_eq!(ring.to_jsonl(), raw_ring.to_jsonl());
    }

    #[test]
    fn event_mode_reports_and_traces_match_tick_mode(
        seed in 0u64..10_000,
        workload in archetype_strategy(),
        faulted in proptest::sample::select(vec![false, true]),
        jobs in 1usize..5,
    ) {
        let tick_ring = Arc::new(RingRecorder::new(8192));
        let event_ring = Arc::new(RingRecorder::new(8192));
        let tick = scenario("parity/mode", workload, seed, faulted)
            .with_recorder(Arc::clone(&tick_ring) as RecorderHandle);
        let event = scenario("parity/mode", workload, seed, faulted)
            .with_driver_mode(DriverMode::Event)
            .with_recorder(Arc::clone(&event_ring) as RecorderHandle);

        // Hash discipline: the default (tick) identity is exactly the
        // seed's; event mode addresses a distinct cache entry.
        prop_assert_eq!(
            tick.content_hash(),
            scenario("parity/mode", workload, seed, faulted).content_hash(),
            "recorder and the default driver mode must stay hash-blind"
        );
        prop_assert_ne!(event.content_hash(), tick.content_hash());

        let batch = vec![tick, event];
        let reports = FleetEngine::new(jobs)
            .run(&batch, &RunPolicy::new())
            .expect_reports();
        prop_assert_eq!(&reports[0], &reports[1], "event mode must match tick mode");
        prop_assert_eq!(
            without_leaps(&event_ring.to_jsonl()),
            lines(&tick_ring.to_jsonl()),
            "leap telemetry must be purely additive"
        );
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-parity-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

#[test]
fn tick_cache_entries_replay_while_event_mode_addresses_its_own() {
    let root = temp_root("cache");
    let batch: Vec<Scenario> = (0..3u64)
        .map(|i| {
            scenario(
                &format!("parity/cache/{i}"),
                Archetype::Terasort,
                31 + i,
                i == 1,
            )
        })
        .collect();

    // A seed-era engine fills the cache through the default path.
    let writer = FleetEngine::new(2).with_cache(ResultCache::new(&root));
    let first = writer.run(&batch, &RunPolicy::new());
    assert!(first
        .outcomes
        .iter()
        .all(|o| o.source == ReportSource::Simulated));

    // Explicit tick mode hashes identically, so a fresh engine replays
    // every scenario from the cache without simulating.
    let explicit: Vec<Scenario> = batch
        .iter()
        .map(|s| s.clone().with_driver_mode(DriverMode::Tick))
        .collect();
    for (legacy, tick) in batch.iter().zip(&explicit) {
        assert_eq!(legacy.content_hash(), tick.content_hash());
    }
    let warm = FleetEngine::new(2).with_cache(ResultCache::new(&root));
    let replayed = warm.run(&explicit, &RunPolicy::new());
    assert!(replayed
        .outcomes
        .iter()
        .all(|o| o.source == ReportSource::Cache));
    assert_eq!(replayed.reports(), first.reports());

    // Event mode misses the tick-era entries (distinct identity) but
    // computes the same physics.
    let event: Vec<Scenario> = batch
        .iter()
        .map(|s| s.clone().with_driver_mode(DriverMode::Event))
        .collect();
    let fresh = warm.run(&event, &RunPolicy::new());
    assert!(fresh
        .outcomes
        .iter()
        .all(|o| o.source == ReportSource::Simulated));
    assert_eq!(fresh.reports(), first.reports());

    let _ = fs::remove_dir_all(&root);
}
