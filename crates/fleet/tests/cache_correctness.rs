//! The cache's addressing contract: every semantically-meaningful
//! scenario field moves the content hash (so no stale replay is
//! possible), the label does not (so renaming an experiment keeps its
//! cache), and restoring a field returns the original cached report
//! bit-exactly.

use std::fs;
use std::path::PathBuf;

use heb_core::{FaultEvent, FaultKind, FaultSchedule, PowerMode, Scenario, SimConfig};
use heb_fleet::{FleetEngine, ResultCache, RunPolicy};
use heb_units::{Ratio, Seconds, Watts};
use heb_workload::{Archetype, PowerTrace};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-cc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn base_scenario() -> Scenario {
    Scenario::new(
        "cache-correctness",
        SimConfig::prototype(),
        &[Archetype::WebSearch, Archetype::Terasort],
        0.05,
        99,
    )
}

#[test]
fn every_field_change_changes_the_hash() {
    let base = base_scenario();
    let storm = FaultSchedule::scripted(vec![FaultEvent {
        at: Seconds::new(30.0),
        duration: Some(Seconds::new(60.0)),
        kind: FaultKind::UtilityBrownout {
            derate: Ratio::new_clamped(0.5),
        },
    }]);
    let solar = PowerMode::Solar(PowerTrace::new(
        vec![Watts::new(300.0); 200],
        Seconds::new(1.0),
    ));
    let variants: Vec<(&str, Scenario)> = vec![
        ("seed", base.clone().with_seed(100)),
        ("ticks", base.clone().with_ticks(181)),
        ("mode", base.clone().with_mode(solar)),
        ("faults", base.clone().with_faults(storm)),
        (
            "initial_soc",
            base.clone().with_initial_soc(Ratio::new_clamped(0.4)),
        ),
        (
            "config.budget",
            Scenario::new(
                "cache-correctness",
                SimConfig::prototype().with_budget(Watts::new(251.0)),
                &[Archetype::WebSearch, Archetype::Terasort],
                0.05,
                99,
            ),
        ),
        (
            "workloads",
            Scenario::new(
                "cache-correctness",
                SimConfig::prototype(),
                &[Archetype::WebSearch, Archetype::Dfsioe],
                0.05,
                99,
            ),
        ),
    ];
    for (field, variant) in &variants {
        assert_ne!(
            variant.content_hash(),
            base.content_hash(),
            "changing {field} must change the content hash"
        );
    }
    // And the label must NOT: it is presentation, not semantics.
    assert_eq!(
        base.clone().relabeled("renamed").content_hash(),
        base.content_hash(),
        "relabelling must keep the cache key"
    );
}

#[test]
fn changed_field_misses_and_restored_field_hits_the_original() {
    let root = temp_root("restore");
    let cache = ResultCache::new(&root);
    let original = base_scenario();
    let engine = FleetEngine::new(2).with_cache(cache.clone());
    let first = engine
        .run(std::slice::from_ref(&original), &RunPolicy::new())
        .expect_reports();
    assert_eq!(engine.stats().cache_writes, 1);

    // A tweaked seed is a different scenario: the cache must not serve
    // the old report for it.
    let tweaked = original.clone().with_seed(100);
    assert!(cache.load(&tweaked).is_none(), "tweaked scenario must miss");
    let second = engine
        .run(std::slice::from_ref(&tweaked), &RunPolicy::new())
        .expect_reports();
    assert_eq!(engine.stats().simulated, 2, "the tweak forces a re-run");
    assert_ne!(second[0], first[0], "a new seed yields a new report");

    // Restoring the field restores the address: the original report
    // comes back bit-exactly, with no simulation.
    let restored = tweaked.with_seed(99);
    assert_eq!(restored.content_hash(), original.content_hash());
    let third = engine
        .run(std::slice::from_ref(&restored), &RunPolicy::new())
        .expect_reports();
    assert_eq!(
        third[0], first[0],
        "restored scenario must replay the original"
    );
    assert_eq!(engine.stats().simulated, 2, "the replay simulated nothing");
    assert_eq!(engine.stats().cache_hits, 1);

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn no_cache_engine_never_touches_disk() {
    let root = temp_root("nodisk");
    let engine = FleetEngine::new(2);
    let _ = engine.run(&[base_scenario()], &RunPolicy::new());
    assert!(
        !root.exists(),
        "an engine without a cache must not create cache directories"
    );
    assert_eq!(engine.stats().cache_writes, 0);
}
