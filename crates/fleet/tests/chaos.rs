//! Deterministic chaos suite (runs only with `--features failpoints`):
//! injected kills, worker panics, and I/O storms must never change
//! *what* the fleet computes — only how much work it takes to get
//! there. Every test pins the final reports bit-identical to a clean,
//! uninjected run.
#![cfg(feature = "failpoints")]

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use heb_core::experiments::outage_scenarios;
use heb_core::{Scenario, ScenarioRunner, SerialRunner, SimConfig};
use heb_fleet::{
    CacheMode, Failpoints, FleetEngine, FsyncPolicy, HardenPolicy, ResultCache, RunJournal,
    RunPolicy,
};
use heb_telemetry::{Event, FleetEvent, RingRecorder};
use heb_units::Watts;

fn temp_dir(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("heb-fleet-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn batch() -> Vec<Scenario> {
    let base = SimConfig::prototype().with_budget(Watts::new(250.0));
    outage_scenarios(&base, 1.0, 4.0, 23)
}

fn fp(spec: &str) -> Arc<Failpoints> {
    Arc::new(Failpoints::parse(spec).unwrap())
}

#[test]
fn kill_and_resume_is_bit_identical_at_any_jobs() {
    let batch = batch();
    let serial = SerialRunner.run_batch(&batch);
    for jobs in [1, 4] {
        let runs = temp_dir(&format!("kill-j{jobs}"));

        // Session one is killed mid-run: `run.abort` stops scheduling
        // exactly as SIGKILL would, leaving the journal mid-flight.
        {
            let failpoints = fp("run.abort=4");
            let journal = RunJournal::create(&runs, "r", FsyncPolicy::Never)
                .unwrap()
                .with_failpoints(Arc::clone(&failpoints));
            let engine = FleetEngine::new(jobs).with_failpoints(failpoints);
            let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
            assert!(outcome.aborted, "jobs={jobs}: the kill must land");
            assert!(
                outcome.counts().done < batch.len(),
                "jobs={jobs}: the kill must interrupt real work"
            );
        }

        // Session two resumes clean (no injection) and must converge
        // to the exact uninterrupted result.
        let journal = RunJournal::resume(&runs, "r", FsyncPolicy::Never).unwrap();
        let engine = FleetEngine::new(jobs);
        let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
        assert!(outcome.all_done(), "jobs={jobs}");
        assert_eq!(
            outcome.reports(),
            Some(serial.clone()),
            "jobs={jobs}: kill + resume must be bit-identical to a clean run"
        );
        assert!(
            engine.stats().resumed > 0,
            "jobs={jobs}: resume must reuse the first session's work"
        );
    }
}

#[test]
fn injected_worker_panic_is_retried_and_recovered() {
    let batch = batch();
    let serial = SerialRunner.run_batch(&batch);
    // With jobs=1 the hit counter advances once per attempt in batch
    // order, so `worker.panic=3` panics exactly the third scenario's
    // first attempt; its retry (hit 4) passes. A keyed (`p…@…`) rule
    // would be wrong here: it re-fires on every retry of the same
    // scenario and can only quarantine.
    let failpoints = fp("worker.panic=3");
    let ring = Arc::new(RingRecorder::new(256));
    let engine = FleetEngine::new(1)
        .with_policy(HardenPolicy {
            max_retries: 1,
            ..HardenPolicy::default()
        })
        .with_recorder(ring.clone())
        .with_failpoints(Arc::clone(&failpoints));
    let outcome = engine.run(&batch, &RunPolicy::new());
    assert!(
        failpoints.fired(heb_fleet::site::WORKER_PANIC) > 0,
        "the storm must actually panic some attempts"
    );
    assert!(outcome.all_done(), "every panic must be retried to success");
    assert_eq!(
        outcome.reports(),
        Some(serial),
        "recovered run must be bit-identical"
    );
    assert!(engine.stats().retries > 0);
    assert_eq!(engine.stats().quarantined, 0);
    let retry_events = ring
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Fleet(FleetEvent::RetryScheduled { .. })))
        .count();
    assert_eq!(retry_events, engine.stats().retries);
}

#[test]
fn cache_io_storm_degrades_to_no_cache_and_completes() {
    let batch = batch();
    let serial = SerialRunner.run_batch(&batch);
    let cache_root = temp_dir("storm-cache");
    // Warm the cache so the storm has reads to corrupt.
    assert!(FleetEngine::new(2)
        .with_cache(ResultCache::new(&cache_root))
        .run(&batch, &RunPolicy::new())
        .all_done());

    // Storm: every cache read fails — the first two as I/O errors,
    // every later one as corruption (per-site counters, so the corrupt
    // rule must start at its own hit 1 to leave no healthy window).
    let ring = Arc::new(RingRecorder::new(64));
    let engine = FleetEngine::new(2)
        .with_cache(ResultCache::new(&cache_root))
        .with_recorder(ring.clone())
        .with_failpoints(fp("cache.load.io=1:2,cache.load.corrupt=1+"));
    let outcome = engine.run(&batch, &RunPolicy::new());
    assert!(outcome.all_done(), "the storm must not lose a scenario");
    assert_eq!(
        outcome.reports(),
        Some(serial),
        "degraded-cache run must be bit-identical"
    );
    let stats = engine.stats();
    assert_eq!(stats.cache_mode, CacheMode::Disabled, "ladder bottoms out");
    assert_eq!(stats.cache_hits, 0, "every probe failed into a miss");
    assert_eq!(stats.simulated, batch.len(), "engine simulated everything");
    let degradations: Vec<(String, String)> = ring
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::Fleet(FleetEvent::CacheDegraded { mode, reason }) => {
                Some((mode.to_string(), reason))
            }
            _ => None,
        })
        .collect();
    assert!(
        degradations.iter().any(|(mode, _)| mode == "disabled"),
        "degradation must be announced: {degradations:?}"
    );
}

#[test]
fn journal_append_failure_degrades_observability_not_results() {
    let batch = batch();
    let runs = temp_dir("journal-sick");
    let failpoints = fp("journal.append=3+");
    let journal = RunJournal::create(&runs, "r", FsyncPolicy::Never)
        .unwrap()
        .with_failpoints(failpoints);
    let engine = FleetEngine::new(2);
    let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
    assert!(outcome.all_done(), "a sick journal must not fail the run");
    assert!(!journal.healthy(), "the sickness must be surfaced");
    assert_eq!(
        outcome.reports(),
        Some(SerialRunner.run_batch(&batch)),
        "results unaffected"
    );
}

#[test]
fn every_scenario_is_accounted_for_in_the_manifest_after_a_storm() {
    let batch = batch();
    let runs = temp_dir("manifest-audit");
    let journal = RunJournal::create(&runs, "r", FsyncPolicy::Always).unwrap();
    // Window rule: hits 2, 3, and 4 panic — the second scenario burns
    // three attempts before its fourth succeeds (jobs=1 keeps the hit
    // order equal to batch order).
    let engine = FleetEngine::new(1)
        .with_policy(HardenPolicy {
            max_retries: 3,
            ..HardenPolicy::default()
        })
        .with_failpoints(fp("worker.panic=2:3"));
    let outcome = engine.run(&batch, &RunPolicy::new().journal(&journal));
    assert!(outcome.all_done());
    let manifest = fs::read_to_string(runs.join("r").join(heb_fleet::MANIFEST_FILE)).unwrap();
    for scenario in &batch {
        let hash = scenario.hash_hex();
        assert!(
            manifest.contains(&format!("\"hash\":\"{hash}\",\"state\":\"done\"")),
            "scenario {} must reach done in the manifest",
            scenario.label()
        );
    }
    assert!(
        manifest.contains("\"type\":\"batch.close\""),
        "the batch must be closed"
    );
}
