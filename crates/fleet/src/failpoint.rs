//! Deterministic, seeded failpoints for the execution-robustness layer.
//!
//! A [`Failpoints`] set maps *site* names (fixed strings compiled into
//! the engine — see [`site`]) to firing rules parsed from a compact
//! spec. Rules are pure functions of the per-site hit counter (or of a
//! caller-supplied key), never of the wall clock or ambient entropy, so
//! an injected failure storm replays bit-identically run after run —
//! the property the chaos suite's "interrupted run equals clean run"
//! assertions stand on.
//!
//! Spec grammar (comma-separated, `site=rule` per entry):
//!
//! ```text
//! worker.panic=3        fire exactly on the 3rd hit of the site
//! cache.store=2:4       fire on hits 2,3,4,5 (window of 4 from hit 2)
//! cache.load.io=1+      fire on every hit from the 1st onward
//! worker.panic=p0.25@7  keyed rule: fire for ~25% of keys, seed 7
//! ```
//!
//! Hit counters are 1-based and advance on every [`Failpoints::fires`]
//! call for the site, fired or not. Keyed (`p…@…`) rules ignore the
//! counter entirely: whether they fire depends only on the key, so the
//! injected set is independent of worker scheduling and `--jobs`.
//!
//! The facility is always compiled (it is a few branches on an
//! `Option` that is `None` in production), but the ways to *attach* a
//! set — `FleetEngine::with_failpoints`, `heb_fleet --inject` — only
//! exist under the `failpoints` feature.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use heb_rng::splitmix64;

/// The injection sites compiled into the fleet engine.
pub mod site {
    /// Cache read fails with an I/O error (entry unreadable).
    pub const CACHE_LOAD_IO: &str = "cache.load.io";
    /// Cache read returns a corrupt entry.
    pub const CACHE_LOAD_CORRUPT: &str = "cache.load.corrupt";
    /// Cache write fails as if the disk were full (ENOSPC).
    pub const CACHE_STORE_FULL: &str = "cache.store.enospc";
    /// Run-journal append fails with an I/O error.
    pub const JOURNAL_APPEND: &str = "journal.append";
    /// The worker panics inside the scenario run (exercises the real
    /// `catch_unwind` isolation path).
    pub const WORKER_PANIC: &str = "worker.panic";
    /// The worker stalls for 50 ms before simulating (exercises the
    /// wall-clock watchdog).
    pub const WORKER_STALL: &str = "worker.stall";
    /// The engine stops scheduling work, emulating a killed process:
    /// in-flight journal state is left dangling exactly as SIGKILL
    /// would leave it.
    pub const RUN_ABORT: &str = "run.abort";
}

/// When a site fires, relative to its hit counter or a key.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// Fire on hits `from .. from + count` (1-based); `count == None`
    /// means "forever from `from`".
    Window { from: u64, count: Option<u64> },
    /// Fire for a deterministic ~`p` fraction of keys under `seed`.
    Keyed { p: f64, seed: u64 },
}

#[derive(Debug)]
struct Site {
    rule: Rule,
    hits: AtomicU64,
    fired: AtomicU64,
}

/// A parsed, immutable set of failpoint rules with per-site counters.
#[derive(Debug, Default)]
pub struct Failpoints {
    sites: BTreeMap<String, Site>,
}

impl Failpoints {
    /// Parses a spec like `worker.panic=3,cache.store.enospc=1+`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut sites = BTreeMap::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, rule) = entry
                .split_once('=')
                .ok_or_else(|| format!("failpoint entry {entry:?}: expected site=rule"))?;
            let rule = parse_rule(rule.trim())
                .map_err(|why| format!("failpoint entry {entry:?}: {why}"))?;
            sites.insert(
                name.trim().to_string(),
                Site {
                    rule,
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                },
            );
        }
        Ok(Self { sites })
    }

    /// Whether the site fires on this hit. Advances the site's hit
    /// counter; unknown sites never fire (and count nothing).
    pub fn fires(&self, name: &str) -> bool {
        self.fires_keyed(name, 0)
    }

    /// Like [`Failpoints::fires`], but keyed rules (`p…@…`) decide from
    /// `key` instead of the hit counter, so the outcome is independent
    /// of call order across worker threads.
    pub fn fires_keyed(&self, name: &str, key: u64) -> bool {
        let Some(site) = self.sites.get(name) else {
            return false;
        };
        let hit = site.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match site.rule {
            Rule::Window { from, count } => {
                hit >= from && count.is_none_or(|c| hit < from.saturating_add(c))
            }
            Rule::Keyed { p, seed } => {
                let mut state = seed ^ key.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
                let z = splitmix64(&mut state);
                ((z >> 11) as f64 / (1u64 << 53) as f64) < p
            }
        };
        if fire {
            site.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How many times the site has been checked so far.
    #[must_use]
    pub fn hits(&self, name: &str) -> u64 {
        self.sites
            .get(name)
            .map_or(0, |s| s.hits.load(Ordering::Relaxed))
    }

    /// How many times the site has actually fired so far.
    #[must_use]
    pub fn fired(&self, name: &str) -> u64 {
        self.sites
            .get(name)
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }

    /// Whether the set defines no sites at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

fn parse_rule(rule: &str) -> Result<Rule, String> {
    if let Some(prob) = rule.strip_prefix('p') {
        let (p, seed) = prob
            .split_once('@')
            .ok_or_else(|| "keyed rule needs p<fraction>@<seed>".to_string())?;
        let p: f64 = p.parse().map_err(|e| format!("bad fraction: {e}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("fraction {p} outside [0, 1]"));
        }
        let seed: u64 = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
        return Ok(Rule::Keyed { p, seed });
    }
    if let Some(from) = rule.strip_suffix('+') {
        let from = parse_hit(from)?;
        return Ok(Rule::Window { from, count: None });
    }
    if let Some((from, count)) = rule.split_once(':') {
        let from = parse_hit(from)?;
        let count: u64 = count.parse().map_err(|e| format!("bad count: {e}"))?;
        return Ok(Rule::Window {
            from,
            count: Some(count),
        });
    }
    let from = parse_hit(rule)?;
    Ok(Rule::Window {
        from,
        count: Some(1),
    })
}

fn parse_hit(text: &str) -> Result<u64, String> {
    let hit: u64 = text.parse().map_err(|e| format!("bad hit number: {e}"))?;
    if hit == 0 {
        return Err("hit numbers are 1-based".to_string());
    }
    Ok(hit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hit_fires_once() {
        let fp = Failpoints::parse("worker.panic=3").unwrap();
        let fired: Vec<bool> = (0..5).map(|_| fp.fires(site::WORKER_PANIC)).collect();
        assert_eq!(fired, [false, false, true, false, false]);
        assert_eq!(fp.hits(site::WORKER_PANIC), 5);
        assert_eq!(fp.fired(site::WORKER_PANIC), 1);
    }

    #[test]
    fn windows_and_open_ends_fire_in_range() {
        let fp = Failpoints::parse("a=2:3,b=4+").unwrap();
        let a: Vec<bool> = (0..6).map(|_| fp.fires("a")).collect();
        assert_eq!(a, [false, true, true, true, false, false]);
        let b: Vec<bool> = (0..6).map(|_| fp.fires("b")).collect();
        assert_eq!(b, [false, false, false, true, true, true]);
    }

    #[test]
    fn unknown_sites_never_fire() {
        let fp = Failpoints::parse("a=1+").unwrap();
        assert!(!fp.fires("nonexistent.site"));
        assert_eq!(fp.hits("nonexistent.site"), 0);
        assert!(Failpoints::parse("").unwrap().is_empty());
    }

    #[test]
    fn keyed_rules_depend_only_on_the_key() {
        let fp = Failpoints::parse("w=p0.5@42").unwrap();
        let picks: Vec<bool> = (0..64).map(|k| fp.fires_keyed("w", k)).collect();
        // Re-checking the same keys in reverse order gives the same set.
        let again: Vec<bool> = (0..64)
            .rev()
            .map(|k| fp.fires_keyed("w", k))
            .rev()
            .collect();
        assert_eq!(picks, again);
        let fired = picks.iter().filter(|&&f| f).count();
        assert!((10..54).contains(&fired), "p0.5 fired {fired}/64");
        // A different seed picks a different set.
        let other = Failpoints::parse("w=p0.5@43").unwrap();
        let picks_other: Vec<bool> = (0..64).map(|k| other.fires_keyed("w", k)).collect();
        assert_ne!(picks, picks_other);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in ["a", "a=0", "a=x", "a=p2@1", "a=p0.5", "a=1:x"] {
            assert!(Failpoints::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
