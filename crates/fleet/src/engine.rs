//! The deterministically-parallel, hardened scenario executor.
//!
//! Determinism argument: each [`Scenario`] is a pure function of its
//! own fields — the simulation it builds seeds its own RNGs and shares
//! no state with any other run — so executing scenarios on worker
//! threads changes *when* each report is produced but not *what* it
//! contains. Results are collected into a vector indexed by the
//! scenario's position in the submitted batch, so the returned order
//! is the submission order regardless of which worker finished first.
//! `run` with any worker count is therefore bit-identical to
//! [`heb_core::SerialRunner`].
//!
//! Robustness (DESIGN §9): every attempt runs under `catch_unwind`, so
//! one scenario panicking cannot poison its siblings or the engine.
//! Failures are classified ([`ScenarioFailure`]), retried on a
//! seed-deterministic backoff schedule ([`HardenPolicy`]), and finally
//! quarantined.
//!
//! There is one entry point: [`FleetEngine::run`] takes a
//! [`RunPolicy`] (per-run overrides of the engine's robustness knobs
//! plus the optional crash-safe [`RunJournal`]) and returns a
//! [`RunOutcome`] accounting for every scenario. The historical
//! reports-or-panic contract is an explicit opt-in via
//! [`RunOutcome::expect_reports`]. The attached cache degrades
//! (read-write → read-only → disabled) instead of erroring.

// heb-analyze: allow(HEB003, imports the unwind-isolation primitives; the import itself panics nothing)
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use heb_core::{Scenario, ScenarioRunner, SimReport};
use heb_telemetry::{Event, FleetEvent, Metrics, RecorderHandle};

use crate::cache::ResultCache;
use crate::degrade::{CacheMode, DegradableCache};
use crate::failpoint::site;
#[cfg(feature = "failpoints")]
use crate::failpoint::Failpoints;
use crate::harden::{
    HardenPolicy, ReportSource, RunOutcome, RunPolicy, ScenarioFailure, ScenarioOutcome,
    ScenarioState,
};
use crate::journal::RunJournal;

/// How long an injected `worker.stall` failpoint sleeps, generously
/// above the watchdog limits the chaos suite configures.
const STALL_MS: u64 = 50;

/// Counters describing what the engine has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Scenarios simulated (cache misses plus uncached runs).
    pub simulated: usize,
    /// Servers across every simulated scenario — the fleet-scale
    /// denominator behind the wall-clock numbers (a cached megafleet
    /// replay costs nothing, so cache hits do not count here).
    pub servers_simulated: usize,
    /// Scenarios replayed from the result cache.
    pub cache_hits: usize,
    /// Fresh results persisted to the cache.
    pub cache_writes: usize,
    /// Retry attempts scheduled after failed attempts.
    pub retries: usize,
    /// Scenarios quarantined after exhausting every attempt.
    pub quarantined: usize,
    /// Scenarios settled from a resumed run's journal store.
    pub resumed: usize,
    /// Stale temp files reclaimed when the cache was attached.
    pub tmp_reclaimed: usize,
    /// The attached cache's current service level (`ReadWrite` when no
    /// cache is attached — nothing has degraded).
    pub cache_mode: CacheMode,
}

/// Cumulative counters, updated atomically so workers need no lock.
#[derive(Debug, Default)]
struct AtomicStats {
    simulated: AtomicUsize,
    servers_simulated: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_writes: AtomicUsize,
    retries: AtomicUsize,
    quarantined: AtomicUsize,
    resumed: AtomicUsize,
}

/// What one worker recorded for one claimed scenario.
#[derive(Debug)]
struct SlotOutcome {
    attempts: u32,
    result: Result<SimReport, ScenarioFailure>,
}

/// A fixed-width worker pool executing scenario batches, with an
/// optional content-addressed result cache in front of the simulator.
#[derive(Debug)]
pub struct FleetEngine {
    jobs: usize,
    cache: Option<DegradableCache>,
    stats: AtomicStats,
    /// Optional metrics registry: when attached, every `run` records
    /// per-phase wall-clock timings (`fleet.phase.*`) and per-scenario
    /// simulation latency (`fleet.scenario_seconds`).
    metrics: Option<Arc<Metrics>>,
    /// Panic-isolation / retry / watchdog knobs (default: all off).
    policy: HardenPolicy,
    /// Optional recorder for typed robustness events (`fleet.*`).
    recorder: Option<RecorderHandle>,
    /// Failpoint set; only attachable under the `failpoints` feature.
    failpoints: Option<Arc<crate::failpoint::Failpoints>>,
    /// Guards the one-shot `fleet.cache.tmp_reclaimed` counter add.
    tmp_counted: AtomicBool,
}

impl FleetEngine {
    /// Creates an engine running at most `jobs` scenarios concurrently
    /// (clamped to at least one), with no cache.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            cache: None,
            stats: AtomicStats::default(),
            metrics: None,
            policy: HardenPolicy::default(),
            recorder: None,
            failpoints: None,
            tmp_counted: AtomicBool::new(false),
        }
    }

    /// Attaches a result cache consulted before, and written after,
    /// every simulation. The cache is wrapped for graceful degradation
    /// and stale temp files from crashed runs are swept immediately.
    #[must_use]
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        #[allow(unused_mut)]
        let mut wrapped = DegradableCache::open(cache);
        #[cfg(feature = "failpoints")]
        if let Some(fp) = &self.failpoints {
            wrapped = wrapped.with_failpoints(Arc::clone(fp));
        }
        self.cache = Some(wrapped);
        self
    }

    /// Attaches a metrics registry recording phase timings (probe /
    /// simulate / merge) and per-scenario simulation latency.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches the execution-robustness policy (retries, backoff,
    /// watchdog, fail-fast).
    #[must_use]
    pub fn with_policy(mut self, policy: HardenPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a recorder receiving the typed robustness events:
    /// `RetryScheduled`, `ScenarioQuarantined`, `CacheDegraded`,
    /// `RunResumed`.
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a deterministic failpoint set (chaos testing only).
    /// Also threads the set into an already-attached cache.
    #[cfg(feature = "failpoints")]
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> Self {
        if let Some(cache) = self.cache.take() {
            self.cache = Some(cache.with_failpoints(Arc::clone(&failpoints)));
        }
        self.failpoints = Some(failpoints);
        self
    }

    /// The attached metrics registry, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref().map(DegradableCache::inner)
    }

    /// The robustness policy in force.
    #[must_use]
    pub fn policy(&self) -> &HardenPolicy {
        &self.policy
    }

    /// Cumulative counters across every `run` call so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            simulated: self.stats.simulated.load(Ordering::Relaxed),
            servers_simulated: self.stats.servers_simulated.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_writes: self.stats.cache_writes.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            quarantined: self.stats.quarantined.load(Ordering::Relaxed),
            resumed: self.stats.resumed.load(Ordering::Relaxed),
            tmp_reclaimed: self
                .cache
                .as_ref()
                .map_or(0, DegradableCache::tmp_reclaimed),
            cache_mode: self
                .cache
                .as_ref()
                .map_or_else(CacheMode::default, DegradableCache::mode),
        }
    }

    /// Executes `batch` under `policy` — the engine's single entry
    /// point, replacing the old `run` / `run_one` / `run_hardened`
    /// trio.
    ///
    /// Cached scenarios are replayed without simulating; the rest are
    /// spread across the worker pool in submission order, bit-identical
    /// to serial execution at any worker count. Panics are isolated per
    /// attempt, failures retried then quarantined, and — when the
    /// policy attaches a journal — progress is persisted so an
    /// interrupted run resumes bit-identically. Knobs the policy leaves
    /// unset inherit [`FleetEngine::with_policy`].
    ///
    /// The returned [`RunOutcome`] accounts for every scenario; call
    /// [`RunOutcome::expect_reports`] for the historical
    /// reports-or-panic contract.
    #[must_use]
    pub fn run(&self, batch: &[Scenario], policy: &RunPolicy) -> RunOutcome {
        self.execute(batch, policy.resolve(self.policy), policy.journal_ref())
    }

    /// Executes one scenario and returns its terminal outcome.
    #[deprecated(
        since = "0.1.0",
        note = "use `run` with a single-scenario batch and a `RunPolicy`"
    )]
    #[must_use]
    pub fn run_one(&self, scenario: &Scenario) -> ScenarioOutcome {
        let mut outcome = self.run(std::slice::from_ref(scenario), &RunPolicy::new());
        outcome.outcomes.pop().unwrap_or(ScenarioOutcome {
            index: 0,
            label: scenario.label().to_string(),
            hash: scenario.hash_hex(),
            state: ScenarioState::Failed,
            attempts: 0,
            source: ReportSource::None,
            report: None,
            failure: Some(ScenarioFailure::Aborted),
        })
    }

    /// Executes `batch` under the engine's robustness policy.
    #[deprecated(
        since = "0.1.0",
        note = "use `run` with `RunPolicy::new().maybe_journal(journal)`"
    )]
    #[must_use]
    pub fn run_hardened(&self, batch: &[Scenario], journal: Option<&RunJournal>) -> RunOutcome {
        self.run(batch, &RunPolicy::new().maybe_journal(journal))
    }

    /// The probe / simulate / merge pipeline behind [`FleetEngine::run`],
    /// with the per-run effective policy already resolved.
    fn execute(
        &self,
        batch: &[Scenario],
        policy: HardenPolicy,
        journal: Option<&RunJournal>,
    ) -> RunOutcome {
        self.count_tmp_once();
        if let Some(journal) = journal {
            journal.record_batch_open(batch);
        }

        // Probe pass: settle resumed and cached scenarios up front,
        // queue the rest.
        let probe_timer = self.metrics.as_ref().map(|m| m.timer("fleet.phase.probe"));
        let mut settled: Vec<Option<(SimReport, ReportSource)>> = Vec::with_capacity(batch.len());
        let mut pending: Vec<usize> = Vec::new();
        for (index, scenario) in batch.iter().enumerate() {
            if let Some(report) = journal.and_then(|j| j.completed_report(scenario)) {
                self.stats.resumed.fetch_add(1, Ordering::Relaxed);
                settled.push(Some((report, ReportSource::Resumed)));
                continue;
            }
            if let Some(report) = self.cache.as_ref().and_then(|c| c.load(scenario)) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                // Mirror the hit into the run store so a later resume
                // does not depend on the shared cache staying healthy.
                if let Some(journal) = journal {
                    journal.record_done(scenario, &report, 0);
                }
                settled.push(Some((report, ReportSource::Cache)));
                continue;
            }
            pending.push(index);
            settled.push(None);
        }
        drop(probe_timer);
        let resumed = settled
            .iter()
            .filter(|s| matches!(s, Some((_, ReportSource::Resumed))))
            .count();
        let cache_hits = batch.len() - pending.len() - resumed;
        if resumed > 0 {
            if let Some(journal) = journal {
                self.emit(|| FleetEvent::RunResumed {
                    run_id: journal.run_id().to_string(),
                    completed: resumed,
                    remaining: batch.len() - resumed,
                });
            }
        }

        // Simulation pass: workers pull pending scenarios off a shared
        // cursor; each result lands in the slot of its batch index, so
        // scheduling order cannot leak into the output.
        let simulate_timer = self
            .metrics
            .as_ref()
            .map(|m| m.timer("fleet.phase.simulate"));
        let slots: Vec<Mutex<Option<SlotOutcome>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let worker = || loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            if let Some(fp) = &self.failpoints {
                if fp.fires(site::RUN_ABORT) {
                    // Emulated kill: stop scheduling; in-flight journal
                    // state stays dangling exactly as SIGKILL leaves it.
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
            }
            let next = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&index) = pending.get(next) else {
                break;
            };
            let outcome = self.run_scenario(&batch[index], policy, journal);
            if outcome.result.is_err() && policy.fail_fast {
                abort.store(true, Ordering::Relaxed);
            }
            // A poisoned slot means another worker panicked through the
            // isolation layer somehow; recovering the lock is safe —
            // the slot value is only written once.
            *slots[next].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
        };
        let workers = self.jobs.min(pending.len());
        if workers > 1 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        } else if workers == 1 {
            worker();
        }
        drop(simulate_timer);

        // Merge pass: persist fresh results, account for every
        // scenario, and drain cache-degradation transitions.
        let merge_timer = self.metrics.as_ref().map(|m| m.timer("fleet.phase.merge"));
        let aborted = abort.load(Ordering::Relaxed);
        let mut slot_results = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner));
        let mut simulated = 0usize;
        let mut outcomes = Vec::with_capacity(batch.len());
        for (index, scenario) in batch.iter().enumerate() {
            let mut outcome = ScenarioOutcome {
                index,
                label: scenario.label().to_string(),
                hash: scenario.hash_hex(),
                state: ScenarioState::Pending,
                attempts: 0,
                source: ReportSource::None,
                report: None,
                failure: None,
            };
            if let Some((report, source)) = settled[index].take() {
                outcome.state = ScenarioState::Done;
                outcome.source = source;
                outcome.report = Some(report);
                outcomes.push(outcome);
                continue;
            }
            match slot_results.next().flatten() {
                Some(SlotOutcome {
                    attempts,
                    result: Ok(report),
                }) => {
                    simulated += 1;
                    if let Some(cache) = &self.cache {
                        if cache.store(scenario, &report) {
                            self.stats.cache_writes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    outcome.state = ScenarioState::Done;
                    outcome.attempts = attempts;
                    outcome.source = ReportSource::Simulated;
                    outcome.report = Some(report);
                }
                Some(SlotOutcome {
                    attempts,
                    result: Err(failure),
                }) => {
                    simulated += 1;
                    outcome.state = ScenarioState::Quarantined;
                    outcome.attempts = attempts;
                    outcome.failure = Some(failure);
                }
                // Never claimed: the run stopped first.
                None => {
                    outcome.failure = aborted.then_some(ScenarioFailure::Aborted);
                }
            }
            outcomes.push(outcome);
        }
        if let Some(cache) = &self.cache {
            for degradation in cache.drain_transitions() {
                self.emit(|| FleetEvent::CacheDegraded {
                    mode: degradation.to.name(),
                    reason: degradation.reason,
                });
            }
        }
        drop(merge_timer);

        let run = RunOutcome { outcomes, aborted };
        let counts = run.counts();
        if let Some(journal) = journal {
            journal.record_batch_close(
                counts.done,
                counts.failed,
                counts.quarantined,
                counts.pending,
                aborted,
            );
        }
        if let Some(metrics) = &self.metrics {
            metrics.counter("fleet.scenarios").add(batch.len() as u64);
            metrics.counter("fleet.simulated").add(simulated as u64);
            metrics.counter("fleet.cache_hits").add(cache_hits as u64);
            if resumed > 0 {
                metrics.counter("fleet.resumed").add(resumed as u64);
            }
            if counts.quarantined > 0 {
                metrics
                    .counter("fleet.quarantined")
                    .add(counts.quarantined as u64);
            }
        }
        run
    }

    /// Runs one scenario to a terminal per-scenario result: attempts
    /// under `catch_unwind`, deterministic backoff between retries,
    /// quarantine when the budget is exhausted.
    fn run_scenario(
        &self,
        scenario: &Scenario,
        policy: HardenPolicy,
        journal: Option<&RunJournal>,
    ) -> SlotOutcome {
        self.stats.simulated.fetch_add(1, Ordering::Relaxed);
        self.stats
            .servers_simulated
            .fetch_add(scenario.servers(), Ordering::Relaxed);
        let hash = scenario.hash_hex();
        let hash128 = scenario.content_hash();
        let hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("fleet.scenario_seconds"));
        let mut attempt = 1u32;
        loop {
            if let Some(journal) = journal {
                journal.record_state(&hash, ScenarioState::Running, attempt, None);
            }
            // Keyed failpoints decide from the scenario hash, so the
            // injected set is independent of worker scheduling.
            let (inject_panic, stall) = match &self.failpoints {
                Some(fp) => (
                    fp.fires_keyed(site::WORKER_PANIC, hash128 as u64),
                    fp.fires_keyed(site::WORKER_STALL, hash128 as u64),
                ),
                None => (false, false),
            };
            let start = hist.as_ref().map(|_| std::time::Instant::now());
            let result = run_attempt(scenario, inject_panic, stall, policy.timeout_ms);
            if let (Some(hist), Some(start)) = (&hist, start) {
                hist.observe(start.elapsed().as_secs_f64());
            }
            match result {
                Ok(report) => {
                    if let Some(journal) = journal {
                        journal.record_done(scenario, &report, attempt);
                    }
                    return SlotOutcome {
                        attempts: attempt,
                        result: Ok(report),
                    };
                }
                Err(failure) => {
                    let reason = failure.to_string();
                    if let Some(journal) = journal {
                        journal.record_state(&hash, ScenarioState::Failed, attempt, Some(&reason));
                    }
                    if attempt < policy.max_attempts() {
                        let backoff = policy.backoff_ms(hash128, attempt);
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        self.emit(|| FleetEvent::RetryScheduled {
                            scenario: scenario.label().to_string(),
                            attempt: attempt + 1,
                            backoff_ms: backoff,
                            reason: reason.clone(),
                        });
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                        attempt += 1;
                        continue;
                    }
                    if let Some(journal) = journal {
                        journal.record_state(
                            &hash,
                            ScenarioState::Quarantined,
                            attempt,
                            Some(&reason),
                        );
                    }
                    self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    self.emit(|| FleetEvent::ScenarioQuarantined {
                        scenario: scenario.label().to_string(),
                        attempts: attempt,
                        reason,
                    });
                    return SlotOutcome {
                        attempts: attempt,
                        result: Err(failure),
                    };
                }
            }
        }
    }

    /// Records a robustness event if a recorder is attached and on.
    fn emit(&self, event: impl FnOnce() -> FleetEvent) {
        if let Some(recorder) = &self.recorder {
            if recorder.is_enabled() {
                recorder.record(&Event::Fleet(event()));
            }
        }
    }

    /// Adds the cache's tmp-sweep count to the metrics registry once
    /// per engine (the sweep happens at attach time, not per run).
    fn count_tmp_once(&self) {
        if let (Some(metrics), Some(cache)) = (&self.metrics, &self.cache) {
            if !self.tmp_counted.swap(true, Ordering::Relaxed) {
                metrics
                    .counter("fleet.cache.tmp_reclaimed")
                    .add(cache.tmp_reclaimed() as u64);
            }
        }
    }
}

/// Executes one attempt, classifying panics, typed errors, and — when
/// a watchdog limit is set — timeouts.
fn run_attempt(
    scenario: &Scenario,
    inject_panic: bool,
    stall: bool,
    timeout_ms: Option<u64>,
) -> Result<SimReport, ScenarioFailure> {
    let body = move |scenario: &Scenario| {
        if inject_panic {
            // heb-analyze: allow(HEB003, deliberate injected panic exercising the real catch_unwind isolation path)
            panic!("injected failpoint {}", site::WORKER_PANIC);
        }
        if stall {
            std::thread::sleep(Duration::from_millis(STALL_MS));
        }
        scenario.run()
    };
    let Some(limit_ms) = timeout_ms else {
        return classify(catch_unwind(AssertUnwindSafe(|| body(scenario))));
    };
    // Watchdog: the attempt runs on its own thread so the worker can
    // give up on it. A timed-out thread is abandoned, not killed — it
    // finishes (or panics) into a dropped channel. That leak is the
    // price of a watchdog without unsafe cancellation; bounded by
    // attempts, and absent entirely when no timeout is configured.
    let (sender, receiver) = mpsc::channel();
    let clone = scenario.clone();
    let spawned = std::thread::Builder::new()
        .name("heb-fleet-attempt".to_string())
        .spawn(move || {
            let _ = sender.send(catch_unwind(AssertUnwindSafe(|| body(&clone))));
        });
    if spawned.is_err() {
        // Cannot spawn (resource exhaustion): degrade to an unwatched
        // inline attempt rather than failing the scenario outright.
        return classify(catch_unwind(AssertUnwindSafe(|| body(scenario))));
    }
    match receiver.recv_timeout(Duration::from_millis(limit_ms)) {
        Ok(result) => classify(result),
        Err(_) => Err(ScenarioFailure::Timeout { limit_ms }),
    }
}

/// Folds a caught attempt into the failure taxonomy.
fn classify(
    caught: std::thread::Result<Result<SimReport, heb_core::SimError>>,
) -> Result<SimReport, ScenarioFailure> {
    match caught {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(err)) => Err(ScenarioFailure::Error {
            message: err.to_string(),
        }),
        Err(payload) => Err(ScenarioFailure::Panic {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Stringifies a panic payload (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl ScenarioRunner for FleetEngine {
    fn run_batch(&self, batch: &[Scenario]) -> Vec<SimReport> {
        self.run(batch, &RunPolicy::new()).expect_reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::{SerialRunner, SimConfig};
    use heb_workload::Archetype;

    fn batch() -> Vec<Scenario> {
        Archetype::ALL
            .iter()
            .map(|&w| {
                Scenario::new(
                    format!("engine-test/{}", w.abbreviation()),
                    SimConfig::prototype(),
                    &[w],
                    0.05,
                    11,
                )
            })
            .collect()
    }

    /// A scenario whose `run` fails with a typed `SimError`
    /// (`NoWorkloads`) — the cheap way to exercise the failure paths.
    fn failing_scenario(label: &str) -> Scenario {
        Scenario::new(label, SimConfig::prototype(), &[], 0.05, 11)
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let batch = batch();
        let serial = SerialRunner.run_batch(&batch);
        let engine = FleetEngine::new(4);
        let parallel = engine.run(&batch, &RunPolicy::new()).expect_reports();
        assert_eq!(parallel, serial);
        let stats = engine.stats();
        assert_eq!(stats.simulated, batch.len());
        assert_eq!(
            stats.servers_simulated,
            batch.len() * SimConfig::prototype().servers,
            "every simulated scenario contributes its fleet size"
        );
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_writes, 0, "no cache attached");
        assert_eq!(stats.cache_mode, CacheMode::ReadWrite);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = FleetEngine::new(4);
        assert!(engine
            .run(&[], &RunPolicy::new())
            .expect_reports()
            .is_empty());
        assert_eq!(engine.stats(), EngineStats::default());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(FleetEngine::new(0).jobs(), 1);
    }

    #[test]
    fn metrics_capture_phases_and_per_scenario_latency() {
        let metrics = Arc::new(Metrics::new());
        let engine = FleetEngine::new(2).with_metrics(Arc::clone(&metrics));
        let batch = batch();
        let reports = engine.run(&batch, &RunPolicy::new()).expect_reports();
        assert_eq!(reports.len(), batch.len());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("fleet.scenarios"), Some(batch.len() as u64));
        assert_eq!(snap.counter("fleet.simulated"), Some(batch.len() as u64));
        assert_eq!(snap.counter("fleet.cache_hits"), Some(0));
        for phase in [
            "fleet.phase.probe",
            "fleet.phase.simulate",
            "fleet.phase.merge",
        ] {
            let h = snap.histogram(phase).expect(phase);
            assert_eq!(h.count, 1, "{phase} must time each run() once");
        }
        let per_scenario = snap.histogram("fleet.scenario_seconds").unwrap();
        assert_eq!(per_scenario.count, batch.len() as u64);
    }

    #[test]
    fn metrics_do_not_perturb_results() {
        let batch = batch();
        let plain = FleetEngine::new(3).run(&batch, &RunPolicy::new());
        let instrumented = FleetEngine::new(3)
            .with_metrics(Arc::new(Metrics::new()))
            .run(&batch, &RunPolicy::new());
        assert_eq!(plain, instrumented);
    }

    #[test]
    fn run_quarantines_failures_without_poisoning_siblings() {
        let mut batch = batch();
        batch.insert(1, failing_scenario("engine-test/broken"));
        let engine = FleetEngine::new(3);
        let outcome = engine.run(&batch, &RunPolicy::new());
        assert!(!outcome.aborted);
        let counts = outcome.counts();
        assert_eq!(counts.done, batch.len() - 1, "siblings must all finish");
        assert_eq!(counts.quarantined, 1);
        let broken = &outcome.outcomes[1];
        assert_eq!(broken.state, ScenarioState::Quarantined);
        assert_eq!(broken.attempts, 1, "no retries under the default policy");
        assert!(matches!(
            broken.failure,
            Some(ScenarioFailure::Error { .. })
        ));
        assert!(outcome.reports().is_none());
        assert_eq!(engine.stats().quarantined, 1);
        // The engine is still usable after a quarantine.
        assert_eq!(engine.run(&batch[..1], &RunPolicy::new()).counts().done, 1);
    }

    #[test]
    fn retries_are_counted_and_bounded() {
        // The per-run policy supplies the retry budget; the engine
        // default (zero retries) is overridden for this call only.
        let engine = FleetEngine::new(1);
        let outcome = engine.run(
            &[failing_scenario("engine-test/retry")],
            &RunPolicy::new().retries(2),
        );
        assert_eq!(outcome.outcomes[0].attempts, 3, "1 attempt + 2 retries");
        assert_eq!(outcome.outcomes[0].state, ScenarioState::Quarantined);
        assert_eq!(engine.stats().retries, 2);
    }

    #[test]
    fn fail_fast_stops_scheduling_after_a_quarantine() {
        let mut scenarios = vec![failing_scenario("engine-test/ff-broken")];
        scenarios.extend(batch());
        let engine = FleetEngine::new(1).with_policy(HardenPolicy {
            fail_fast: true,
            ..HardenPolicy::default()
        });
        let outcome = engine.run(&scenarios, &RunPolicy::new());
        assert!(outcome.aborted);
        let counts = outcome.counts();
        assert_eq!(counts.quarantined, 1);
        assert_eq!(counts.pending, scenarios.len() - 1, "rest never scheduled");
        assert!(outcome.outcomes[1..]
            .iter()
            .all(|o| o.failure == Some(ScenarioFailure::Aborted)));
    }

    #[test]
    fn run_re_raises_the_first_failure_with_the_scenario_label() {
        let engine = FleetEngine::new(2);
        let mut scenarios = batch();
        scenarios.push(failing_scenario("engine-test/raise"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            engine.run(&scenarios, &RunPolicy::new()).expect_reports()
        }));
        let payload = caught.expect_err("expect_reports must re-raise the failure");
        let message = panic_message(payload.as_ref());
        assert_eq!(
            message, "scenario \"engine-test/raise\": need at least one workload",
            "message must match Scenario::run_expect's format"
        );
    }

    #[test]
    fn watchdog_flags_overlong_scenarios_as_timeouts() {
        // A 20-hour horizon cannot simulate in 1 ms even on absurd
        // hardware, so the watchdog must fire.
        let slow = Scenario::new(
            "engine-test/slow",
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            20.0,
            11,
        );
        let engine = FleetEngine::new(1);
        let outcome = engine.run(std::slice::from_ref(&slow), &RunPolicy::new().timeout_ms(1));
        assert_eq!(
            outcome.outcomes[0].failure,
            Some(ScenarioFailure::Timeout { limit_ms: 1 })
        );
        assert_eq!(outcome.outcomes[0].state, ScenarioState::Quarantined);
    }

    #[test]
    fn hardened_path_is_bit_identical_to_serial() {
        let batch = batch();
        let serial = SerialRunner.run_batch(&batch);
        let outcome = FleetEngine::new(4).run(&batch, &RunPolicy::new());
        assert!(outcome.all_done());
        assert_eq!(outcome.reports(), Some(serial));
        assert!(outcome
            .outcomes
            .iter()
            .all(|o| o.source == ReportSource::Simulated && o.attempts == 1));
    }

    #[test]
    fn run_policy_inherits_then_overrides_the_engine_policy() {
        let engine = FleetEngine::new(1).with_policy(HardenPolicy {
            max_retries: 2,
            ..HardenPolicy::default()
        });
        let batch = [failing_scenario("engine-test/inherit")];
        // Unset knobs inherit the engine policy: 1 attempt + 2 retries.
        let inherited = engine.run(&batch, &RunPolicy::new());
        assert_eq!(inherited.outcomes[0].attempts, 3);
        // A per-run override wins over the engine policy for that call.
        let overridden = engine.run(&batch, &RunPolicy::new().retries(0));
        assert_eq!(overridden.outcomes[0].attempts, 1);
        // The engine policy itself is untouched.
        assert_eq!(engine.policy().max_retries, 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_single_entry_point() {
        let batch = batch();
        let engine = FleetEngine::new(2);
        let via_run = engine.run(&batch, &RunPolicy::new());
        assert_eq!(engine.run_hardened(&batch, None), via_run);
        let single = engine.run_one(&batch[0]);
        assert_eq!(single.state, ScenarioState::Done);
        assert_eq!(single.report, via_run.outcomes[0].report);
    }
}
