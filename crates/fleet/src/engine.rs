//! The deterministically-parallel scenario executor.
//!
//! Determinism argument: each [`Scenario`] is a pure function of its
//! own fields — the simulation it builds seeds its own RNGs and shares
//! no state with any other run — so executing scenarios on worker
//! threads changes *when* each report is produced but not *what* it
//! contains. Results are collected into a vector indexed by the
//! scenario's position in the submitted batch, so the returned order
//! is the submission order regardless of which worker finished first.
//! `run` with any worker count is therefore bit-identical to
//! [`heb_core::SerialRunner`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use heb_core::{Scenario, ScenarioRunner, SimReport};
use heb_telemetry::Metrics;

use crate::cache::ResultCache;

/// Counters describing what one `run` call actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Scenarios simulated (cache misses plus uncached runs).
    pub simulated: usize,
    /// Scenarios replayed from the result cache.
    pub cache_hits: usize,
    /// Fresh results persisted to the cache.
    pub cache_writes: usize,
}

/// Cumulative counters, updated atomically so workers need no lock.
#[derive(Debug, Default)]
struct AtomicStats {
    simulated: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_writes: AtomicUsize,
}

/// A fixed-width worker pool executing scenario batches, with an
/// optional content-addressed result cache in front of the simulator.
#[derive(Debug)]
pub struct FleetEngine {
    jobs: usize,
    cache: Option<ResultCache>,
    stats: AtomicStats,
    /// Optional metrics registry: when attached, every `run` records
    /// per-phase wall-clock timings (`fleet.phase.*`) and per-scenario
    /// simulation latency (`fleet.scenario_seconds`).
    metrics: Option<Arc<Metrics>>,
}

impl FleetEngine {
    /// Creates an engine running at most `jobs` scenarios concurrently
    /// (clamped to at least one), with no cache.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            cache: None,
            stats: AtomicStats::default(),
            metrics: None,
        }
    }

    /// Attaches a result cache consulted before, and written after,
    /// every simulation.
    #[must_use]
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a metrics registry recording phase timings (probe /
    /// simulate / merge) and per-scenario simulation latency.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics registry, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Cumulative counters across every `run` call so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            simulated: self.stats.simulated.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_writes: self.stats.cache_writes.load(Ordering::Relaxed),
        }
    }

    /// Executes `batch`, returning one report per scenario in
    /// submission order — bit-identical to running the batch serially.
    ///
    /// Cached scenarios are replayed without simulating; the rest are
    /// spread across the worker pool and their fresh results persisted.
    ///
    /// # Panics
    ///
    /// Panics if a scenario fails to build (the same panic
    /// [`Scenario::run_expect`] raises serially).
    #[must_use]
    pub fn run(&self, batch: &[Scenario]) -> Vec<SimReport> {
        // Cache probe pass: settle every hit up front, queue the rest.
        let probe_timer = self.metrics.as_ref().map(|m| m.timer("fleet.phase.probe"));
        let mut results: Vec<Option<SimReport>> = Vec::with_capacity(batch.len());
        let mut pending: Vec<usize> = Vec::new();
        for (index, scenario) in batch.iter().enumerate() {
            let hit = self.cache.as_ref().and_then(|c| c.load(scenario));
            if hit.is_some() {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                pending.push(index);
            }
            results.push(hit);
        }
        drop(probe_timer);

        // Simulation pass: workers pull pending scenarios off a shared
        // cursor; each result lands in the slot of its batch index, so
        // scheduling order cannot leak into the output.
        let simulate_timer = self
            .metrics
            .as_ref()
            .map(|m| m.timer("fleet.phase.simulate"));
        let scenario_hist = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("fleet.scenario_seconds"));
        let run_one = |index: usize| -> SimReport {
            match &scenario_hist {
                Some(hist) => {
                    let start = std::time::Instant::now();
                    let report = batch[index].run_expect();
                    hist.observe(start.elapsed().as_secs_f64());
                    report
                }
                None => batch[index].run_expect(),
            }
        };
        let slots: Vec<Mutex<Option<SimReport>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.jobs.min(pending.len());
        if workers > 1 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&index) = pending.get(next) else {
                            break;
                        };
                        let report = run_one(index);
                        // A poisoned slot means another worker panicked;
                        // scope join re-raises that panic, so recovering
                        // the lock here is safe.
                        *slots[next]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(report);
                    });
                }
            });
        } else {
            for (slot, &index) in slots.iter().zip(&pending) {
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(run_one(index));
            }
        }
        self.stats
            .simulated
            .fetch_add(pending.len(), Ordering::Relaxed);
        drop(simulate_timer);

        // Merge pass: persist fresh results and fill the output vector.
        let merge_timer = self.metrics.as_ref().map(|m| m.timer("fleet.phase.merge"));
        for (slot, &index) in slots.iter().zip(&pending) {
            let report = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            if let Some(report) = report {
                if let Some(cache) = &self.cache {
                    if cache.store(&batch[index], &report).is_ok() {
                        self.stats.cache_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                results[index] = Some(report);
            }
        }
        drop(merge_timer);
        if let Some(metrics) = &self.metrics {
            metrics.counter("fleet.scenarios").add(batch.len() as u64);
            metrics.counter("fleet.simulated").add(pending.len() as u64);
            metrics
                .counter("fleet.cache_hits")
                .add((batch.len() - pending.len()) as u64);
        }
        // An unsettled slot cannot happen with a conforming worker
        // pool, but the recovery is cheap and exact: simulate the
        // scenario serially, which is bit-identical by construction.
        results
            .into_iter()
            .enumerate()
            .map(|(index, r)| r.unwrap_or_else(|| run_one(index)))
            .collect()
    }
}

impl ScenarioRunner for FleetEngine {
    fn run_batch(&self, batch: &[Scenario]) -> Vec<SimReport> {
        self.run(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::{SerialRunner, SimConfig};
    use heb_workload::Archetype;

    fn batch() -> Vec<Scenario> {
        Archetype::ALL
            .iter()
            .map(|&w| {
                Scenario::new(
                    format!("engine-test/{}", w.abbreviation()),
                    SimConfig::prototype(),
                    &[w],
                    0.05,
                    11,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let batch = batch();
        let serial = SerialRunner.run_batch(&batch);
        let engine = FleetEngine::new(4);
        let parallel = engine.run(&batch);
        assert_eq!(parallel, serial);
        let stats = engine.stats();
        assert_eq!(stats.simulated, batch.len());
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_writes, 0, "no cache attached");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = FleetEngine::new(4);
        assert!(engine.run(&[]).is_empty());
        assert_eq!(engine.stats(), EngineStats::default());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(FleetEngine::new(0).jobs(), 1);
    }

    #[test]
    fn metrics_capture_phases_and_per_scenario_latency() {
        let metrics = Arc::new(Metrics::new());
        let engine = FleetEngine::new(2).with_metrics(Arc::clone(&metrics));
        let batch = batch();
        let reports = engine.run(&batch);
        assert_eq!(reports.len(), batch.len());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("fleet.scenarios"), Some(batch.len() as u64));
        assert_eq!(snap.counter("fleet.simulated"), Some(batch.len() as u64));
        assert_eq!(snap.counter("fleet.cache_hits"), Some(0));
        for phase in [
            "fleet.phase.probe",
            "fleet.phase.simulate",
            "fleet.phase.merge",
        ] {
            let h = snap.histogram(phase).expect(phase);
            assert_eq!(h.count, 1, "{phase} must time each run() once");
        }
        let per_scenario = snap.histogram("fleet.scenario_seconds").unwrap();
        assert_eq!(per_scenario.count, batch.len() as u64);
    }

    #[test]
    fn metrics_do_not_perturb_results() {
        let batch = batch();
        let plain = FleetEngine::new(3).run(&batch);
        let instrumented = FleetEngine::new(3)
            .with_metrics(Arc::new(Metrics::new()))
            .run(&batch);
        assert_eq!(plain, instrumented);
    }
}
