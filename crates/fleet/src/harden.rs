//! Execution-robustness types: failure taxonomy, retry policy, and
//! per-run accounting.
//!
//! The contract this module anchors (see DESIGN §9): a scenario
//! failure — worker panic, typed build error, watchdog timeout, or an
//! injected failpoint — is converted to a [`ScenarioFailure`] value,
//! retried on a bounded, seed-deterministic backoff schedule, and
//! finally *quarantined* rather than allowed to poison the batch. The
//! engine returns a [`RunOutcome`] accounting for every scenario as
//! done / failed / quarantined / pending, mirroring the states in the
//! crash-safe run journal.

use std::fmt;

use heb_core::SimReport;
use heb_rng::splitmix64;

use crate::journal::RunJournal;

/// Why one scenario attempt (or the scenario terminally) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioFailure {
    /// The worker panicked; the message is the stringified payload.
    Panic {
        /// Panic payload (or a placeholder for non-string payloads).
        message: String,
    },
    /// `Scenario::run` returned a typed `SimError`.
    Error {
        /// The error's display form.
        message: String,
    },
    /// The per-scenario wall-clock watchdog expired.
    Timeout {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// A failpoint injected the failure directly.
    Injected {
        /// The failpoint site that fired.
        site: String,
    },
    /// The run was aborted (fail-fast or an emulated kill) before this
    /// scenario could complete.
    Aborted,
}

impl ScenarioFailure {
    /// Short stable class name, used in journal lines and metrics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioFailure::Panic { .. } => "panic",
            ScenarioFailure::Error { .. } => "error",
            ScenarioFailure::Timeout { .. } => "timeout",
            ScenarioFailure::Injected { .. } => "injected",
            ScenarioFailure::Aborted => "aborted",
        }
    }
}

impl fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioFailure::Panic { message } => write!(f, "panic: {message}"),
            ScenarioFailure::Error { message } => write!(f, "error: {message}"),
            ScenarioFailure::Timeout { limit_ms } => {
                write!(f, "timeout: exceeded {limit_ms} ms watchdog")
            }
            ScenarioFailure::Injected { site } => write!(f, "injected: failpoint {site}"),
            ScenarioFailure::Aborted => write!(f, "aborted: run stopped before completion"),
        }
    }
}

/// Per-scenario execution state, as journaled in the run manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioState {
    /// Not yet scheduled (a run that stopped early leaves these).
    Pending,
    /// An attempt is (or was, if the process died) in flight.
    Running,
    /// A report was produced — simulated, cached, or resumed.
    Done,
    /// An attempt failed; a retry is scheduled (non-terminal), or the
    /// run stopped while the scenario was unfinished (terminal).
    Failed,
    /// Every attempt failed; the scenario is out of the run for good.
    Quarantined,
}

impl ScenarioState {
    /// Stable lowercase name used in the manifest and summaries.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioState::Pending => "pending",
            ScenarioState::Running => "running",
            ScenarioState::Done => "done",
            ScenarioState::Failed => "failed",
            ScenarioState::Quarantined => "quarantined",
        }
    }

    /// Parses a manifest state name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "pending" => Some(ScenarioState::Pending),
            "running" => Some(ScenarioState::Running),
            "done" => Some(ScenarioState::Done),
            "failed" => Some(ScenarioState::Failed),
            "quarantined" => Some(ScenarioState::Quarantined),
            _ => None,
        }
    }
}

/// Knobs governing panic isolation, retries, the watchdog, and
/// fail-fast scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardenPolicy {
    /// Retries after the first failed attempt (0 = single attempt).
    pub max_retries: u32,
    /// Base backoff in milliseconds; attempt `k` sleeps
    /// `base * 2^(k-1)` plus a seed-deterministic jitter in
    /// `[0, base)`. Zero disables sleeping entirely (tests, CI).
    pub backoff_base_ms: u64,
    /// Per-scenario wall-clock watchdog: a scenario exceeding this
    /// many milliseconds is marked failed without killing siblings.
    /// `None` disables the watchdog (and its thread-per-attempt cost).
    pub timeout_ms: Option<u64>,
    /// Stop scheduling new scenarios after the first quarantine.
    pub fail_fast: bool,
}

impl HardenPolicy {
    /// Attempts a scenario gets in total under this policy.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The backoff before retrying after failed attempt `attempt`
    /// (1-based), in milliseconds: exponential in the attempt with a
    /// jitter derived from the scenario's content hash — deterministic
    /// for a given (scenario, attempt), uncorrelated across scenarios
    /// so a storm of retries does not thunder in lockstep.
    #[must_use]
    pub fn backoff_ms(&self, scenario_hash: u128, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let shift = u64::from(attempt.saturating_sub(1).min(6));
        let exponential = self.backoff_base_ms.saturating_mul(1 << shift);
        let mut state = (scenario_hash as u64)
            ^ ((scenario_hash >> 64) as u64).rotate_left(31)
            ^ u64::from(attempt);
        let jitter = splitmix64(&mut state) % self.backoff_base_ms;
        exponential.saturating_add(jitter)
    }
}

/// Per-run execution policy: the builder consumed by the fleet
/// engine's single entry point, `FleetEngine::run`.
///
/// A `RunPolicy` absorbs the [`HardenPolicy`] knobs (retries, backoff,
/// watchdog, fail-fast) plus the optional crash-safe [`RunJournal`].
/// Every knob is an *override*: a field left unset inherits the
/// engine's configured [`HardenPolicy`] (see
/// `FleetEngine::with_policy`), so `RunPolicy::new()` runs exactly the
/// way the engine was built to run. The historical panicking contract
/// of the old `run` lives on [`RunOutcome::expect_reports`], not here.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunPolicy<'a> {
    max_retries: Option<u32>,
    backoff_base_ms: Option<u64>,
    timeout_ms: Option<Option<u64>>,
    fail_fast: Option<bool>,
    journal: Option<&'a RunJournal>,
}

impl<'a> RunPolicy<'a> {
    /// A policy that inherits every knob from the engine and attaches
    /// no journal — the drop-in equivalent of the old `run_hardened`
    /// with `journal: None`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides every robustness knob at once from a [`HardenPolicy`].
    #[must_use]
    pub fn harden(mut self, policy: HardenPolicy) -> Self {
        self.max_retries = Some(policy.max_retries);
        self.backoff_base_ms = Some(policy.backoff_base_ms);
        self.timeout_ms = Some(policy.timeout_ms);
        self.fail_fast = Some(policy.fail_fast);
        self
    }

    /// Overrides the retry budget (retries after the first attempt).
    #[must_use]
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.max_retries = Some(max_retries);
        self
    }

    /// Overrides the base backoff between retries, in milliseconds.
    #[must_use]
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = Some(ms);
        self
    }

    /// Overrides the per-scenario watchdog limit, in milliseconds.
    #[must_use]
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(Some(ms));
        self
    }

    /// Disables the watchdog even if the engine configures one.
    #[must_use]
    pub fn no_timeout(mut self) -> Self {
        self.timeout_ms = Some(None);
        self
    }

    /// Overrides fail-fast scheduling (stop after the first
    /// quarantine).
    #[must_use]
    pub fn fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = Some(fail_fast);
        self
    }

    /// Attaches a crash-safe run journal: progress is persisted so an
    /// interrupted run resumes bit-identically.
    #[must_use]
    pub fn journal(mut self, journal: &'a RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// [`RunPolicy::journal`] taking an `Option` — convenient for
    /// callers whose journal is itself optional.
    #[must_use]
    pub fn maybe_journal(mut self, journal: Option<&'a RunJournal>) -> Self {
        self.journal = journal;
        self
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal_ref(&self) -> Option<&'a RunJournal> {
        self.journal
    }

    /// Folds the overrides onto `base` (the engine's configured
    /// policy), producing the effective [`HardenPolicy`] for one run.
    #[must_use]
    pub fn resolve(&self, base: HardenPolicy) -> HardenPolicy {
        HardenPolicy {
            max_retries: self.max_retries.unwrap_or(base.max_retries),
            backoff_base_ms: self.backoff_base_ms.unwrap_or(base.backoff_base_ms),
            timeout_ms: self.timeout_ms.unwrap_or(base.timeout_ms),
            fail_fast: self.fail_fast.unwrap_or(base.fail_fast),
        }
    }
}

/// How a scenario's report was obtained (or why it is absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportSource {
    /// Simulated fresh in this run.
    Simulated,
    /// Replayed from the content-addressed result cache.
    Cache,
    /// Settled from a prior interrupted run's journal store.
    Resumed,
    /// No report: the scenario did not finish.
    None,
}

/// The terminal record for one scenario of a hardened run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Position in the submitted batch.
    pub index: usize,
    /// The scenario's display label.
    pub label: String,
    /// The scenario's content hash (32 hex digits).
    pub hash: String,
    /// Terminal state.
    pub state: ScenarioState,
    /// Attempts consumed (0 when settled without simulating).
    pub attempts: u32,
    /// Where the report came from.
    pub source: ReportSource,
    /// The report, when `state` is [`ScenarioState::Done`].
    pub report: Option<SimReport>,
    /// The terminal failure, when the scenario did not finish.
    pub failure: Option<ScenarioFailure>,
}

/// Per-state tallies of a [`RunOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateCounts {
    /// Scenarios with a report.
    pub done: usize,
    /// Scenarios terminally failed (run stopped mid-flight).
    pub failed: usize,
    /// Scenarios quarantined after exhausting attempts.
    pub quarantined: usize,
    /// Scenarios never scheduled before the run stopped.
    pub pending: usize,
}

/// Everything a hardened batch execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// One outcome per scenario, in submission order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Whether the run stopped early (fail-fast or an emulated kill).
    pub aborted: bool,
}

impl RunOutcome {
    /// Per-state tallies.
    #[must_use]
    pub fn counts(&self) -> StateCounts {
        let mut counts = StateCounts::default();
        for outcome in &self.outcomes {
            match outcome.state {
                ScenarioState::Done => counts.done += 1,
                ScenarioState::Quarantined => counts.quarantined += 1,
                ScenarioState::Pending => counts.pending += 1,
                ScenarioState::Failed | ScenarioState::Running => counts.failed += 1,
            }
        }
        counts
    }

    /// Whether every scenario produced a report.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.outcomes.iter().all(|o| o.state == ScenarioState::Done)
    }

    /// The reports in submission order, if every scenario finished.
    #[must_use]
    pub fn reports(&self) -> Option<Vec<SimReport>> {
        self.outcomes.iter().map(|o| o.report.clone()).collect()
    }

    /// The reports in submission order, panicking on the first
    /// failure — the historical contract of the pre-redesign
    /// `FleetEngine::run`, now an explicit opt-in at the call site.
    ///
    /// # Panics
    ///
    /// Re-raises the first non-`Done` scenario's failure with the same
    /// payload [`heb_core::Scenario::run_expect`] would raise serially:
    /// a worker panic's message verbatim, a typed error as
    /// `scenario "label": message`.
    #[must_use]
    pub fn expect_reports(self) -> Vec<SimReport> {
        if let Some(reports) = self.reports() {
            return reports;
        }
        let mut payload = String::from("fleet run failed");
        for o in &self.outcomes {
            if o.state == ScenarioState::Done {
                continue;
            }
            payload = match &o.failure {
                // A worker panic's payload already carries the
                // `scenario "label": …` format from run_expect.
                Some(ScenarioFailure::Panic { message }) => message.clone(),
                Some(ScenarioFailure::Error { message }) => {
                    format!("scenario {:?}: {message}", o.label)
                }
                Some(failure) => format!("scenario {:?}: {failure}", o.label),
                None => format!("scenario {:?}: did not complete", o.label),
            };
            break;
        }
        // heb-analyze: allow(HEB003, documented re-raise preserving the historical reports-or-panic contract)
        std::panic::resume_unwind(Box::new(payload));
    }

    /// One-line per-state summary, e.g. `12 done, 1 quarantined`.
    #[must_use]
    pub fn summary(&self) -> String {
        let counts = self.counts();
        let mut parts = vec![format!("{} done", counts.done)];
        if counts.failed > 0 {
            parts.push(format!("{} failed", counts.failed));
        }
        if counts.quarantined > 0 {
            parts.push(format!("{} quarantined", counts.quarantined));
        }
        if counts.pending > 0 {
            parts.push(format!("{} pending", counts.pending));
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_exponential() {
        let policy = HardenPolicy {
            max_retries: 3,
            backoff_base_ms: 10,
            ..HardenPolicy::default()
        };
        let hash = 0xdead_beef_cafe_f00d_u128;
        assert_eq!(policy.backoff_ms(hash, 1), policy.backoff_ms(hash, 1));
        for attempt in 1..=8 {
            let b = policy.backoff_ms(hash, attempt);
            let exponential = 10 * (1 << u64::from((attempt - 1).min(6)));
            assert!(
                (exponential..exponential + 10).contains(&b),
                "{attempt}: {b}"
            );
        }
        assert_ne!(
            policy.backoff_ms(hash, 1),
            policy.backoff_ms(hash ^ 1, 1),
            "different scenarios must not thunder in lockstep"
        );
        let silent = HardenPolicy::default();
        assert_eq!(silent.backoff_ms(hash, 1), 0, "base 0 disables sleeping");
    }

    #[test]
    fn state_names_round_trip() {
        for state in [
            ScenarioState::Pending,
            ScenarioState::Running,
            ScenarioState::Done,
            ScenarioState::Failed,
            ScenarioState::Quarantined,
        ] {
            assert_eq!(ScenarioState::parse(state.name()), Some(state));
        }
        assert_eq!(ScenarioState::parse("bogus"), None);
    }

    #[test]
    fn failure_display_names_the_class() {
        let cases: Vec<(ScenarioFailure, &str)> = vec![
            (
                ScenarioFailure::Panic {
                    message: "boom".into(),
                },
                "panic: boom",
            ),
            (ScenarioFailure::Timeout { limit_ms: 250 }, "timeout"),
            (
                ScenarioFailure::Injected {
                    site: "worker.panic".into(),
                },
                "injected",
            ),
            (ScenarioFailure::Aborted, "aborted"),
        ];
        for (failure, needle) in cases {
            assert!(failure.to_string().contains(needle));
            assert!(!failure.kind().is_empty());
        }
    }

    #[test]
    fn run_policy_defaults_inherit_the_base_policy() {
        let base = HardenPolicy {
            max_retries: 3,
            backoff_base_ms: 7,
            timeout_ms: Some(250),
            fail_fast: true,
        };
        assert_eq!(RunPolicy::new().resolve(base), base);
        assert!(RunPolicy::new().journal_ref().is_none());
    }

    #[test]
    fn run_policy_overrides_fold_per_field() {
        let base = HardenPolicy {
            max_retries: 3,
            backoff_base_ms: 7,
            timeout_ms: Some(250),
            fail_fast: true,
        };
        let resolved = RunPolicy::new().retries(0).no_timeout().resolve(base);
        assert_eq!(resolved.max_retries, 0, "overridden");
        assert_eq!(resolved.timeout_ms, None, "watchdog disabled");
        assert_eq!(resolved.backoff_base_ms, 7, "inherited");
        assert!(resolved.fail_fast, "inherited");
        let replaced = HardenPolicy {
            max_retries: 1,
            backoff_base_ms: 0,
            timeout_ms: None,
            fail_fast: false,
        };
        assert_eq!(
            RunPolicy::new()
                .harden(replaced)
                .timeout_ms(9)
                .resolve(base),
            HardenPolicy {
                timeout_ms: Some(9),
                ..replaced
            },
            "harden() replaces every knob, later setters still win"
        );
    }

    #[test]
    fn expect_reports_returns_reports_when_all_done() {
        let run = RunOutcome {
            outcomes: vec![],
            aborted: false,
        };
        assert!(run.expect_reports().is_empty());
    }

    #[test]
    fn expect_reports_re_raises_the_first_failure() {
        let outcome = |label: &str, failure| ScenarioOutcome {
            index: 0,
            label: label.into(),
            hash: "h".into(),
            state: ScenarioState::Quarantined,
            attempts: 1,
            source: ReportSource::None,
            report: None,
            failure: Some(failure),
        };
        let run = RunOutcome {
            outcomes: vec![
                outcome(
                    "h/first",
                    ScenarioFailure::Error {
                        message: "need at least one workload".into(),
                    },
                ),
                outcome("h/second", ScenarioFailure::Aborted),
            ],
            aborted: false,
        };
        let caught = std::panic::catch_unwind(move || run.expect_reports());
        let payload = caught.expect_err("must re-raise");
        let message = payload
            .downcast_ref::<String>()
            .expect("string payload")
            .clone();
        assert_eq!(message, "scenario \"h/first\": need at least one workload");
    }

    #[test]
    fn summary_counts_every_state() {
        let outcome = |state| ScenarioOutcome {
            index: 0,
            label: "l".into(),
            hash: "h".into(),
            state,
            attempts: 1,
            source: ReportSource::None,
            report: None,
            failure: None,
        };
        let run = RunOutcome {
            outcomes: vec![
                outcome(ScenarioState::Done),
                outcome(ScenarioState::Quarantined),
                outcome(ScenarioState::Pending),
                outcome(ScenarioState::Failed),
            ],
            aborted: true,
        };
        let counts = run.counts();
        assert_eq!((counts.done, counts.quarantined), (1, 1));
        assert_eq!((counts.failed, counts.pending), (1, 1));
        assert!(!run.all_done());
        assert!(run.reports().is_none());
        assert_eq!(run.summary(), "1 done, 1 failed, 1 quarantined, 1 pending");
    }
}
