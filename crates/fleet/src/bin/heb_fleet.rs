//! Fleet batch driver: runs every scenario-ised experiment of the
//! evaluation through the parallel engine and the result cache.
//!
//! ```text
//! heb_fleet [--jobs N] [--no-cache] [--cache-dir DIR] [--filter NAME]
//!           [--hours H] [--seed S] [--replicate R] [--metrics]
//!           [--verbose] [--list]
//! ```
//!
//! The second invocation with a warm cache performs zero simulations;
//! `--jobs N` is bit-identical to `--jobs 1` at any worker count.
//! `--metrics` prints per-phase wall-clock timings (probe / simulate /
//! merge) and the per-scenario latency histogram after the batches.

use std::sync::Arc;
use std::time::Instant;

use heb_core::experiments::{
    architecture_scenarios, capacity_growth_scenarios, capacity_ratio_scenarios,
    deployment_scenarios, fault_sweep_scenarios, outage_scenarios, scheme_comparison_scenarios,
    valley_scenarios,
};
use heb_core::{Scenario, SimConfig};
use heb_fleet::{replicate, FleetEngine, MetricSummary, ResultCache};
use heb_telemetry::Metrics;
use heb_units::Watts;

/// One registered experiment: a name and its batch builder.
struct Experiment {
    name: &'static str,
    what: &'static str,
    build: fn(&SimConfig, f64, u64) -> Vec<Scenario>,
}

/// Every scenario-ised experiment, in evaluation order.
const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "schemes",
        what: "Figure 12: six schemes x eight workloads + solar REU",
        build: |base, hours, seed| scheme_comparison_scenarios(base, hours, hours, seed),
    },
    Experiment {
        name: "capacity-ratio",
        what: "Figure 13: SC:battery ratio sweep at constant capacity",
        build: |base, hours, seed| {
            capacity_ratio_scenarios(base, &[1, 2, 3, 4, 5], hours, hours, seed)
        },
    },
    Experiment {
        name: "capacity-growth",
        what: "Figure 14: capacity growth by DoD relaxation at 3:7",
        build: |base, hours, seed| {
            capacity_growth_scenarios(base, &[40, 50, 60, 70, 80], hours, hours, seed)
        },
    },
    Experiment {
        name: "architecture",
        what: "Figure 7: four delivery architectures",
        build: architecture_scenarios,
    },
    Experiment {
        name: "deployment",
        what: "Figure 8: cluster-level vs rack-level deployment",
        build: |base, hours, seed| deployment_scenarios(base, 3, hours, seed),
    },
    Experiment {
        name: "valley",
        what: "Deep-valley surplus absorption per scheme",
        build: |base, hours, seed| {
            valley_scenarios(base, Watts::new(230.0), (hours * 60.0).max(1.0), seed)
        },
    },
    Experiment {
        name: "faults",
        what: "Fault-intensity sweep: shared storms x six schemes",
        build: |base, hours, seed| fault_sweep_scenarios(base, hours, &[0.0, 1.0, 2.0, 4.0], seed),
    },
    Experiment {
        name: "outage",
        what: "Utility-outage ride-through per scheme",
        build: |base, _hours, seed| outage_scenarios(base, 5.0, 30.0, seed),
    },
];

/// Parsed command line.
struct Args {
    jobs: usize,
    cache: bool,
    cache_dir: String,
    filter: Option<String>,
    hours: f64,
    seed: u64,
    replicate: u64,
    metrics: bool,
    verbose: bool,
    list: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        jobs: 1,
        cache: true,
        cache_dir: "results/cache".to_string(),
        filter: None,
        hours: 1.0,
        seed: 42,
        replicate: 1,
        metrics: false,
        verbose: false,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--no-cache" => args.cache = false,
            "--cache-dir" => args.cache_dir = value("--cache-dir")?,
            "--filter" => args.filter = Some(value("--filter")?),
            "--hours" => {
                args.hours = value("--hours")?
                    .parse()
                    .map_err(|e| format!("--hours: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--replicate" => {
                args.replicate = value("--replicate")?
                    .parse()
                    .map_err(|e| format!("--replicate: {e}"))?;
            }
            "--metrics" => args.metrics = true,
            "--verbose" => args.verbose = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: heb_fleet [--jobs N] [--no-cache] [--cache-dir DIR] \
                     [--filter NAME] [--hours H] [--seed S] [--replicate R] \
                     [--metrics] [--verbose] [--list]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.hours <= 0.0 {
        return Err("--hours must be positive".to_string());
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    if args.list {
        for exp in EXPERIMENTS {
            println!("{:16} {}", exp.name, exp.what);
        }
        return;
    }

    let mut engine = FleetEngine::new(args.jobs);
    if args.cache {
        engine = engine.with_cache(ResultCache::new(&args.cache_dir));
    }
    let metrics = args.metrics.then(|| Arc::new(Metrics::new()));
    if let Some(m) = &metrics {
        engine = engine.with_metrics(Arc::clone(m));
    }
    let base = SimConfig::builder().build().unwrap_or_else(|err| {
        eprintln!("invalid base config: {err}");
        std::process::exit(2);
    });

    let selected: Vec<&Experiment> = EXPERIMENTS
        .iter()
        .filter(|e| {
            args.filter
                .as_deref()
                .is_none_or(|needle| e.name.contains(needle))
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "no experiment matches --filter {}; try --list",
            args.filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    println!(
        "heb_fleet: {} experiment(s), jobs={}, cache={}",
        selected.len(),
        engine.jobs(),
        if args.cache {
            args.cache_dir.as_str()
        } else {
            "off"
        }
    );

    let mut grand_scenarios = 0;
    let wall_start = Instant::now();
    for exp in &selected {
        let mut batch = (exp.build)(&base, args.hours, args.seed);
        if args.replicate > 1 {
            batch = batch
                .iter()
                .flat_map(|s| replicate(s, args.replicate))
                .collect();
        }
        let before = engine.stats();
        let start = Instant::now();
        let reports = engine.run(&batch);
        let elapsed = start.elapsed();
        let after = engine.stats();
        grand_scenarios += batch.len();
        println!(
            "{:16} {:4} scenario(s)  {:4} simulated  {:4} cached  {:8.2?}",
            exp.name,
            batch.len(),
            after.simulated - before.simulated,
            after.cache_hits - before.cache_hits,
            elapsed
        );
        if args.verbose {
            for (scenario, report) in batch.iter().zip(&reports) {
                println!(
                    "  {:40} eff {:6.4}  downtime {:8.1} s  [{}]",
                    scenario.label(),
                    report.energy_efficiency().get(),
                    report.server_downtime.get(),
                    &scenario.hash_hex()[..12],
                );
            }
        }
        if args.replicate > 1 {
            // Per base scenario, summarise efficiency across replicas.
            for (chunk_idx, chunk) in reports.chunks(args.replicate as usize).enumerate() {
                let label = batch[chunk_idx * args.replicate as usize].label();
                let base_label = label.rsplit_once("@s").map_or(label, |(l, _)| l);
                if let Some(summary) =
                    MetricSummary::over_reports(chunk, |r| r.energy_efficiency().get())
                {
                    println!(
                        "  {:40} eff mean {:6.4}  p50 {:6.4}  p95 {:6.4}  [n={}]",
                        base_label, summary.mean, summary.p50, summary.p95, summary.n
                    );
                }
            }
        }
    }
    let stats = engine.stats();
    println!(
        "total: {grand_scenarios} scenario(s), {} simulated, {} cache hit(s), {} written, {:.2?} wall",
        stats.simulated,
        stats.cache_hits,
        stats.cache_writes,
        wall_start.elapsed()
    );
    if let Some(metrics) = &metrics {
        println!("--- engine metrics ---");
        print!("{}", metrics.snapshot());
    }
}
