//! Fleet batch driver: runs every scenario-ised experiment of the
//! evaluation through the parallel engine, the result cache, and the
//! execution-robustness layer.
//!
//! ```text
//! heb_fleet [--jobs N] [--no-cache] [--cache-dir DIR] [--filter NAME]
//!           [--hours H] [--seed S] [--replicate R] [--metrics]
//!           [--verbose] [--list]
//!           [--run-id ID] [--resume ID] [--runs-dir DIR] [--no-journal]
//!           [--max-retries N] [--retry-backoff-ms MS] [--timeout-secs S]
//!           [--fail-fast] [--fsync always|batch|never] [--events PATH]
//! ```
//!
//! The second invocation with a warm cache performs zero simulations;
//! `--jobs N` is bit-identical to `--jobs 1` at any worker count.
//! `--list` is a dry run: it enumerates every scenario the selected
//! experiments would execute — one line per scenario with its
//! warm/cold cache status, content hash, experiment, and label —
//! without simulating or writing anything.
//! Every run journals per-scenario progress to
//! `<runs-dir>/<run-id>/manifest.jsonl` (run ids derive from the batch
//! content, so the same arguments name the same run); `--resume ID`
//! skips scenarios the interrupted run already completed and is
//! bit-identical to the uninterrupted run. Exit status is honest: 0
//! only when every scenario produced a report, 1 when any failed, was
//! quarantined, or never ran, 2 on usage errors.
//!
//! Builds with `--features failpoints` additionally accept
//! `--inject SPEC` (e.g. `worker.panic=2,run.abort=5`) for
//! deterministic chaos runs.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use heb_core::experiments::{
    architecture_scenarios, capacity_growth_scenarios, capacity_ratio_scenarios,
    deployment_scenarios, fault_sweep_scenarios, outage_scenarios, scheme_comparison_scenarios,
    valley_scenarios,
};
use heb_core::{Scenario, SimConfig};
#[cfg(feature = "failpoints")]
use heb_fleet::Failpoints;
use heb_fleet::{
    replicate, FleetEngine, FsyncPolicy, HardenPolicy, MetricSummary, ResultCache, RunJournal,
    RunPolicy, StateCounts,
};
use heb_telemetry::{JsonlRecorder, Metrics};
use heb_units::Watts;

/// One registered experiment: a name and its batch builder.
struct Experiment {
    name: &'static str,
    what: &'static str,
    build: fn(&SimConfig, f64, u64) -> Vec<Scenario>,
}

/// Every scenario-ised experiment, in evaluation order.
const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "schemes",
        what: "Figure 12: six schemes x eight workloads + solar REU",
        build: |base, hours, seed| scheme_comparison_scenarios(base, hours, hours, seed),
    },
    Experiment {
        name: "capacity-ratio",
        what: "Figure 13: SC:battery ratio sweep at constant capacity",
        build: |base, hours, seed| {
            capacity_ratio_scenarios(base, &[1, 2, 3, 4, 5], hours, hours, seed)
        },
    },
    Experiment {
        name: "capacity-growth",
        what: "Figure 14: capacity growth by DoD relaxation at 3:7",
        build: |base, hours, seed| {
            capacity_growth_scenarios(base, &[40, 50, 60, 70, 80], hours, hours, seed)
        },
    },
    Experiment {
        name: "architecture",
        what: "Figure 7: four delivery architectures",
        build: architecture_scenarios,
    },
    Experiment {
        name: "deployment",
        what: "Figure 8: cluster-level vs rack-level deployment",
        build: |base, hours, seed| deployment_scenarios(base, 3, hours, seed),
    },
    Experiment {
        name: "valley",
        what: "Deep-valley surplus absorption per scheme",
        build: |base, hours, seed| {
            valley_scenarios(base, Watts::new(230.0), (hours * 60.0).max(1.0), seed)
        },
    },
    Experiment {
        name: "faults",
        what: "Fault-intensity sweep: shared storms x six schemes",
        build: |base, hours, seed| fault_sweep_scenarios(base, hours, &[0.0, 1.0, 2.0, 4.0], seed),
    },
    Experiment {
        name: "outage",
        what: "Utility-outage ride-through per scheme",
        build: |base, _hours, seed| outage_scenarios(base, 5.0, 30.0, seed),
    },
];

/// Parsed command line.
struct Args {
    jobs: usize,
    cache: bool,
    cache_dir: String,
    filter: Option<String>,
    hours: f64,
    seed: u64,
    replicate: u64,
    metrics: bool,
    verbose: bool,
    list: bool,
    run_id: Option<String>,
    resume: Option<String>,
    runs_dir: PathBuf,
    journal: bool,
    max_retries: u32,
    retry_backoff_ms: u64,
    timeout_secs: Option<u64>,
    fail_fast: bool,
    fsync: FsyncPolicy,
    events: Option<PathBuf>,
    inject: Option<String>,
}

const USAGE: &str = "usage: heb_fleet [--jobs N] [--no-cache] [--cache-dir DIR] \
     [--filter NAME] [--hours H] [--seed S] [--replicate R] \
     [--metrics] [--verbose] [--list] [--run-id ID] [--resume ID] \
     [--runs-dir DIR] [--no-journal] [--max-retries N] \
     [--retry-backoff-ms MS] [--timeout-secs S] [--fail-fast] \
     [--fsync always|batch|never] [--events PATH] [--inject SPEC]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        jobs: 1,
        cache: true,
        cache_dir: "results/cache".to_string(),
        filter: None,
        hours: 1.0,
        seed: 42,
        replicate: 1,
        metrics: false,
        verbose: false,
        list: false,
        run_id: None,
        resume: None,
        runs_dir: PathBuf::from("results/runs"),
        journal: true,
        max_retries: 1,
        retry_backoff_ms: 0,
        timeout_secs: None,
        fail_fast: false,
        fsync: FsyncPolicy::Batch,
        events: None,
        inject: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--no-cache" => args.cache = false,
            "--cache-dir" => args.cache_dir = value("--cache-dir")?,
            "--filter" => args.filter = Some(value("--filter")?),
            "--hours" => {
                args.hours = value("--hours")?
                    .parse()
                    .map_err(|e| format!("--hours: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--replicate" => {
                args.replicate = value("--replicate")?
                    .parse()
                    .map_err(|e| format!("--replicate: {e}"))?;
            }
            "--metrics" => args.metrics = true,
            "--verbose" => args.verbose = true,
            "--list" => args.list = true,
            "--run-id" => args.run_id = Some(value("--run-id")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--runs-dir" => args.runs_dir = PathBuf::from(value("--runs-dir")?),
            "--no-journal" => args.journal = false,
            "--max-retries" => {
                args.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--retry-backoff-ms" => {
                args.retry_backoff_ms = value("--retry-backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-backoff-ms: {e}"))?;
            }
            "--timeout-secs" => {
                let secs: u64 = value("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?;
                if secs == 0 {
                    return Err("--timeout-secs must be positive".to_string());
                }
                args.timeout_secs = Some(secs);
            }
            "--fail-fast" => args.fail_fast = true,
            "--fsync" => {
                let name = value("--fsync")?;
                args.fsync = FsyncPolicy::parse(&name)
                    .ok_or_else(|| format!("--fsync: unknown policy {name:?}"))?;
            }
            "--events" => args.events = Some(PathBuf::from(value("--events")?)),
            "--inject" => args.inject = Some(value("--inject")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.hours <= 0.0 {
        return Err("--hours must be positive".to_string());
    }
    if args.run_id.is_some() && args.resume.is_some() {
        return Err("--run-id and --resume are mutually exclusive".to_string());
    }
    if args.resume.is_some() && !args.journal {
        return Err("--resume needs the journal; drop --no-journal".to_string());
    }
    if args.inject.is_some() && cfg!(not(feature = "failpoints")) {
        return Err("--inject requires a build with --features failpoints".to_string());
    }
    Ok(args)
}

/// Derives a deterministic run id from the batch content: FNV-1a over
/// every scenario hash, so the same arguments always name the same run
/// and `--resume` needs no wall-clock identifiers.
fn derive_run_id(batches: &[(&Experiment, Vec<Scenario>)]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (_, batch) in batches {
        for scenario in batch {
            for byte in scenario.hash_hex().bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    format!("{h:016x}")
}

/// Picks a fresh (non-colliding) run id, suffixing `-2`, `-3`, … when
/// a prior run already used the derived id.
fn fresh_run_id(runs_dir: &Path, base: &str) -> String {
    if !runs_dir.join(base).exists() {
        return base.to_string();
    }
    let mut n: u64 = 2;
    loop {
        let candidate = format!("{base}-{n}");
        if !runs_dir.join(&candidate).exists() {
            return candidate;
        }
        n += 1;
    }
}

fn main() {
    let code = fleet_main();
    if code != 0 {
        std::process::exit(code);
    }
}

#[allow(clippy::too_many_lines)]
fn fleet_main() -> i32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return 2;
        }
    };

    let base = match SimConfig::builder().build() {
        Ok(base) => base,
        Err(err) => {
            eprintln!("invalid base config: {err}");
            return 2;
        }
    };

    let selected: Vec<&Experiment> = EXPERIMENTS
        .iter()
        .filter(|e| {
            args.filter
                .as_deref()
                .is_none_or(|needle| e.name.contains(needle))
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "no experiment matches --filter {}; try --list",
            args.filter.as_deref().unwrap_or("")
        );
        return 2;
    }

    // Build every batch up front so the run id covers the whole run
    // and a resume settles scenarios from any experiment.
    let batches: Vec<(&Experiment, Vec<Scenario>)> = selected
        .iter()
        .map(|exp| {
            let mut batch = (exp.build)(&base, args.hours, args.seed);
            if args.replicate > 1 {
                batch = batch
                    .iter()
                    .flat_map(|s| replicate(s, args.replicate))
                    .collect();
            }
            (*exp, batch)
        })
        .collect();

    // Dry-run enumeration: every scenario the run *would* execute,
    // with its content hash and cache status. Nothing is simulated and
    // nothing is written, so this is safe to point at a live cache.
    if args.list {
        let cache = args.cache.then(|| ResultCache::new(&args.cache_dir));
        let (mut total, mut warm, mut servers) = (0usize, 0usize, 0usize);
        for (exp, batch) in &batches {
            eprintln!("# {:16} {}", exp.name, exp.what);
            for scenario in batch {
                let status = match &cache {
                    Some(cache) if cache.probe(scenario) => {
                        warm += 1;
                        "warm"
                    }
                    Some(_) => "cold",
                    None => "off",
                };
                total += 1;
                servers += scenario.servers();
                println!(
                    "{status:4}  {}  {:16}  {:>7}  {}",
                    scenario.hash_hex(),
                    exp.name,
                    scenario.servers(),
                    scenario.label()
                );
            }
        }
        if cache.is_some() {
            eprintln!(
                "{total} scenario(s) over {servers} server(s): {warm} warm, {} cold",
                total - warm
            );
        } else {
            eprintln!("{total} scenario(s) over {servers} server(s), cache disabled");
        }
        return 0;
    }

    #[cfg(feature = "failpoints")]
    let failpoints = match args.inject.as_deref().map(Failpoints::parse) {
        None => None,
        Some(Ok(fp)) => Some(Arc::new(fp)),
        Some(Err(why)) => {
            eprintln!("--inject: {why}");
            return 2;
        }
    };

    let journal = if args.journal {
        let journal = if let Some(id) = &args.resume {
            RunJournal::resume(&args.runs_dir, id, args.fsync)
        } else {
            let base_id = args
                .run_id
                .clone()
                .unwrap_or_else(|| derive_run_id(&batches));
            let id = if args.run_id.is_some() {
                base_id
            } else {
                fresh_run_id(&args.runs_dir, &base_id)
            };
            RunJournal::create(&args.runs_dir, &id, args.fsync)
        };
        match journal {
            Ok(journal) => {
                #[cfg(feature = "failpoints")]
                let journal = match &failpoints {
                    Some(fp) => journal.with_failpoints(Arc::clone(fp)),
                    None => journal,
                };
                Some(journal)
            }
            Err(err) => {
                if args.resume.is_some() {
                    eprintln!("--resume: {err}");
                    return 2;
                }
                // A fresh run without a journal is degraded, not dead.
                eprintln!("warning: journal disabled ({err})");
                None
            }
        }
    } else {
        None
    };

    let mut engine = FleetEngine::new(args.jobs).with_policy(HardenPolicy {
        max_retries: args.max_retries,
        backoff_base_ms: args.retry_backoff_ms,
        timeout_ms: args.timeout_secs.map(|s| s.saturating_mul(1000)),
        fail_fast: args.fail_fast,
    });
    if args.cache {
        engine = engine.with_cache(ResultCache::new(&args.cache_dir));
    }
    let metrics = args.metrics.then(|| Arc::new(Metrics::new()));
    if let Some(m) = &metrics {
        engine = engine.with_metrics(Arc::clone(m));
    }
    if let Some(path) = &args.events {
        match JsonlRecorder::create(path) {
            Ok(recorder) => engine = engine.with_recorder(Arc::new(recorder)),
            Err(err) => {
                eprintln!("--events {}: {err}", path.display());
                return 2;
            }
        }
    }
    #[cfg(feature = "failpoints")]
    if let Some(fp) = &failpoints {
        engine = engine.with_failpoints(Arc::clone(fp));
    }

    println!(
        "heb_fleet: {} experiment(s), jobs={}, cache={}, run={}",
        batches.len(),
        engine.jobs(),
        if args.cache {
            args.cache_dir.as_str()
        } else {
            "off"
        },
        journal.as_ref().map_or("<no journal>", RunJournal::run_id)
    );

    let mut totals = StateCounts::default();
    let mut aborted = false;
    let mut grand_scenarios = 0;
    let wall_start = Instant::now();
    for (exp, batch) in &batches {
        if aborted {
            // A fail-fast abort (or emulated kill) stops scheduling;
            // later experiments count as pending, honestly.
            totals.pending += batch.len();
            grand_scenarios += batch.len();
            println!(
                "{:16} {:4} scenario(s)  skipped (run aborted)",
                exp.name,
                batch.len()
            );
            continue;
        }
        let before = engine.stats();
        let start = Instant::now();
        let outcome = engine.run(batch, &RunPolicy::new().maybe_journal(journal.as_ref()));
        let elapsed = start.elapsed();
        let after = engine.stats();
        grand_scenarios += batch.len();
        let counts = outcome.counts();
        totals.done += counts.done;
        totals.failed += counts.failed;
        totals.quarantined += counts.quarantined;
        totals.pending += counts.pending;
        aborted = aborted || outcome.aborted;
        let mut trouble = String::new();
        if counts.quarantined > 0 {
            trouble.push_str(&format!("  [{} quarantined]", counts.quarantined));
        }
        if counts.pending + counts.failed > 0 {
            trouble.push_str(&format!(
                "  [{} unfinished]",
                counts.pending + counts.failed
            ));
        }
        println!(
            "{:16} {:4} scenario(s)  {:4} simulated  {:4} cached  {:8.2?}{trouble}",
            exp.name,
            batch.len(),
            after.simulated - before.simulated,
            after.cache_hits - before.cache_hits,
            elapsed,
        );
        if args.verbose {
            for o in &outcome.outcomes {
                match &o.report {
                    Some(report) => println!(
                        "  {:40} eff {:6.4}  downtime {:8.1} s  [{}]",
                        o.label,
                        report.energy_efficiency().get(),
                        report.server_downtime.get(),
                        &o.hash[..12],
                    ),
                    None => println!(
                        "  {:40} {}  [{}]",
                        o.label,
                        o.failure
                            .as_ref()
                            .map_or_else(|| o.state.name().to_string(), ToString::to_string),
                        &o.hash[..12],
                    ),
                }
            }
        }
        if args.replicate > 1 {
            // Per base scenario, summarise efficiency across replicas.
            for (chunk_idx, chunk) in outcome.outcomes.chunks(args.replicate as usize).enumerate() {
                let label = &batch[chunk_idx * args.replicate as usize].label();
                let base_label = label.rsplit_once("@s").map_or(&label[..], |(l, _)| l);
                let reports: Vec<_> = chunk.iter().filter_map(|o| o.report.clone()).collect();
                if let Some(summary) =
                    MetricSummary::over_reports(&reports, |r| r.energy_efficiency().get())
                {
                    println!(
                        "  {:40} eff mean {:6.4}  p50 {:6.4}  p95 {:6.4}  [n={}]",
                        base_label, summary.mean, summary.p50, summary.p95, summary.n
                    );
                }
            }
        }
    }
    let stats = engine.stats();
    let mut state_summary = format!("{} done", totals.done);
    if totals.failed > 0 {
        state_summary.push_str(&format!(", {} failed", totals.failed));
    }
    if totals.quarantined > 0 {
        state_summary.push_str(&format!(", {} quarantined", totals.quarantined));
    }
    if totals.pending > 0 {
        state_summary.push_str(&format!(", {} pending", totals.pending));
    }
    println!(
        "total: {grand_scenarios} scenario(s), {} simulated ({} server(s)), {} cache hit(s), {} written, {:.2?} wall",
        stats.simulated,
        stats.servers_simulated,
        stats.cache_hits,
        stats.cache_writes,
        wall_start.elapsed()
    );
    println!(
        "run {}: {state_summary}{}",
        journal.as_ref().map_or("<no journal>", RunJournal::run_id),
        if aborted { " (aborted)" } else { "" }
    );
    if stats.resumed > 0 {
        println!(
            "resumed: {} scenario(s) settled from the prior run's journal",
            stats.resumed
        );
    }
    if let Some(journal) = &journal {
        if !journal.healthy() {
            eprintln!(
                "warning: journal went unhealthy; {} is incomplete (results unaffected)",
                journal.dir().join(heb_fleet::MANIFEST_FILE).display()
            );
        }
    }
    if args.metrics {
        println!(
            "cache: mode={}, tmp_reclaimed={}, retries={}, quarantined={}",
            stats.cache_mode.name(),
            stats.tmp_reclaimed,
            stats.retries,
            stats.quarantined
        );
        if let Some(metrics) = &metrics {
            println!("--- engine metrics ---");
            print!("{}", metrics.snapshot());
        }
    }
    let all_done = totals.failed == 0
        && totals.quarantined == 0
        && totals.pending == 0
        && totals.done == grand_scenarios;
    i32::from(!all_done || aborted)
}
