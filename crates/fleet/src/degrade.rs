//! Graceful degradation wrapper around the result cache.
//!
//! The ladder (DESIGN §9): a healthy cache serves reads and writes
//! (`read-write`). The first *hard* write failure — disk full,
//! permission denied, read-only filesystem — drops it to `read-only`:
//! existing entries keep serving, nothing new is persisted, and the run
//! continues instead of erroring. Repeated read failures (unreadable or
//! corrupt entries) then drop it to `disabled`: every probe is a miss
//! and the engine simulates everything. Transitions are one-way within
//! a run, counted, and drained by the engine as typed
//! `CacheDegraded` telemetry events.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use heb_core::{Scenario, SimReport};

use crate::cache::{CacheReadError, ResultCache};
use crate::failpoint::{site, Failpoints};

/// Read failures tolerated before the cache is disabled outright.
const READ_FAILURE_LIMIT: u32 = 3;

/// The cache's current service level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Reads and writes both served.
    #[default]
    ReadWrite,
    /// Reads served; writes skipped (storage is failing writes).
    ReadOnly,
    /// Cache out of the loop entirely; every probe is a miss.
    Disabled,
}

impl CacheMode {
    /// Stable lowercase name (`read-write` / `read-only` / `disabled`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CacheMode::ReadWrite => "read-write",
            CacheMode::ReadOnly => "read-only",
            CacheMode::Disabled => "disabled",
        }
    }

    fn rank(self) -> u8 {
        match self {
            CacheMode::ReadWrite => 0,
            CacheMode::ReadOnly => 1,
            CacheMode::Disabled => 2,
        }
    }

    fn from_rank(rank: u8) -> Self {
        match rank {
            0 => CacheMode::ReadWrite,
            1 => CacheMode::ReadOnly,
            _ => CacheMode::Disabled,
        }
    }
}

/// One downward mode transition, for telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The mode the cache dropped to.
    pub to: CacheMode,
    /// The classified failure that forced the drop.
    pub reason: String,
}

/// A [`ResultCache`] that degrades instead of failing the run.
#[derive(Debug)]
pub struct DegradableCache {
    inner: ResultCache,
    mode: AtomicU8,
    read_failures: AtomicU32,
    write_skips: AtomicU32,
    tmp_reclaimed: usize,
    transitions: Mutex<Vec<Degradation>>,
    failpoints: Option<Arc<Failpoints>>,
}

impl DegradableCache {
    /// Wraps `inner`, sweeping temp files orphaned by crashed runs
    /// (the count is surfaced via [`DegradableCache::tmp_reclaimed`]).
    #[must_use]
    pub fn open(inner: ResultCache) -> Self {
        let tmp_reclaimed = inner.sweep_stale_tmp();
        Self {
            inner,
            mode: AtomicU8::new(CacheMode::ReadWrite.rank()),
            read_failures: AtomicU32::new(0),
            write_skips: AtomicU32::new(0),
            tmp_reclaimed,
            transitions: Mutex::new(Vec::new()),
            failpoints: None,
        }
    }

    /// Attaches a failpoint set whose `cache.*` sites inject read and
    /// write failures ahead of the real filesystem.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> Self {
        self.failpoints = Some(failpoints);
        self
    }

    /// The wrapped cache.
    #[must_use]
    pub fn inner(&self) -> &ResultCache {
        &self.inner
    }

    /// The current service level.
    #[must_use]
    pub fn mode(&self) -> CacheMode {
        CacheMode::from_rank(self.mode.load(Ordering::Relaxed))
    }

    /// Temp files reclaimed when the cache was opened.
    #[must_use]
    pub fn tmp_reclaimed(&self) -> usize {
        self.tmp_reclaimed
    }

    /// Writes skipped because the cache was no longer writable.
    #[must_use]
    pub fn write_skips(&self) -> u32 {
        self.write_skips.load(Ordering::Relaxed)
    }

    /// Loads `scenario`'s entry; every failure degrades to a miss while
    /// counting toward the disable threshold.
    #[must_use]
    pub fn load(&self, scenario: &Scenario) -> Option<SimReport> {
        if self.mode() == CacheMode::Disabled {
            return None;
        }
        if let Some(fp) = &self.failpoints {
            if fp.fires(site::CACHE_LOAD_IO) {
                self.note_read_failure("injected I/O read error");
                return None;
            }
            if fp.fires(site::CACHE_LOAD_CORRUPT) {
                self.note_read_failure("injected corrupt entry");
                return None;
            }
        }
        match self.inner.try_load(scenario) {
            Ok(hit) => hit,
            Err(CacheReadError::Corrupt) => {
                self.note_read_failure("corrupt cache entry");
                None
            }
            Err(CacheReadError::Io(kind)) => {
                self.note_read_failure(&format!("cache read failed: {kind}"));
                None
            }
        }
    }

    /// Stores a fresh result, returning whether it was persisted. Hard
    /// storage failures drop the cache to read-only; softer errors are
    /// retried on later stores until a small budget runs out.
    pub fn store(&self, scenario: &Scenario, report: &SimReport) -> bool {
        if self.mode() != CacheMode::ReadWrite {
            self.write_skips.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if let Some(fp) = &self.failpoints {
            if fp.fires(site::CACHE_STORE_FULL) {
                self.degrade_to(CacheMode::ReadOnly, "injected ENOSPC on cache write");
                return false;
            }
        }
        match self.inner.store(scenario, report) {
            Ok(()) => true,
            Err(err) => {
                if is_hard_write_error(&err) {
                    self.degrade_to(
                        CacheMode::ReadOnly,
                        &format!("cache write failed hard: {err}"),
                    );
                }
                false
            }
        }
    }

    /// Drains the mode transitions recorded since the last call, in
    /// order — the engine converts these to `CacheDegraded` events.
    #[must_use]
    pub fn drain_transitions(&self) -> Vec<Degradation> {
        let mut guard = self
            .transitions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *guard)
    }

    fn note_read_failure(&self, reason: &str) {
        let seen = self.read_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= READ_FAILURE_LIMIT {
            self.degrade_to(
                CacheMode::Disabled,
                &format!("{reason} ({seen} read failures)"),
            );
        }
    }

    fn degrade_to(&self, to: CacheMode, reason: &str) {
        let previous = self.mode.fetch_max(to.rank(), Ordering::Relaxed);
        if previous >= to.rank() {
            return;
        }
        let mut guard = self
            .transitions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.push(Degradation {
            to,
            reason: reason.to_string(),
        });
    }
}

/// Whether a write error means the storage itself is unusable (degrade
/// to read-only) rather than one entry being unlucky (skip and retry
/// on the next store).
fn is_hard_write_error(err: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(
        err.kind(),
        ErrorKind::StorageFull
            | ErrorKind::PermissionDenied
            | ErrorKind::ReadOnlyFilesystem
            | ErrorKind::QuotaExceeded
            | ErrorKind::NotADirectory
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::SimConfig;
    use heb_workload::Archetype;
    use std::fs;

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(
            format!("degrade-test/{seed}"),
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            0.05,
            seed,
        )
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("heb-degrade-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn healthy_cache_round_trips_in_read_write_mode() {
        let cache = DegradableCache::open(ResultCache::new(temp_root("healthy")));
        let s = scenario(1);
        let report = s.run_expect();
        assert!(cache.load(&s).is_none());
        assert!(cache.store(&s, &report));
        assert_eq!(cache.load(&s), Some(report));
        assert_eq!(cache.mode(), CacheMode::ReadWrite);
        assert!(cache.drain_transitions().is_empty());
    }

    #[test]
    fn unwritable_root_degrades_to_read_only_not_an_error() {
        // The cache root is a *file*, so create_dir_all fails with
        // NotADirectory on every store — a hard storage failure.
        let root = temp_root("unwritable");
        fs::write(&root, "in the way").unwrap();
        let cache = DegradableCache::open(ResultCache::new(&root));
        let s = scenario(2);
        let report = s.run_expect();
        assert!(!cache.store(&s, &report));
        assert_eq!(cache.mode(), CacheMode::ReadOnly);
        let transitions = cache.drain_transitions();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].to, CacheMode::ReadOnly);
        // Later stores are skipped silently, and drained only once.
        assert!(!cache.store(&s, &report));
        assert_eq!(cache.write_skips(), 1);
        assert!(cache.drain_transitions().is_empty());
        let _ = fs::remove_file(&root);
    }

    #[test]
    fn repeated_corruption_disables_the_cache() {
        let cache = DegradableCache::open(ResultCache::new(temp_root("corrupt")));
        let s = scenario(3);
        cache.store(&s, &s.run_expect());
        fs::write(cache.inner().entry_path(&s), "garbage").unwrap();
        for _ in 0..READ_FAILURE_LIMIT {
            assert!(cache.load(&s).is_none(), "corrupt entry degrades to miss");
        }
        assert_eq!(cache.mode(), CacheMode::Disabled);
        let transitions = cache.drain_transitions();
        assert_eq!(transitions.last().map(|t| t.to), Some(CacheMode::Disabled));
        // Disabled: probes miss without touching the filesystem.
        assert!(cache.load(&s).is_none());
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files() {
        let inner = ResultCache::new(temp_root("tmp-sweep"));
        let s = scenario(4);
        inner.store(&s, &s.run_expect()).unwrap();
        fs::write(inner.dir().join("feed.tmp.1.2"), "orphan").unwrap();
        let cache = DegradableCache::open(inner);
        assert_eq!(cache.tmp_reclaimed(), 1);
        assert_eq!(cache.load(&s), Some(s.run_expect()));
    }
}
