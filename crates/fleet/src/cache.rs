//! Content-addressed on-disk result cache.
//!
//! Every cache entry is one [`Scenario`]'s [`SimReport`], stored under
//! the scenario's 128-bit content hash in an engine-versioned
//! directory:
//!
//! ```text
//! <root>/v<ENGINE_VERSION>/<32-hex-digit hash>.report
//! ```
//!
//! The entry embeds the scenario hash again in its header, so a file
//! renamed or copied to the wrong key is rejected rather than replayed.
//! Every failure mode — missing file, truncated write, corrupt header,
//! malformed report — degrades to a cache *miss*; the engine then
//! simulates and rewrites the entry. Writes go through a temp file and
//! an atomic rename so a crashed run can never leave a half-written
//! entry behind.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use heb_core::{Scenario, SimReport};

/// Version of the simulation engine the cached reports were produced
/// by. Bump whenever a change to the simulator (or the report codec)
/// alters what a scenario's run produces: old entries then live in a
/// different directory and are simply never consulted again.
pub const ENGINE_VERSION: u32 = 1;

/// Header line opening every cache entry.
const MAGIC: &str = "heb-cache v1";

/// Distinguishes concurrent writers of temp files within one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed store of simulation reports.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (without touching the filesystem) a cache rooted at
    /// `root`; entries live in the engine-versioned subdirectory.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            dir: root.into().join(format!("v{ENGINE_VERSION}")),
        }
    }

    /// The engine-versioned directory entries are stored in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a scenario's entry lives at.
    #[must_use]
    pub fn entry_path(&self, scenario: &Scenario) -> PathBuf {
        self.dir.join(format!("{}.report", scenario.hash_hex()))
    }

    /// Loads the cached report for `scenario`, or `None` on any miss
    /// (absent, truncated, corrupt, or keyed to a different scenario).
    #[must_use]
    pub fn load(&self, scenario: &Scenario) -> Option<SimReport> {
        let body = fs::read_to_string(self.entry_path(scenario)).ok()?;
        let mut lines = body.splitn(3, '\n');
        if lines.next()? != MAGIC {
            return None;
        }
        let keyed_to = lines.next()?.strip_prefix("scenario = ")?;
        if keyed_to != scenario.hash_hex() {
            return None;
        }
        SimReport::from_record(lines.next()?).ok()
    }

    /// Stores `report` as the result of `scenario`. Best-effort: I/O
    /// errors are reported but never corrupt an existing entry, because
    /// the entry is written to a temp file first and renamed into
    /// place atomically.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, which callers may ignore —
    /// a failed store only costs a future re-simulation.
    pub fn store(&self, scenario: &Scenario, report: &SimReport) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = format!(
            "{MAGIC}\nscenario = {}\n{}",
            scenario.hash_hex(),
            report.to_record()
        );
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            scenario.hash_hex(),
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, body)?;
        let result = fs::rename(&tmp, self.entry_path(scenario));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Removes `scenario`'s entry if present. Used by tests and by
    /// `--no-cache` runs that want to invalidate a stale result.
    pub fn evict(&self, scenario: &Scenario) {
        let _ = fs::remove_file(self.entry_path(scenario));
    }

    /// Number of entries currently on disk (non-recursive).
    #[must_use]
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "report"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache directory holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::SimConfig;
    use heb_workload::Archetype;

    fn temp_cache(tag: &str) -> ResultCache {
        let root =
            std::env::temp_dir().join(format!("heb-fleet-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        ResultCache::new(root)
    }

    fn scenario() -> Scenario {
        Scenario::new(
            "cache-test",
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            0.05,
            7,
        )
    }

    #[test]
    fn round_trips_bit_exactly() {
        let cache = temp_cache("round-trip");
        let s = scenario();
        assert!(cache.load(&s).is_none(), "cold cache must miss");
        let report = s.run_expect();
        cache.store(&s, &report).unwrap();
        let replayed = cache.load(&s).expect("warm cache must hit");
        assert_eq!(replayed, report);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn rejects_entry_keyed_to_a_different_scenario() {
        let cache = temp_cache("wrong-key");
        let s = scenario();
        let other = s.clone().with_seed(8);
        let report = s.run_expect();
        cache.store(&s, &report).unwrap();
        // Copy the entry under the other scenario's key, as a buggy
        // sync tool might.
        fs::copy(cache.entry_path(&s), cache.entry_path(&other)).unwrap();
        assert!(
            cache.load(&other).is_none(),
            "embedded hash must reject a transplanted entry"
        );
    }

    #[test]
    fn corruption_degrades_to_a_miss() {
        let cache = temp_cache("corrupt");
        let s = scenario();
        cache.store(&s, &s.run_expect()).unwrap();
        let path = cache.entry_path(&s);
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, &body[..body.len() / 2]).unwrap();
        assert!(cache.load(&s).is_none(), "truncated entry must miss");
        fs::write(&path, "not a cache entry at all").unwrap();
        assert!(cache.load(&s).is_none(), "garbage entry must miss");
    }

    #[test]
    fn evict_removes_the_entry() {
        let cache = temp_cache("evict");
        let s = scenario();
        cache.store(&s, &s.run_expect()).unwrap();
        assert!(!cache.is_empty());
        cache.evict(&s);
        assert!(cache.load(&s).is_none());
        assert!(cache.is_empty());
    }
}
