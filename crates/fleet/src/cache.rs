//! Content-addressed on-disk result cache.
//!
//! Every cache entry is one [`Scenario`]'s [`SimReport`], stored under
//! the scenario's 128-bit content hash in an engine-versioned
//! directory:
//!
//! ```text
//! <root>/v<ENGINE_VERSION>/<32-hex-digit hash>.report
//! ```
//!
//! The entry embeds the scenario hash again in its header, so a file
//! renamed or copied to the wrong key is rejected rather than replayed.
//! Every failure mode — missing file, truncated write, corrupt header,
//! malformed report — degrades to a cache *miss*; the engine then
//! simulates and rewrites the entry. Writes go through a temp file and
//! an atomic rename so a crashed run can never leave a half-written
//! entry behind.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use heb_core::{Scenario, SimReport};

/// Version of the simulation engine the cached reports were produced
/// by. Bump whenever a change to the simulator (or the report codec)
/// alters what a scenario's run produces: old entries then live in a
/// different directory and are simply never consulted again.
pub const ENGINE_VERSION: u32 = 1;

/// Header line opening every cache entry.
const MAGIC: &str = "heb-cache v1";

/// Distinguishes concurrent writers of temp files within one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Why a cache read produced no usable entry (beyond a plain miss).
///
/// [`ResultCache::load`] folds every failure into a miss; the
/// degradation layer uses [`ResultCache::try_load`] instead so it can
/// tell a healthy miss from a cache directory that is actively failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheReadError {
    /// The entry exists but could not be read (permissions, I/O).
    Io(std::io::ErrorKind),
    /// The entry was read but is not a valid report for this scenario
    /// (bad magic, transplanted key, truncated or garbage body).
    Corrupt,
}

impl std::fmt::Display for CacheReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheReadError::Io(kind) => write!(f, "cache read failed: {kind}"),
            CacheReadError::Corrupt => write!(f, "cache entry corrupt"),
        }
    }
}

/// A content-addressed store of simulation reports.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (without touching the filesystem) a cache rooted at
    /// `root`; entries live in the engine-versioned subdirectory.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            dir: root.into().join(format!("v{ENGINE_VERSION}")),
        }
    }

    /// The engine-versioned directory entries are stored in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a scenario's entry lives at.
    #[must_use]
    pub fn entry_path(&self, scenario: &Scenario) -> PathBuf {
        self.dir.join(format!("{}.report", scenario.hash_hex()))
    }

    /// Loads the cached report for `scenario`, or `None` on any miss
    /// (absent, truncated, corrupt, or keyed to a different scenario).
    #[must_use]
    pub fn load(&self, scenario: &Scenario) -> Option<SimReport> {
        self.try_load(scenario).ok().flatten()
    }

    /// Loads the cached report for `scenario`, distinguishing a healthy
    /// miss (`Ok(None)`) from a failing cache.
    ///
    /// # Errors
    ///
    /// [`CacheReadError::Io`] when the entry exists but cannot be read;
    /// [`CacheReadError::Corrupt`] when it reads but does not decode to
    /// a report keyed to this scenario. Both are safe to treat as a
    /// miss — the caller re-simulates — but let the degradation layer
    /// count genuine failures.
    pub fn try_load(&self, scenario: &Scenario) -> Result<Option<SimReport>, CacheReadError> {
        let body = match fs::read_to_string(self.entry_path(scenario)) {
            Ok(body) => body,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(CacheReadError::Io(err.kind())),
        };
        let mut lines = body.splitn(3, '\n');
        if lines.next() != Some(MAGIC) {
            return Err(CacheReadError::Corrupt);
        }
        let keyed_to = lines
            .next()
            .and_then(|line| line.strip_prefix("scenario = "))
            .ok_or(CacheReadError::Corrupt)?;
        if keyed_to != scenario.hash_hex() {
            return Err(CacheReadError::Corrupt);
        }
        let record = lines.next().ok_or(CacheReadError::Corrupt)?;
        SimReport::from_record(record)
            .map(Some)
            .map_err(|_| CacheReadError::Corrupt)
    }

    /// Whether `scenario` has a *valid* warm entry: the entry exists,
    /// decodes, and is keyed to this scenario. A dry-run probe for
    /// `heb_fleet --list` and the capacity-advisor service — it never
    /// simulates and never writes.
    #[must_use]
    pub fn probe(&self, scenario: &Scenario) -> bool {
        matches!(self.try_load(scenario), Ok(Some(_)))
    }

    /// Removes temp files left behind in the cache directory by
    /// crashed runs, returning how many were reclaimed.
    ///
    /// The temp-file-then-rename write scheme ([`ResultCache::store`])
    /// cleans up after itself on every path except a process that dies
    /// between the write and the rename; those orphans would otherwise
    /// accumulate forever. Called when the engine attaches a cache.
    /// A temp file belonging to a *concurrently writing* process is
    /// also swept — that writer's rename then fails and it re-cleans;
    /// the cost is one lost cache write, never a corrupt entry.
    pub fn sweep_stale_tmp(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut reclaimed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp."));
            if is_tmp && fs::remove_file(&path).is_ok() {
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Stores `report` as the result of `scenario`. Best-effort: I/O
    /// errors are reported but never corrupt an existing entry, because
    /// the entry is written to a temp file first and renamed into
    /// place atomically.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, which callers may ignore —
    /// a failed store only costs a future re-simulation.
    pub fn store(&self, scenario: &Scenario, report: &SimReport) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = format!(
            "{MAGIC}\nscenario = {}\n{}",
            scenario.hash_hex(),
            report.to_record()
        );
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            scenario.hash_hex(),
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, body)?;
        let result = fs::rename(&tmp, self.entry_path(scenario));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Removes `scenario`'s entry if present. Used by tests and by
    /// `--no-cache` runs that want to invalidate a stale result.
    pub fn evict(&self, scenario: &Scenario) {
        let _ = fs::remove_file(self.entry_path(scenario));
    }

    /// Number of entries currently on disk (non-recursive).
    #[must_use]
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "report"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache directory holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::SimConfig;
    use heb_workload::Archetype;

    fn temp_cache(tag: &str) -> ResultCache {
        let root =
            std::env::temp_dir().join(format!("heb-fleet-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        ResultCache::new(root)
    }

    fn scenario() -> Scenario {
        Scenario::new(
            "cache-test",
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            0.05,
            7,
        )
    }

    #[test]
    fn round_trips_bit_exactly() {
        let cache = temp_cache("round-trip");
        let s = scenario();
        assert!(cache.load(&s).is_none(), "cold cache must miss");
        let report = s.run_expect();
        cache.store(&s, &report).unwrap();
        let replayed = cache.load(&s).expect("warm cache must hit");
        assert_eq!(replayed, report);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn rejects_entry_keyed_to_a_different_scenario() {
        let cache = temp_cache("wrong-key");
        let s = scenario();
        let other = s.clone().with_seed(8);
        let report = s.run_expect();
        cache.store(&s, &report).unwrap();
        // Copy the entry under the other scenario's key, as a buggy
        // sync tool might.
        fs::copy(cache.entry_path(&s), cache.entry_path(&other)).unwrap();
        assert!(
            cache.load(&other).is_none(),
            "embedded hash must reject a transplanted entry"
        );
    }

    #[test]
    fn corruption_degrades_to_a_miss() {
        let cache = temp_cache("corrupt");
        let s = scenario();
        cache.store(&s, &s.run_expect()).unwrap();
        let path = cache.entry_path(&s);
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, &body[..body.len() / 2]).unwrap();
        assert!(cache.load(&s).is_none(), "truncated entry must miss");
        fs::write(&path, "not a cache entry at all").unwrap();
        assert!(cache.load(&s).is_none(), "garbage entry must miss");
    }

    #[test]
    fn try_load_classifies_misses_and_corruption() {
        let cache = temp_cache("classify");
        let s = scenario();
        assert_eq!(cache.try_load(&s), Ok(None), "absent entry is a clean miss");
        assert!(!cache.probe(&s), "probe reports cold");
        cache.store(&s, &s.run_expect()).unwrap();
        assert!(matches!(cache.try_load(&s), Ok(Some(_))));
        assert!(cache.probe(&s), "probe reports warm");
        fs::write(cache.entry_path(&s), "garbage").unwrap();
        assert_eq!(cache.try_load(&s), Err(CacheReadError::Corrupt));
        assert!(cache.load(&s).is_none(), "load still degrades to a miss");
        assert!(!cache.probe(&s), "probe treats corruption as cold");
    }

    #[test]
    fn sweep_reclaims_stale_tmp_files_only() {
        let cache = temp_cache("sweep");
        let s = scenario();
        cache.store(&s, &s.run_expect()).unwrap();
        // Orphans a crashed writer would leave behind.
        fs::write(cache.dir().join("deadbeef.tmp.999.0"), "half-written").unwrap();
        fs::write(cache.dir().join("deadbeef.tmp.999.1"), "half-written").unwrap();
        assert_eq!(cache.sweep_stale_tmp(), 2);
        assert_eq!(cache.len(), 1, "real entries survive the sweep");
        assert!(cache.load(&s).is_some());
        assert_eq!(cache.sweep_stale_tmp(), 0, "second sweep finds nothing");
    }

    #[test]
    fn evict_removes_the_entry() {
        let cache = temp_cache("evict");
        let s = scenario();
        cache.store(&s, &s.run_expect()).unwrap();
        assert!(!cache.is_empty());
        cache.evict(&s);
        assert!(cache.load(&s).is_none());
        assert!(cache.is_empty());
    }
}
