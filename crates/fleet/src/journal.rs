//! Crash-safe run journal: an append-only manifest plus a per-run
//! report store, making interrupted fleet runs resumable.
//!
//! Layout under `<runs-dir>/<run-id>/`:
//!
//! ```text
//! manifest.jsonl       append-only state transitions, one JSON line each
//! reports/v<N>/…       completed reports (the cache entry format)
//! ```
//!
//! Manifest lines (all single-line JSON, strings escaped):
//!
//! ```text
//! {"type":"batch.open","run_id":"…","scenarios":N}
//! {"type":"scenario","index":I,"hash":"…","label":"…"}
//! {"type":"state","hash":"…","state":"running","attempt":A}
//! {"type":"state","hash":"…","state":"failed","attempt":A,"error":"…"}
//! {"type":"state","hash":"…","state":"done","attempt":A}
//! {"type":"batch.close","done":D,"failed":F,"quarantined":Q,"pending":P,"aborted":B}
//! ```
//!
//! Crash-safety rules: every line is committed with a single
//! `write_all` of the full line (so a crash can only truncate the
//! *last* line, never interleave two), the parser ignores a torn tail,
//! and a scenario's `done` line is appended only *after* its report
//! has been atomically renamed into the report store. Resuming
//! therefore re-executes exactly the scenarios without a durable
//! report — `running` states dangling from a kill included — and
//! replays the rest bit-identically from the store.
//!
//! Journal I/O itself degrades instead of failing the run: an append
//! error (disk full, injected failpoint) marks the journal unhealthy,
//! further appends become no-ops, and the engine surfaces the fact in
//! its stats; the simulation results are unaffected.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use heb_core::{Scenario, SimReport};
use heb_telemetry::json_field;

use crate::cache::ResultCache;
use crate::failpoint::{site, Failpoints};
use crate::harden::ScenarioState;

/// The manifest file name inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

/// When journal appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every line: maximal crash-safety, slowest.
    Always,
    /// Flush per line, `fsync` once when the batch closes (default).
    #[default]
    Batch,
    /// Never `fsync`; rely on the OS (fastest, test runs).
    Never,
}

impl FsyncPolicy {
    /// Stable lowercase name (`always` / `batch` / `never`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }

    /// Parses a policy name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// A crash-safe, append-only journal for one run id.
#[derive(Debug)]
pub struct RunJournal {
    dir: PathBuf,
    run_id: String,
    fsync: FsyncPolicy,
    file: Mutex<Option<File>>,
    healthy: AtomicBool,
    store: ResultCache,
    /// Last journaled state per scenario hash from *prior* sessions
    /// (empty for a fresh run).
    prior: BTreeMap<String, ScenarioState>,
    failpoints: Option<Arc<Failpoints>>,
}

impl RunJournal {
    /// Creates (or re-opens for appending) the journal for `run_id`
    /// under `runs_dir`, without reading prior state — a fresh run.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and manifest-open failures; the
    /// caller may then run journal-less rather than not at all.
    pub fn create(runs_dir: &Path, run_id: &str, fsync: FsyncPolicy) -> io::Result<Self> {
        Self::open_inner(runs_dir, run_id, fsync, false)
    }

    /// Opens an existing run for resumption: prior manifest lines are
    /// parsed (tolerating a torn tail) so completed scenarios can be
    /// settled from the report store.
    ///
    /// # Errors
    ///
    /// Fails if the run directory or manifest does not exist, or
    /// cannot be opened for appending.
    pub fn resume(runs_dir: &Path, run_id: &str, fsync: FsyncPolicy) -> io::Result<Self> {
        if !runs_dir.join(run_id).join(MANIFEST_FILE).is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no manifest for run {run_id:?} under {}",
                    runs_dir.display()
                ),
            ));
        }
        Self::open_inner(runs_dir, run_id, fsync, true)
    }

    fn open_inner(
        runs_dir: &Path,
        run_id: &str,
        fsync: FsyncPolicy,
        read_prior: bool,
    ) -> io::Result<Self> {
        let dir = runs_dir.join(run_id);
        fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST_FILE);
        let prior = if read_prior {
            parse_manifest(&fs::read_to_string(&manifest)?)
        } else {
            BTreeMap::new()
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest)?;
        Ok(Self {
            run_id: run_id.to_string(),
            fsync,
            file: Mutex::new(Some(file)),
            healthy: AtomicBool::new(true),
            store: ResultCache::new(dir.join("reports")),
            prior,
            dir,
            failpoints: None,
        })
    }

    /// Attaches a failpoint set whose `journal.append` site injects
    /// manifest write failures.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> Self {
        self.failpoints = Some(failpoints);
        self
    }

    /// The run id this journal belongs to.
    #[must_use]
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The run directory (`<runs-dir>/<run-id>`).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether every append so far reached the manifest.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// The scenario's last journaled state from prior sessions.
    #[must_use]
    pub fn prior_state(&self, hash: &str) -> Option<ScenarioState> {
        self.prior.get(hash).copied()
    }

    /// Settles a scenario from a prior session: its journaled state
    /// must be `done` *and* its report must load from the run store
    /// (the done line is only ever written after the store commit, so
    /// a miss here means a torn run — re-execute).
    #[must_use]
    pub fn completed_report(&self, scenario: &Scenario) -> Option<SimReport> {
        if self.prior_state(&scenario.hash_hex()) != Some(ScenarioState::Done) {
            return None;
        }
        self.store.load(scenario)
    }

    /// Opens a batch: membership lines let post-mortem tooling map
    /// hashes back to labels and positions.
    pub fn record_batch_open(&self, batch: &[Scenario]) {
        self.append(&format!(
            "{{\"type\":\"batch.open\",\"run_id\":\"{}\",\"scenarios\":{}}}",
            escape(&self.run_id),
            batch.len()
        ));
        for (index, scenario) in batch.iter().enumerate() {
            self.append(&format!(
                "{{\"type\":\"scenario\",\"index\":{index},\"hash\":\"{}\",\"label\":\"{}\"}}",
                scenario.hash_hex(),
                escape(scenario.label())
            ));
        }
    }

    /// Journals a state transition for one scenario attempt.
    pub fn record_state(
        &self,
        hash: &str,
        state: ScenarioState,
        attempt: u32,
        error: Option<&str>,
    ) {
        let mut line = format!(
            "{{\"type\":\"state\",\"hash\":\"{hash}\",\"state\":\"{}\",\"attempt\":{attempt}",
            state.name()
        );
        if let Some(error) = error {
            line.push_str(",\"error\":\"");
            line.push_str(&escape(error));
            line.push('"');
        }
        line.push('}');
        self.append(&line);
    }

    /// Commits a completed scenario: report first (atomic rename into
    /// the run store), `done` line after — the ordering resume relies
    /// on.
    pub fn record_done(&self, scenario: &Scenario, report: &SimReport, attempt: u32) {
        let _ = self.store.store(scenario, report);
        self.record_state(&scenario.hash_hex(), ScenarioState::Done, attempt, None);
    }

    /// Closes a batch with final tallies, honouring the fsync policy.
    pub fn record_batch_close(
        &self,
        done: usize,
        failed: usize,
        quarantined: usize,
        pending: usize,
        aborted: bool,
    ) {
        self.append(&format!(
            "{{\"type\":\"batch.close\",\"done\":{done},\"failed\":{failed},\
             \"quarantined\":{quarantined},\"pending\":{pending},\"aborted\":{aborted}}}"
        ));
        if self.fsync == FsyncPolicy::Batch {
            self.sync();
        }
    }

    /// Forces buffered manifest bytes to disk.
    pub fn sync(&self) {
        let guard = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(file) = guard.as_ref() {
            let _ = file.sync_data();
        }
    }

    /// Appends one manifest line atomically (single `write_all` of
    /// line + newline). On failure the journal goes unhealthy and
    /// stays silent — observability must never take the run down.
    fn append(&self, line: &str) {
        if let Some(fp) = &self.failpoints {
            if fp.fires(site::JOURNAL_APPEND) {
                self.mark_unhealthy();
                return;
            }
        }
        let mut guard = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(file) = guard.as_mut() else {
            return;
        };
        let mut payload = String::with_capacity(line.len() + 1);
        payload.push_str(line);
        payload.push('\n');
        let result = file
            .write_all(payload.as_bytes())
            .and_then(|()| match self.fsync {
                FsyncPolicy::Always => file.sync_data(),
                FsyncPolicy::Batch | FsyncPolicy::Never => Ok(()),
            });
        if result.is_err() {
            *guard = None;
            drop(guard);
            self.mark_unhealthy();
        }
    }

    fn mark_unhealthy(&self) {
        self.healthy.store(false, Ordering::Relaxed);
        let mut guard = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = None;
    }
}

/// Parses manifest lines into last-state-wins per-scenario states.
/// Lines that do not parse (torn tail after a crash, foreign garbage)
/// are skipped — the worst case is re-executing a scenario, never
/// trusting a phantom result.
fn parse_manifest(body: &str) -> BTreeMap<String, ScenarioState> {
    let mut states = BTreeMap::new();
    for line in body.lines() {
        if !line.ends_with('}') || json_field(line, "type") != Some("state") {
            continue;
        }
        let (Some(hash), Some(state)) = (json_field(line, "hash"), json_field(line, "state"))
        else {
            continue;
        };
        if let Some(state) = ScenarioState::parse(state) {
            states.insert(hash.to_string(), state);
        }
    }
    states
}

/// JSON string escaping for manifest values (labels, error messages).
fn escape(value: &str) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::SimConfig;
    use heb_workload::Archetype;

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(
            format!("journal-test/{seed}"),
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            0.05,
            seed,
        )
    }

    fn temp_runs(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("heb-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn done_scenarios_resume_bit_identically() {
        let runs = temp_runs("resume");
        let s = scenario(1);
        let report = s.run_expect();
        {
            let journal = RunJournal::create(&runs, "r1", FsyncPolicy::Batch).unwrap();
            journal.record_batch_open(std::slice::from_ref(&s));
            journal.record_state(&s.hash_hex(), ScenarioState::Running, 1, None);
            journal.record_done(&s, &report, 1);
            journal.record_batch_close(1, 0, 0, 0, false);
            assert!(journal.healthy());
        }
        let resumed = RunJournal::resume(&runs, "r1", FsyncPolicy::Batch).unwrap();
        assert_eq!(
            resumed.prior_state(&s.hash_hex()),
            Some(ScenarioState::Done)
        );
        assert_eq!(resumed.completed_report(&s), Some(report));
        // A scenario the journal never saw is not settled.
        assert_eq!(resumed.completed_report(&scenario(2)), None);
    }

    #[test]
    fn dangling_running_state_is_not_settled() {
        let runs = temp_runs("dangling");
        let s = scenario(3);
        {
            let journal = RunJournal::create(&runs, "r1", FsyncPolicy::Never).unwrap();
            journal.record_batch_open(std::slice::from_ref(&s));
            journal.record_state(&s.hash_hex(), ScenarioState::Running, 1, None);
            // Process "dies" here: no report, no done line.
        }
        let resumed = RunJournal::resume(&runs, "r1", FsyncPolicy::Never).unwrap();
        assert_eq!(
            resumed.prior_state(&s.hash_hex()),
            Some(ScenarioState::Running)
        );
        assert_eq!(resumed.completed_report(&s), None, "must re-execute");
    }

    #[test]
    fn torn_tail_and_garbage_lines_are_tolerated() {
        let runs = temp_runs("torn");
        let s = scenario(4);
        let report = s.run_expect();
        {
            let journal = RunJournal::create(&runs, "r1", FsyncPolicy::Always).unwrap();
            journal.record_done(&s, &report, 1);
        }
        // Simulate a crash mid-append: a torn, unterminated last line.
        let manifest = runs.join("r1").join(MANIFEST_FILE);
        let mut body = fs::read_to_string(&manifest).unwrap();
        body.push_str("not json\n{\"type\":\"state\",\"hash\":\"feed\",\"sta");
        fs::write(&manifest, body).unwrap();
        let resumed = RunJournal::resume(&runs, "r1", FsyncPolicy::Always).unwrap();
        assert_eq!(resumed.completed_report(&s), Some(report));
        assert_eq!(resumed.prior_state("feed"), None, "torn line ignored");
    }

    #[test]
    fn resume_requires_an_existing_manifest() {
        let runs = temp_runs("missing");
        assert!(RunJournal::resume(&runs, "nope", FsyncPolicy::Batch).is_err());
    }

    #[test]
    fn quarantine_and_error_lines_round_trip_with_escaping() {
        let runs = temp_runs("quarantine");
        let journal = RunJournal::create(&runs, "r1", FsyncPolicy::Batch).unwrap();
        journal.record_state(
            "aa",
            ScenarioState::Failed,
            1,
            Some("panic: \"boom\"\nline2"),
        );
        journal.record_state("aa", ScenarioState::Quarantined, 2, Some("gave up"));
        journal.sync();
        let body = fs::read_to_string(runs.join("r1").join(MANIFEST_FILE)).unwrap();
        assert!(body.contains("\\\"boom\\\"\\nline2"));
        let states = parse_manifest(&body);
        assert_eq!(states.get("aa"), Some(&ScenarioState::Quarantined));
    }

    #[test]
    fn append_failures_turn_the_journal_unhealthy_quietly() {
        let runs = temp_runs("unhealthy");
        let journal = RunJournal::create(&runs, "r1", FsyncPolicy::Batch).unwrap();
        // Close the file handle out from under the journal.
        journal.mark_unhealthy();
        journal.record_state("aa", ScenarioState::Done, 1, None);
        assert!(!journal.healthy());
    }
}
