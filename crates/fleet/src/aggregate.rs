//! Aggregation across seed-replicated scenarios.
//!
//! A single simulation run is one draw from the workload/cloud RNG;
//! fleet-scale conclusions want the distribution. [`replicate`] clones
//! a scenario across consecutive seeds and [`MetricSummary`]
//! summarises any per-report metric over the replica set with the
//! usual fleet statistics (mean, median, tail, extremes).

use heb_core::{Scenario, SimReport};

/// Clones `scenario` across `replicas` consecutive seeds (starting at
/// the scenario's own seed), relabelling each replica with an `@s<n>`
/// suffix. Each replica hashes differently, so the result cache keeps
/// all of them.
#[must_use]
pub fn replicate(scenario: &Scenario, replicas: u64) -> Vec<Scenario> {
    let base_seed = scenario.seed();
    (0..replicas.max(1))
        .map(|i| {
            let seed = base_seed.wrapping_add(i);
            scenario
                .clone()
                .with_seed(seed)
                .relabeled(format!("{}@s{seed}", scenario.label()))
        })
        .collect()
}

/// Distribution summary of one metric across a replica set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of samples summarised.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl MetricSummary {
    /// Summarises raw samples; `None` when `values` is empty.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let nearest_rank = |p: f64| {
            let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(Self {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: nearest_rank(50.0),
            p95: nearest_rank(95.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        })
    }

    /// Summarises `metric` evaluated on every report; `None` when
    /// `reports` is empty.
    #[must_use]
    pub fn over_reports(reports: &[SimReport], metric: impl Fn(&SimReport) -> f64) -> Option<Self> {
        let values: Vec<f64> = reports.iter().map(metric).collect();
        Self::from_values(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_core::SimConfig;
    use heb_workload::Archetype;

    #[test]
    fn replicas_differ_only_by_seed() {
        let base = Scenario::new(
            "agg-test",
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            0.1,
            100,
        );
        let replicas = replicate(&base, 4);
        assert_eq!(replicas.len(), 4);
        assert_eq!(replicas[0].seed(), 100);
        assert_eq!(replicas[3].seed(), 103);
        assert_eq!(replicas[2].label(), "agg-test@s102");
        let mut hashes: Vec<u128> = replicas.iter().map(Scenario::content_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 4, "each replica must hash uniquely");
        // Same seed as the base → same hash (labels are cosmetic).
        assert_eq!(replicas[0].content_hash(), base.content_hash());
    }

    #[test]
    fn zero_replicas_clamps_to_one() {
        let base = Scenario::new(
            "agg-test",
            SimConfig::prototype(),
            &[Archetype::WebSearch],
            0.1,
            5,
        );
        assert_eq!(replicate(&base, 0).len(), 1);
    }

    #[test]
    fn summary_statistics_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = MetricSummary::from_values(&values).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn summary_of_nothing_is_none() {
        assert!(MetricSummary::from_values(&[]).is_none());
        assert!(MetricSummary::over_reports(&[], |r| r.server_downtime.get()).is_none());
    }

    #[test]
    fn single_sample_summary_is_degenerate() {
        let s = MetricSummary::from_values(&[3.5]).unwrap();
        assert_eq!(
            (s.mean, s.p50, s.p95, s.min, s.max),
            (3.5, 3.5, 3.5, 3.5, 3.5)
        );
    }
}
