//! heb-fleet — deterministically-parallel scenario engine with
//! content-addressed result caching.
//!
//! The simulation core (`heb-core`) defines [`heb_core::Scenario`]: a
//! self-contained, content-hashed description of one run. This crate
//! supplies the machinery that makes scenario *batches* cheap:
//!
//! * [`FleetEngine`] — a fixed worker pool executing a batch with
//!   results in submission order, bit-identical to serial execution at
//!   any `--jobs` level; its single entry point [`FleetEngine::run`]
//!   takes a per-run [`RunPolicy`] and returns a [`RunOutcome`];
//! * [`ResultCache`] — an on-disk store keyed by scenario content hash
//!   and engine version, so re-running an experiment whose inputs are
//!   unchanged performs zero simulations;
//! * [`replicate`] / [`MetricSummary`] — seed replication and
//!   distribution summaries (mean / p50 / p95 / min / max) across the
//!   replica set;
//! * the **heb-harden** execution-robustness layer (DESIGN §9) —
//!   per-scenario panic isolation with deterministic retry and
//!   quarantine ([`HardenPolicy`], [`RunOutcome`]), a crash-safe
//!   resumable run journal ([`RunJournal`]), graceful cache
//!   degradation ([`DegradableCache`]), and seeded failpoints for
//!   chaos testing ([`Failpoints`], attachable only under the
//!   `failpoints` feature).
//!
//! The `heb_fleet` binary drives every scenario-ised experiment of the
//! evaluation through this engine.
//!
//! # Examples
//!
//! ```
//! use heb_core::{Scenario, SimConfig};
//! use heb_fleet::{FleetEngine, RunPolicy};
//! use heb_workload::Archetype;
//!
//! let batch: Vec<Scenario> = (0..4)
//!     .map(|seed| {
//!         Scenario::new(
//!             format!("demo/{seed}"),
//!             SimConfig::prototype(),
//!             &[Archetype::WebSearch],
//!             0.02,
//!             seed,
//!         )
//!     })
//!     .collect();
//! let engine = FleetEngine::new(2);
//! let outcome = engine.run(&batch, &RunPolicy::new());
//! assert!(outcome.all_done());
//! assert_eq!(outcome.expect_reports().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod cache;
mod degrade;
mod engine;
mod failpoint;
mod harden;
mod journal;

pub use aggregate::{replicate, MetricSummary};
pub use cache::{CacheReadError, ResultCache, ENGINE_VERSION};
pub use degrade::{CacheMode, DegradableCache, Degradation};
pub use engine::{EngineStats, FleetEngine};
pub use failpoint::{site, Failpoints};
pub use harden::{
    HardenPolicy, ReportSource, RunOutcome, RunPolicy, ScenarioFailure, ScenarioOutcome,
    ScenarioState, StateCounts,
};
pub use journal::{FsyncPolicy, RunJournal, MANIFEST_FILE};
