//! Super-capacitor model: ideal capacitor + ESR + interface converter.
//!
//! Super-capacitors store charge electrostatically, so the model is
//! simple physics: `Q = C·V`, `E = ½·C·V²`, a linear discharge-voltage
//! ramp (Figure 5), tiny ohmic ESR losses, and essentially unbounded
//! charge/discharge current. The measured 90–95 % *system-level*
//! round-trip efficiency in Figure 3 includes the DC interface and cell
//! balancing, which the ESR alone would under-state; that overhead is
//! modelled as a fixed per-direction interface efficiency.

use crate::device::{ChargeResult, DischargeResult, StorageDevice};
use heb_units::{capacitor_energy, Farads, Joules, Ohms, Ratio, Seconds, Volts, Watts};

/// Parameters of a super-capacitor module or string.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperCapacitorParams {
    /// Total capacitance.
    pub capacitance: Farads,
    /// Rated (maximum) terminal voltage.
    pub rated_voltage: Volts,
    /// Lower edge of the usable voltage window. Energy below this is
    /// stranded (the downstream converter drops out); ½ V_rated leaves
    /// 75 % of the physical energy usable.
    pub min_voltage: Volts,
    /// Equivalent series resistance.
    pub esr: Ohms,
    /// One-way efficiency of the DC interface (converter + balancing).
    pub interface_efficiency: Ratio,
    /// Hard current limit imposed by wiring/fusing.
    pub max_current: f64,
    /// Rated cycle life (full equivalent cycles).
    pub rated_cycles: f64,
}

impl SuperCapacitorParams {
    /// A Maxwell-class 16 V / 600 F module as used on the prototype.
    #[must_use]
    pub fn prototype_module() -> Self {
        Self {
            capacitance: Farads::new(600.0),
            rated_voltage: Volts::new(16.0),
            min_voltage: Volts::new(8.0),
            esr: Ohms::new(0.003),
            interface_efficiency: Ratio::new_clamped(0.97),
            max_current: 500.0,
            rated_cycles: 1_000_000.0,
        }
    }

    /// Prototype module scaled to a different capacitance at the same
    /// voltage window.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` is not positive.
    #[must_use]
    pub fn with_capacitance(capacitance: Farads) -> Self {
        assert!(capacitance.get() > 0.0, "capacitance must be positive");
        Self {
            capacitance,
            ..Self::prototype_module()
        }
    }

    /// Same parameters with a different usable-window floor, expressed as
    /// a fraction of rated voltage (used by DoD sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `floor` is not within `[0, 1)`.
    #[must_use]
    pub fn with_voltage_floor(mut self, floor: Ratio) -> Self {
        assert!(floor.get() < 1.0, "voltage floor must be below rated");
        self.min_voltage = self.rated_voltage * floor.get();
        self
    }

    fn validate(&self) {
        assert!(self.capacitance.get() > 0.0, "capacitance must be positive");
        assert!(
            self.rated_voltage > self.min_voltage,
            "rated voltage must exceed the usable floor"
        );
        assert!(self.min_voltage.get() >= 0.0, "floor must be non-negative");
        assert!(self.esr.get() >= 0.0, "ESR must be non-negative");
        assert!(self.max_current > 0.0, "current limit must be positive");
    }
}

/// A simulated super-capacitor bank.
///
/// # Examples
///
/// ```
/// use heb_esd::{StorageDevice, SuperCapacitor};
/// use heb_units::{Seconds, Watts};
///
/// let mut sc = SuperCapacitor::prototype_module();
/// let r = sc.discharge(Watts::new(200.0), Seconds::new(10.0));
/// // Super-capacitors are nearly lossless compared to what they drain:
/// assert!(r.efficiency().get() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SuperCapacitor {
    params: SuperCapacitorParams,
    /// Terminal (open-circuit) voltage — the single state variable.
    voltage: Volts,
    /// Cumulative energy moved in/out, for equivalent-cycle accounting.
    throughput: Joules,
}

impl SuperCapacitor {
    /// Creates a full super-capacitor from `params`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see
    /// [`SuperCapacitorParams`] field docs for the constraints).
    #[must_use]
    pub fn new(params: SuperCapacitorParams) -> Self {
        params.validate();
        Self {
            voltage: params.rated_voltage,
            params,
            throughput: Joules::zero(),
        }
    }

    /// A full Maxwell-class 16 V / 600 F module.
    #[must_use]
    pub fn prototype_module() -> Self {
        Self::new(SuperCapacitorParams::prototype_module())
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &SuperCapacitorParams {
        &self.params
    }

    /// Sets the stored energy to `soc` of the usable window. Intended for
    /// experiment setup.
    pub fn set_soc(&mut self, soc: Ratio) {
        let e_min = self.floor_energy();
        let target = e_min + Joules::new(soc.get() * self.usable_capacity().get());
        // E = ½CV² ⇒ V = sqrt(2E/C).
        let v = (2.0 * target.get() / self.params.capacitance.get()).sqrt();
        self.voltage = Volts::new(v);
    }

    /// Equivalent full charge/discharge cycles performed so far.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        let window = self.usable_capacity().get();
        if window <= 0.0 {
            0.0
        } else {
            self.throughput.get() / (2.0 * window)
        }
    }

    /// Fraction of rated cycle life consumed (negligible in practice —
    /// the paper's premise).
    #[must_use]
    pub fn life_used(&self) -> Ratio {
        Ratio::new_unclamped(self.equivalent_cycles() / self.params.rated_cycles)
    }

    fn physical_energy(&self) -> Joules {
        capacitor_energy(self.params.capacitance, self.voltage)
    }

    fn floor_energy(&self) -> Joules {
        capacitor_energy(self.params.capacitance, self.params.min_voltage)
    }

    fn ceiling_energy(&self) -> Joules {
        capacitor_energy(self.params.capacitance, self.params.rated_voltage)
    }

    /// Applies an internal energy delta (positive = charge), returning
    /// the actual delta after window clamping.
    fn shift_energy(&mut self, delta: Joules) -> Joules {
        let before = self.physical_energy();
        let target = (before + delta).clamp(self.floor_energy(), self.ceiling_energy());
        let v = (2.0 * target.get() / self.params.capacitance.get()).sqrt();
        self.voltage = Volts::new(v);
        target - before
    }
}

impl StorageDevice for SuperCapacitor {
    fn usable_capacity(&self) -> Joules {
        self.ceiling_energy() - self.floor_energy()
    }

    fn available_energy(&self) -> Joules {
        (self.physical_energy() - self.floor_energy()).max(Joules::zero())
    }

    fn headroom(&self) -> Joules {
        (self.ceiling_energy() - self.physical_energy()).max(Joules::zero())
    }

    fn max_discharge_power(&self) -> Watts {
        if self.is_depleted() {
            return Watts::zero();
        }
        let v = self.voltage.get();
        let esr = self.params.esr.get();
        // Current limit and the ESR maximum-power-transfer bound.
        let p_current = self.params.max_current * (v - self.params.max_current * esr).max(0.0);
        let p_esr = if esr > 0.0 {
            v * v / (4.0 * esr)
        } else {
            f64::INFINITY
        };
        let p = p_current.min(p_esr) * self.params.interface_efficiency.get();
        Watts::new(p)
    }

    fn max_charge_power(&self) -> Watts {
        if self.is_full() {
            return Watts::zero();
        }
        let v = self.voltage.get();
        let i = self.params.max_current;
        Watts::new(
            i * (v + i * self.params.esr.get()) / self.params.interface_efficiency.get().max(1e-6),
        )
    }

    fn open_circuit_voltage(&self) -> Volts {
        self.voltage
    }

    fn loaded_voltage(&self, load: Watts) -> Volts {
        // V_t = V_oc − i·ESR with i from the quadratic ESR·i² − V·i + P = 0.
        let v = self.voltage.get();
        let esr = self.params.esr.get();
        let p = load.get().max(0.0) / self.params.interface_efficiency.get().max(1e-6);
        let disc = v * v - 4.0 * esr * p;
        if disc <= 0.0 {
            // Beyond maximum power transfer: voltage halves.
            return Volts::new(v / 2.0);
        }
        let i = (v - disc.sqrt()) / (2.0 * esr.max(1e-12));
        Volts::new(v - i * esr)
    }

    fn discharge(&mut self, request: Watts, dt: Seconds) -> DischargeResult {
        let dt_s = dt.get();
        if dt_s <= 0.0 || request.get() <= 0.0 || self.is_depleted() {
            return DischargeResult::none();
        }
        let eta = self.params.interface_efficiency.get();
        // Average net power that must appear at the interface input.
        let p_cell_needed = request.get() / eta.max(1e-6);
        let v = self.voltage.get();
        let esr = self.params.esr.get();
        // Over the step the OCV itself declines by i·dt/C, so the average
        // sag per amp is the ESR plus half that ramp. Solving
        // i·(V − i·r_step) = P keeps delivered power equal to the request
        // whenever the device is not limited.
        let r_step = esr + 0.5 * dt_s / self.params.capacitance.get();
        let p_max = v * v / (4.0 * r_step);
        let p_cell = p_cell_needed.min(p_max);
        let disc = (v * v - 4.0 * r_step * p_cell).max(0.0);
        let i = (v - disc.sqrt()) / (2.0 * r_step);
        let i = i.min(self.params.max_current);
        // Internal energy that would leave the cell this step.
        let internal = i * (v - 0.5 * i * dt_s / self.params.capacitance.get()) * dt_s;
        let internal = Joules::new(internal.max(0.0)).min(self.available_energy());
        let actual = -self.shift_energy(-internal);
        let ohmic = Joules::new(i * i * esr * dt_s).min(actual);
        let at_terminals = actual - ohmic;
        let delivered = at_terminals * eta;
        self.throughput += actual;
        DischargeResult {
            delivered,
            drained: actual,
            loss: actual - delivered,
        }
    }

    fn charge(&mut self, offered: Watts, dt: Seconds) -> ChargeResult {
        let dt_s = dt.get();
        if dt_s <= 0.0 || offered.get() <= 0.0 || self.is_full() {
            return ChargeResult::none();
        }
        let eta = self.params.interface_efficiency.get();
        let v = self.voltage.get();
        let esr = self.params.esr.get();
        // Power reaching the cell terminals after the interface.
        let p_cell = offered.get() * eta;
        // Mirror of the discharge solve: the OCV rises by i·dt/C over the
        // step, so the average overpotential per amp is ESR plus half the
        // ramp. Solving i·(V + i·r_step) = P makes drawn ≈ offered when
        // unconstrained.
        let r_step = esr + 0.5 * dt_s / self.params.capacitance.get();
        let i = ((v * v + 4.0 * r_step * p_cell).sqrt() - v) / (2.0 * r_step);
        let i = i.min(self.params.max_current);
        let ohmic = i * i * esr * dt_s;
        let into_cell = (i * v * dt_s + 0.5 * i * i * dt_s * dt_s / self.params.capacitance.get())
            .min(self.headroom().get());
        let stored = self.shift_energy(Joules::new(into_cell));
        // Energy drawn from the source to achieve this store.
        let drawn = Joules::new((stored.get() + ohmic) / eta.max(1e-6));
        self.throughput += stored;
        ChargeResult {
            drawn,
            stored,
            loss: drawn - stored,
        }
    }

    fn idle(&mut self, _dt: Seconds) {
        // Self-discharge is negligible on control-loop timescales.
    }

    fn idle_settled(&mut self, _dt: Seconds) -> bool {
        // idle() is a no-op, so the state is trivially settled.
        true
    }

    fn idle_accumulate(&mut self, _dt: Seconds, _n: u64) {
        // No accumulators advance during idle.
    }

    fn degrade(&mut self, capacity_fade: Ratio, resistance_growth: f64) {
        // Electrolyte dry-out: capacitance fades and ESR grows. The
        // terminal voltage is unchanged, so stored energy scales down
        // with C (½CV²) — charge is lost with the plates, not teleported.
        let keep = (1.0 - capacity_fade.get()).max(0.01);
        self.params.capacitance = Farads::new(self.params.capacitance.get() * keep);
        self.params.esr = Ohms::new(self.params.esr.get() * (1.0 + resistance_growth.max(0.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Seconds = Seconds::new(1.0);

    #[test]
    fn starts_full_with_expected_window() {
        let sc = SuperCapacitor::prototype_module();
        // ½·600·16² = 76.8 kJ total, window floor at 8 V strands 25 %.
        assert!((sc.usable_capacity().get() - 0.75 * 76_800.0).abs() < 1.0);
        assert!((sc.soc().get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_voltage_decline() {
        // Equal charge increments produce equal voltage decrements.
        let mut sc = SuperCapacitor::prototype_module();
        let mut voltages = vec![sc.open_circuit_voltage().get()];
        for _ in 0..5 {
            // Draw a fixed slug of charge (constant current, not power).
            let i = 20.0;
            let dq = i * 10.0;
            let v = sc.open_circuit_voltage().get();
            let de = dq * v - 0.5 * dq * dq / 600.0;
            sc.shift_energy(Joules::new(-de));
            voltages.push(sc.open_circuit_voltage().get());
        }
        let drops: Vec<f64> = voltages.windows(2).map(|w| w[0] - w[1]).collect();
        for pair in drops.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 0.01,
                "voltage decline should be linear in charge: {drops:?}"
            );
        }
    }

    #[test]
    fn round_trip_efficiency_in_sc_band() {
        let mut sc = SuperCapacitor::prototype_module();
        sc.set_soc(Ratio::ZERO);
        let mut drawn = Joules::zero();
        while !sc.is_full() {
            let r = sc.charge(Watts::new(150.0), TICK);
            if r.is_empty() {
                break;
            }
            drawn += r.drawn;
        }
        let mut delivered = Joules::zero();
        while !sc.is_depleted() {
            let r = sc.discharge(Watts::new(150.0), TICK);
            if r.is_empty() {
                break;
            }
            delivered += r.delivered;
        }
        let eta = delivered.get() / drawn.get();
        assert!(
            (0.88..0.97).contains(&eta),
            "SC round trip should be 90–95 %, got {eta}"
        );
    }

    #[test]
    fn discharge_conservation() {
        let mut sc = SuperCapacitor::prototype_module();
        let r = sc.discharge(Watts::new(300.0), TICK);
        assert!(((r.delivered + r.loss) - r.drained).get().abs() < 1e-9);
        assert!(r.loss.get() >= 0.0);
    }

    #[test]
    fn charge_conservation() {
        let mut sc = SuperCapacitor::prototype_module();
        sc.set_soc(Ratio::HALF);
        let r = sc.charge(Watts::new(300.0), TICK);
        assert!(((r.stored + r.loss) - r.drawn).get().abs() < 1e-9);
        assert!(r.loss.get() >= 0.0);
    }

    #[test]
    fn absorbs_very_large_charge_power() {
        // No meaningful charge-current bound — the key REU property.
        let mut sc = SuperCapacitor::prototype_module();
        sc.set_soc(Ratio::new_clamped(0.1));
        let r = sc.charge(Watts::new(3_000.0), TICK);
        assert!(
            r.stored.get() > 2_500.0,
            "SC should swallow a deep power valley, stored {}",
            r.stored.get()
        );
    }

    #[test]
    fn respects_voltage_floor() {
        let mut sc = SuperCapacitor::prototype_module();
        for _ in 0..100_000 {
            if sc.discharge(Watts::new(400.0), TICK).is_empty() {
                break;
            }
        }
        assert!(sc.open_circuit_voltage() >= sc.params().min_voltage - Volts::new(1e-9));
        assert!(sc.is_depleted());
    }

    #[test]
    fn respects_voltage_ceiling() {
        let mut sc = SuperCapacitor::prototype_module();
        for _ in 0..100_000 {
            if sc.charge(Watts::new(400.0), TICK).is_empty() {
                break;
            }
        }
        assert!(sc.open_circuit_voltage() <= sc.params().rated_voltage + Volts::new(1e-9));
    }

    #[test]
    fn cycle_accounting() {
        let mut sc = SuperCapacitor::prototype_module();
        // One full discharge + one full charge ≈ one equivalent cycle.
        while !sc.is_depleted() {
            if sc.discharge(Watts::new(200.0), TICK).is_empty() {
                break;
            }
        }
        while !sc.is_full() {
            if sc.charge(Watts::new(200.0), TICK).is_empty() {
                break;
            }
        }
        assert!((sc.equivalent_cycles() - 1.0).abs() < 0.1);
        assert!(sc.life_used().get() < 1e-5);
    }

    #[test]
    fn set_soc_round_trips() {
        let mut sc = SuperCapacitor::prototype_module();
        for target in [0.0, 0.25, 0.5, 0.75, 1.0] {
            sc.set_soc(Ratio::new_clamped(target));
            assert!((sc.soc().get() - target).abs() < 1e-9);
        }
    }

    #[test]
    fn loaded_voltage_sags_slightly() {
        let sc = SuperCapacitor::prototype_module();
        let sag = sc.open_circuit_voltage() - sc.loaded_voltage(Watts::new(300.0));
        assert!(sag.get() > 0.0);
        assert!(
            sag.get() < 0.5,
            "ESR sag should be small, got {}",
            sag.get()
        );
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_panics() {
        let _ = SuperCapacitorParams::with_capacitance(Farads::zero());
    }

    #[test]
    fn degrade_shrinks_window_and_keeps_device_serviceable() {
        let mut sc = SuperCapacitor::prototype_module();
        let cap_before = sc.usable_capacity();
        let avail_before = sc.available_energy();
        sc.degrade(Ratio::new_clamped(0.2), 1.0);
        assert!((sc.params().capacitance.get() - 480.0).abs() < 1e-9);
        assert!((sc.params().esr.get() - 0.006).abs() < 1e-12);
        assert!(sc.usable_capacity() < cap_before);
        assert!(sc.available_energy() < avail_before);
        assert!(sc.soc().get() <= 1.0 + 1e-9);
        let r = sc.discharge(Watts::new(100.0), TICK);
        assert!(r.delivered.get() > 0.0);
        assert!(((r.delivered + r.loss) - r.drained).get().abs() < 1e-9);
    }
}
