//! Lithium-ion battery model: the upgrade path the paper's Figure 4
//! prices but the prototype could not afford.
//!
//! Electrically, Li-ion sits between lead-acid and super-capacitors:
//! high coulombic efficiency (≈99 %), a flat voltage plateau with mild
//! sag, fast charging (0.5–1C), essentially no recovery effect at these
//! timescales, and a cycle life several times lead-acid's — at several
//! times the price. The model is a single-well charge store (no kinetic
//! bottleneck worth modelling at sub-1C rates) with an OCV curve,
//! series resistance, charge-rate cap with CV-taper, cycle-counting
//! wear, and the same lumped thermal model as the lead-acid string.

use crate::device::{ChargeResult, DischargeResult, StorageDevice};
use heb_units::{AmpHours, Amps, Joules, Ohms, Ratio, Seconds, Volts, Watts, SECONDS_PER_HOUR};

/// Parameters of a Li-ion string.
#[derive(Debug, Clone, PartialEq)]
pub struct LiIonParams {
    /// Nominal string voltage (7s pack ≈ 25.9 V; we keep 24 V-class).
    pub nominal_voltage: Volts,
    /// Nameplate capacity.
    pub capacity: AmpHours,
    /// Series resistance.
    pub internal_resistance: Ohms,
    /// Open-circuit voltage when full / empty (the plateau's ends).
    pub ocv_full: Volts,
    /// Open-circuit voltage at the empty end of the plateau.
    pub ocv_empty: Volts,
    /// Low-voltage cutoff.
    pub cutoff_voltage: Volts,
    /// Coulombic efficiency (very high for Li-ion).
    pub coulombic_efficiency: Ratio,
    /// Maximum charging C-rate (0.5C typical for longevity-managed
    /// packs).
    pub max_charge_c_rate: f64,
    /// Maximum discharging C-rate.
    pub max_discharge_c_rate: f64,
    /// Management DoD limit.
    pub dod_limit: Ratio,
    /// Rated full-cycle life (≈4000 at 80 % DoD).
    pub rated_cycles: f64,
}

impl LiIonParams {
    /// A 24 V-class, 8 Ah Li-ion string comparable to the prototype's
    /// lead-acid string.
    #[must_use]
    pub fn prototype_string() -> Self {
        Self {
            nominal_voltage: Volts::new(24.0),
            capacity: AmpHours::new(8.0),
            internal_resistance: Ohms::new(0.05),
            ocv_full: Volts::new(28.0),
            ocv_empty: Volts::new(22.4),
            cutoff_voltage: Volts::new(21.0),
            coulombic_efficiency: Ratio::new_clamped(0.99),
            max_charge_c_rate: 0.5,
            max_discharge_c_rate: 2.0,
            dod_limit: Ratio::new_clamped(0.8),
            rated_cycles: 4000.0,
        }
    }

    /// Prototype string scaled to a different capacity (resistance
    /// scales inversely, as with the lead-acid constructor).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    #[must_use]
    pub fn with_capacity(capacity: AmpHours) -> Self {
        assert!(capacity.get() > 0.0, "capacity must be positive");
        let base = Self::prototype_string();
        let scale = base.capacity / capacity;
        Self {
            capacity,
            internal_resistance: base.internal_resistance * scale,
            ..base
        }
    }
}

/// A simulated Li-ion battery string.
///
/// # Examples
///
/// ```
/// use heb_esd::{LithiumIonBattery, StorageDevice};
/// use heb_units::{Seconds, Watts};
///
/// let mut li = LithiumIonBattery::prototype_string();
/// let r = li.discharge(Watts::new(150.0), Seconds::new(60.0));
/// // Li-ion is far more efficient than lead-acid at the same load:
/// assert!(r.efficiency().get() > 0.95);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LithiumIonBattery {
    params: LiIonParams,
    /// Stored charge in coulombs.
    q: f64,
    /// Cumulative discharged charge, for cycle counting.
    throughput_c: f64,
}

impl LithiumIonBattery {
    /// Creates a full battery.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent.
    #[must_use]
    pub fn new(params: LiIonParams) -> Self {
        assert!(params.capacity.get() > 0.0, "capacity must be positive");
        assert!(
            params.ocv_full > params.ocv_empty,
            "full OCV must exceed empty OCV"
        );
        assert!(
            params.cutoff_voltage < params.ocv_empty,
            "cutoff must sit below the empty OCV"
        );
        let q = params.capacity.as_coulombs().get();
        Self {
            params,
            q,
            throughput_c: 0.0,
        }
    }

    /// A full prototype-scale string.
    #[must_use]
    pub fn prototype_string() -> Self {
        Self::new(LiIonParams::prototype_string())
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &LiIonParams {
        &self.params
    }

    /// Sets the stored charge to `soc` of nameplate.
    pub fn set_soc(&mut self, soc: Ratio) {
        self.q = soc.get() * self.q_max();
    }

    /// Equivalent full cycles performed.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        self.throughput_c / self.q_max()
    }

    /// Fraction of rated cycle life consumed.
    #[must_use]
    pub fn life_used(&self) -> Ratio {
        Ratio::new_unclamped(self.equivalent_cycles() / self.params.rated_cycles)
    }

    fn q_max(&self) -> f64 {
        self.params.capacity.as_coulombs().get()
    }

    fn q_floor(&self) -> f64 {
        (1.0 - self.params.dod_limit.get()) * self.q_max()
    }

    fn soc_raw(&self) -> f64 {
        (self.q / self.q_max()).clamp(0.0, 1.0)
    }

    fn ocv(&self) -> Volts {
        // Flat plateau with gentle slope plus a sharper roll-off in the
        // bottom 10 % — the familiar Li-ion discharge curve.
        let soc = self.soc_raw();
        let plateau = self.params.ocv_empty + (self.params.ocv_full - self.params.ocv_empty) * soc;
        if soc < 0.1 {
            let droop = (0.1 - soc) / 0.1;
            plateau - Volts::new(1.2 * droop)
        } else {
            plateau
        }
    }

    fn max_discharge_current(&self, dt: f64) -> f64 {
        let i_rate = self.params.max_discharge_c_rate * self.params.capacity.get();
        let i_dod = (self.q - self.q_floor()).max(0.0) / dt;
        let r = self.params.internal_resistance.get();
        let i_volt = ((self.ocv() - self.params.cutoff_voltage).get() / r).max(0.0);
        i_rate.min(i_dod).min(i_volt)
    }

    fn max_charge_current(&self, dt: f64) -> f64 {
        let i_rate = self.params.max_charge_c_rate * self.params.capacity.get();
        let ce = self.params.coulombic_efficiency.get().max(1e-6);
        let i_fill = (self.q_max() - self.q).max(0.0) / (ce * dt);
        // CV taper over the top 10 % — lithium's constant-voltage phase.
        let soc = self.soc_raw();
        let taper = if soc > 0.9 {
            ((1.0 - soc) / 0.1).clamp(0.05, 1.0)
        } else {
            1.0
        };
        (i_rate * taper).min(i_fill).max(0.0)
    }
}

impl StorageDevice for LithiumIonBattery {
    fn usable_capacity(&self) -> Joules {
        (self.params.capacity * self.params.dod_limit.get()).energy_at(self.params.nominal_voltage)
    }

    fn available_energy(&self) -> Joules {
        let q = (self.q - self.q_floor()).max(0.0);
        AmpHours::new(q / SECONDS_PER_HOUR).energy_at(self.params.nominal_voltage)
    }

    fn headroom(&self) -> Joules {
        let q = (self.q_max() - self.q).max(0.0);
        AmpHours::new(q / SECONDS_PER_HOUR).energy_at(self.params.nominal_voltage)
    }

    fn max_discharge_power(&self) -> Watts {
        let i = self.max_discharge_current(1.0);
        let v = self.ocv() - Amps::new(i) * self.params.internal_resistance;
        (Amps::new(i) * v).max(Watts::zero())
    }

    fn max_charge_power(&self) -> Watts {
        let i = self.max_charge_current(1.0);
        let v = self.ocv() + Amps::new(i) * self.params.internal_resistance;
        Amps::new(i) * v
    }

    fn open_circuit_voltage(&self) -> Volts {
        self.ocv()
    }

    fn loaded_voltage(&self, load: Watts) -> Volts {
        let ocv = self.ocv();
        let r = self.params.internal_resistance;
        let mut v = ocv;
        for _ in 0..4 {
            let i = load / v;
            v = ocv - i * r;
            if v < self.params.cutoff_voltage {
                return self.params.cutoff_voltage;
            }
        }
        v
    }

    fn discharge(&mut self, request: Watts, dt: Seconds) -> DischargeResult {
        let dt_s = dt.get();
        if dt_s <= 0.0 || request.get() <= 0.0 || self.is_depleted() {
            return DischargeResult::none();
        }
        let ocv = self.ocv();
        let r = self.params.internal_resistance;
        let mut i = (request / ocv).get();
        for _ in 0..3 {
            let v = (ocv - Amps::new(i) * r).max(self.params.cutoff_voltage);
            i = (request / v).get();
        }
        let i = i.min(self.max_discharge_current(dt_s));
        if i <= 0.0 {
            return DischargeResult::none();
        }
        let v_loaded = (ocv - Amps::new(i) * r).max(self.params.cutoff_voltage);
        self.q -= i * dt_s;
        self.throughput_c += i * dt_s;
        let drained = Joules::new(i * ocv.get() * dt_s);
        let delivered = Joules::new(i * v_loaded.get() * dt_s);
        DischargeResult {
            delivered,
            drained,
            loss: drained - delivered,
        }
    }

    fn charge(&mut self, offered: Watts, dt: Seconds) -> ChargeResult {
        let dt_s = dt.get();
        if dt_s <= 0.0 || offered.get() <= 0.0 || self.is_full() {
            return ChargeResult::none();
        }
        let ocv = self.ocv();
        let r = self.params.internal_resistance;
        let mut i = (offered / ocv).get();
        for _ in 0..3 {
            let v = ocv + Amps::new(i) * r;
            i = (offered / v).get();
        }
        let i = i.min(self.max_charge_current(dt_s));
        if i <= 0.0 {
            return ChargeResult::none();
        }
        let ce = self.params.coulombic_efficiency.get();
        let v_charge = ocv + Amps::new(i) * r;
        self.q = (self.q + i * ce * dt_s).min(self.q_max());
        let drawn = Joules::new(i * v_charge.get() * dt_s);
        let stored = Joules::new(i * ce * ocv.get() * dt_s);
        ChargeResult {
            drawn,
            stored,
            loss: drawn - stored,
        }
    }

    fn idle(&mut self, _dt: Seconds) {
        // Self-discharge is negligible on control-loop timescales.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Seconds = Seconds::new(1.0);

    #[test]
    fn starts_full_with_expected_capacity() {
        let li = LithiumIonBattery::prototype_string();
        // 8 Ah * 0.8 * 24 V = 153.6 Wh usable, same as the lead-acid
        // string — fair comparisons by construction.
        assert!((li.usable_capacity().as_watt_hours().get() - 153.6).abs() < 1e-6);
        assert!((li.soc().get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_round_trip_efficiency() {
        let mut li = LithiumIonBattery::prototype_string();
        // Start at the DoD floor so the charge fills exactly the window
        // the discharge can empty (energy parked below the floor would
        // otherwise read as round-trip loss).
        li.set_soc(Ratio::new_clamped(0.2));
        let mut drawn = 0.0;
        for _ in 0..200_000 {
            let r = li.charge(Watts::new(100.0), TICK);
            if r.is_empty() || r.drawn.get() < 0.5 {
                break;
            }
            drawn += r.drawn.get();
        }
        let mut delivered = 0.0;
        for _ in 0..200_000 {
            let r = li.discharge(Watts::new(150.0), TICK);
            if r.is_empty() {
                break;
            }
            delivered += r.delivered.get();
        }
        let eta = delivered / drawn;
        assert!(
            (0.88..0.99).contains(&eta),
            "Li-ion round trip should be ~90+ %, got {eta}"
        );
    }

    #[test]
    fn charges_much_faster_than_lead_acid() {
        use crate::LeadAcidBattery;
        let mut li = LithiumIonBattery::prototype_string();
        let mut la = LeadAcidBattery::prototype_string();
        li.set_soc(Ratio::HALF);
        la.set_soc(Ratio::HALF);
        let li_in = li.charge(Watts::new(500.0), TICK).drawn;
        let la_in = la.charge(Watts::new(500.0), TICK).drawn;
        assert!(
            li_in.get() > 3.0 * la_in.get(),
            "Li-ion {} vs lead-acid {}",
            li_in.get(),
            la_in.get()
        );
    }

    #[test]
    fn no_rate_capacity_cliff_at_moderate_rates() {
        // Unlike lead-acid, 1C and 0.25C discharges deliver nearly the
        // same total energy.
        let total = |watts: f64| {
            let mut li = LithiumIonBattery::prototype_string();
            let mut sum = 0.0;
            for _ in 0..500_000 {
                let r = li.discharge(Watts::new(watts), TICK);
                if r.is_empty() {
                    break;
                }
                sum += r.delivered.get();
            }
            sum
        };
        let slow = total(48.0);
        let fast = total(192.0);
        assert!(
            fast > 0.93 * slow,
            "Li-ion should not lose >7 % at 1C: slow {slow}, fast {fast}"
        );
    }

    #[test]
    fn discharge_rate_cap_binds() {
        let mut li = LithiumIonBattery::prototype_string();
        // 2C on 8 Ah at ~24 V ≈ 380 W ceiling.
        let r = li.discharge(Watts::new(2000.0), TICK);
        assert!(
            r.delivered.get() < 500.0,
            "2C cap should bind, delivered {}",
            r.delivered.get()
        );
    }

    #[test]
    fn cycle_accounting() {
        let mut li = LithiumIonBattery::prototype_string();
        for _ in 0..500_000 {
            if li.discharge(Watts::new(150.0), TICK).is_empty() {
                break;
            }
        }
        // One DoD-limited discharge ≈ 0.8 equivalent cycles.
        assert!((li.equivalent_cycles() - 0.8).abs() < 0.05);
        assert!(li.life_used().get() < 0.001);
    }

    #[test]
    fn conservation_invariants() {
        let mut li = LithiumIonBattery::prototype_string();
        let d = li.discharge(Watts::new(200.0), TICK);
        assert!(((d.delivered + d.loss) - d.drained).get().abs() < 1e-9);
        li.set_soc(Ratio::HALF);
        let c = li.charge(Watts::new(200.0), TICK);
        assert!(((c.stored + c.loss) - c.drawn).get().abs() < 1e-9);
    }

    #[test]
    fn voltage_plateau_then_droop() {
        let mut li = LithiumIonBattery::prototype_string();
        li.set_soc(Ratio::new_clamped(0.5));
        let mid = li.open_circuit_voltage();
        li.set_soc(Ratio::new_clamped(0.05));
        let low = li.open_circuit_voltage();
        // The bottom-of-charge droop is distinctly steeper than the
        // plateau slope.
        let plateau_drop_per_soc = (LiIonParams::prototype_string().ocv_full
            - LiIonParams::prototype_string().ocv_empty)
            .get();
        assert!((mid - low).get() > 0.45 * plateau_drop_per_soc);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LiIonParams::with_capacity(AmpHours::zero());
    }
}
