//! The common interface every energy buffer exposes to the controller.

use heb_units::{Joules, Ratio, Seconds, Volts, Watts};

/// Accounting for one discharge step.
///
/// Invariant: `delivered + loss == drained` (up to floating-point noise),
/// and `drained` never exceeds what the device held.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DischargeResult {
    /// Useful energy handed to the load at the device terminals.
    pub delivered: Joules,
    /// Energy removed from the internal store.
    pub drained: Joules,
    /// Energy dissipated inside the device (ohmic and conversion loss).
    pub loss: Joules,
}

impl DischargeResult {
    /// A zero transfer (device empty or request zero).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any energy moved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drained.is_zero()
    }

    /// Fraction of the drained energy that reached the load.
    ///
    /// Returns `Ratio::ONE` for an empty transfer so that aggregating
    /// code never divides by zero.
    #[must_use]
    pub fn efficiency(&self) -> Ratio {
        if self.drained.is_zero() {
            Ratio::ONE
        } else {
            Ratio::new_clamped(self.delivered / self.drained)
        }
    }

    /// Accumulates another step's accounting into this one.
    pub fn absorb(&mut self, other: Self) {
        self.delivered += other.delivered;
        self.drained += other.drained;
        self.loss += other.loss;
    }
}

/// Accounting for one charge step.
///
/// Invariant: `drawn == stored + loss` (up to floating-point noise).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChargeResult {
    /// Energy pulled from the source (utility or renewable surplus).
    pub drawn: Joules,
    /// Energy that ended up in the internal store.
    pub stored: Joules,
    /// Energy dissipated during charging.
    pub loss: Joules,
}

impl ChargeResult {
    /// A zero transfer (device full or offer zero).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any energy moved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drawn.is_zero()
    }

    /// Fraction of the drawn energy that was actually stored.
    ///
    /// Returns `Ratio::ONE` for an empty transfer.
    #[must_use]
    pub fn efficiency(&self) -> Ratio {
        if self.drawn.is_zero() {
            Ratio::ONE
        } else {
            Ratio::new_clamped(self.stored / self.drawn)
        }
    }

    /// Accumulates another step's accounting into this one.
    pub fn absorb(&mut self, other: Self) {
        self.drawn += other.drawn;
        self.stored += other.stored;
        self.loss += other.loss;
    }
}

/// A dispatchable energy buffer: a battery string, a super-capacitor
/// module, or a [`Bank`](crate::Bank) of either.
///
/// The HEB controller drives devices exclusively through this trait, which
/// keeps the policy layer agnostic of chemistry. Implementations advance
/// their own internal state on every `discharge`/`charge`/`idle` call;
/// exactly one of the three must be invoked per simulation tick.
pub trait StorageDevice {
    /// Usable energy when completely full, after depth-of-discharge
    /// limits. This is the "capacity" in the paper's capacity-planning
    /// experiments (Figures 13–14).
    fn usable_capacity(&self) -> Joules;

    /// Usable energy currently available for discharge, after
    /// depth-of-discharge limits and (for batteries) the kinetic
    /// availability of charge.
    fn available_energy(&self) -> Joules;

    /// State of charge over the usable window: `available / usable`.
    fn soc(&self) -> Ratio {
        if self.usable_capacity().is_zero() {
            Ratio::ZERO
        } else {
            Ratio::new_clamped(self.available_energy() / self.usable_capacity())
        }
    }

    /// Room left for charging, in stored joules.
    fn headroom(&self) -> Joules;

    /// The greatest load power the device can serve *right now* without
    /// violating current limits or collapsing its terminal voltage.
    fn max_discharge_power(&self) -> Watts;

    /// The greatest charging power the device can absorb *right now*.
    /// For lead-acid this is bounded by the charge-current cap; for
    /// super-capacitors it is effectively the wiring limit.
    fn max_charge_power(&self) -> Watts;

    /// Terminal voltage at open circuit (no load).
    fn open_circuit_voltage(&self) -> Volts;

    /// Terminal voltage while sourcing `load` (sagging under current).
    fn loaded_voltage(&self, load: Watts) -> Volts;

    /// Sources up to `request` watts for `dt`, returning the accounting.
    /// Delivers less than requested when the device is empty or
    /// current-limited; never delivers more.
    fn discharge(&mut self, request: Watts, dt: Seconds) -> DischargeResult;

    /// Sinks up to `offered` watts for `dt`, returning the accounting.
    /// Accepts less than offered when full or charge-current-limited.
    fn charge(&mut self, offered: Watts, dt: Seconds) -> ChargeResult;

    /// Advances `dt` with no power exchanged. Batteries use this to model
    /// the recovery effect (bound charge migrating back to the available
    /// well).
    fn idle(&mut self, dt: Seconds);

    /// Performs one [`StorageDevice::idle`] step and reports whether the
    /// device's *feedback* state — everything that influences future
    /// charge/discharge behaviour — ended bitwise-identical to where it
    /// started. Pure time accumulators (calendar-life clocks, cycle
    /// counters) are excluded: they keep advancing but never feed back
    /// into the physics.
    ///
    /// Once this returns `true`, every further idle of the same `dt` is
    /// guaranteed to leave the feedback state untouched (the update is a
    /// pure function of that state), so a caller may replay the
    /// remaining idles of a quiet span with
    /// [`StorageDevice::idle_accumulate`]. The default implementation is
    /// conservative: it idles and reports `false`, which keeps unknown
    /// chemistries on the exact per-tick path.
    fn idle_settled(&mut self, dt: Seconds) -> bool {
        self.idle(dt);
        false
    }

    /// Replays only the pure-accumulator portion of `n` idle steps —
    /// the part of [`StorageDevice::idle`] that is not covered by a
    /// settled feedback state. Callers must only use this after
    /// [`StorageDevice::idle_settled`] returned `true` for the same
    /// `dt`; the result is then bitwise-identical to `n` further
    /// [`StorageDevice::idle`] calls. The default implementation simply
    /// performs the full idles, which is always correct.
    fn idle_accumulate(&mut self, dt: Seconds, n: u64) {
        for _ in 0..n {
            self.idle(dt);
        }
    }

    /// Whether the device can still deliver meaningful power (not
    /// depleted to its DoD floor).
    fn is_depleted(&self) -> bool {
        self.available_energy().get() <= 1e-9
    }

    /// Whether the device has no charging headroom left.
    fn is_full(&self) -> bool {
        self.headroom().get() <= 1e-9
    }

    /// Applies a step of ageing: permanently fades usable capacity by
    /// `capacity_fade` (0 = none, 1 = total) and grows internal
    /// resistance by `resistance_growth` (0 = none, 1 = doubled). The
    /// fault-injection layer uses this to model calendar/cycle ageing
    /// and sulfation events mid-run.
    ///
    /// The default implementation is a no-op so that chemistries without
    /// an ageing model remain valid implementations.
    fn degrade(&mut self, capacity_fade: Ratio, resistance_growth: f64) {
        let _ = (capacity_fade, resistance_growth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discharge_result_efficiency() {
        let r = DischargeResult {
            delivered: Joules::new(80.0),
            drained: Joules::new(100.0),
            loss: Joules::new(20.0),
        };
        assert!((r.efficiency().get() - 0.8).abs() < 1e-12);
        assert!(!r.is_empty());
        assert_eq!(DischargeResult::none().efficiency(), Ratio::ONE);
        assert!(DischargeResult::none().is_empty());
    }

    #[test]
    fn charge_result_efficiency() {
        let r = ChargeResult {
            drawn: Joules::new(100.0),
            stored: Joules::new(90.0),
            loss: Joules::new(10.0),
        };
        assert!((r.efficiency().get() - 0.9).abs() < 1e-12);
        assert_eq!(ChargeResult::none().efficiency(), Ratio::ONE);
    }

    #[test]
    fn absorb_accumulates() {
        let mut acc = DischargeResult::none();
        for _ in 0..3 {
            acc.absorb(DischargeResult {
                delivered: Joules::new(10.0),
                drained: Joules::new(12.0),
                loss: Joules::new(2.0),
            });
        }
        assert_eq!(acc.delivered, Joules::new(30.0));
        assert_eq!(acc.drained, Joules::new(36.0));
        assert_eq!(acc.loss, Joules::new(6.0));

        let mut c = ChargeResult::none();
        c.absorb(ChargeResult {
            drawn: Joules::new(5.0),
            stored: Joules::new(4.0),
            loss: Joules::new(1.0),
        });
        assert_eq!(c.drawn, Joules::new(5.0));
    }
}
