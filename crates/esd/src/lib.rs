//! Energy-storage device (ESD) models for the HEB datacenter simulator.
//!
//! This crate is the simulation substitute for the paper's hardware
//! characterisation test-bed (Section 3, Figure 2): lead-acid UPS
//! batteries and Maxwell super-capacitor modules wired to server loads.
//! It provides physics-faithful discrete-time models of both device
//! classes behind a common [`StorageDevice`] trait:
//!
//! * [`LeadAcidBattery`] — a kinetic battery model (KiBaM) two-well charge
//!   store that reproduces the *recovery effect* and the rate-capacity
//!   (Peukert) effect the paper characterises in Figure 3, combined with a
//!   Shepherd-style terminal-voltage model that reproduces the sharp
//!   voltage knee under heavy load seen in Figure 5, a charge-current
//!   cap, and the Ah-throughput lifetime model of Figure 12(c).
//! * [`SuperCapacitor`] — an ideal capacitor plus equivalent-series
//!   resistance, giving the linear discharge-voltage ramp of Figure 5, the
//!   90–95 % round-trip efficiency of Figure 3, and effectively unbounded
//!   charge current (the property behind HEB's renewable-utilisation
//!   gains in Figure 12(d)).
//! * [`LithiumIonBattery`] — the upgrade chemistry Figure 4 prices:
//!   high coulombic efficiency, fast charging, no kinetic recovery
//!   bottleneck, several times lead-acid's cycle life.
//! * [`Bank`] — parallel composition of identical devices into the
//!   battery pool and SC pool that the HEB controller dispatches.
//!
//! All flows are power-over-a-timestep: the controller asks a device to
//! source (or sink) `P` watts for `dt` seconds and receives a
//! [`DischargeResult`]/[`ChargeResult`] accounting for every joule —
//! delivered, drained, and lost — so that crate-level invariants
//! (`delivered + loss == drained`) are property-testable.
//!
//! # Examples
//!
//! ```
//! use heb_esd::{LeadAcidBattery, StorageDevice, SuperCapacitor};
//! use heb_units::{Seconds, Watts};
//!
//! let mut battery = LeadAcidBattery::prototype_string();
//! let mut sc = SuperCapacitor::prototype_module();
//!
//! // Shave a 300 W peak for one second from each device:
//! let from_ba = battery.discharge(Watts::new(300.0), Seconds::new(1.0));
//! let from_sc = sc.discharge(Watts::new(300.0), Seconds::new(1.0));
//!
//! // The super-capacitor wastes far less of what it drains:
//! assert!(from_sc.loss.get() < from_ba.loss.get());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod device;
mod lead_acid;
mod li_ion;
mod lifetime;
mod peukert;
mod supercap;

pub use bank::Bank;
pub use device::{ChargeResult, DischargeResult, StorageDevice};
pub use lead_acid::{LeadAcidBattery, LeadAcidParams, ThermalParams};
pub use li_ion::{LiIonParams, LithiumIonBattery};
pub use lifetime::{AhThroughputModel, LifetimeParams};
pub use peukert::{effective_capacity, peukert_runtime};
pub use supercap::{SuperCapacitor, SuperCapacitorParams};
