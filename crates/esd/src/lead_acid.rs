//! Lead-acid battery model: KiBaM kinetics + Shepherd-style voltage.
//!
//! The model reproduces the four battery behaviours the paper's
//! characterisation (Section 3.1) turns into design constraints:
//!
//! 1. **Rate-capacity (Peukert) effect** — at high discharge current the
//!    available well of the kinetic battery model (KiBaM) empties faster
//!    than bound charge can migrate in, so less total energy is usable.
//! 2. **Recovery effect** — during idle periods bound charge migrates
//!    back into the available well, "recovering" energy that seemed lost
//!    (Figure 3's +6–24 % recovered efficiency).
//! 3. **Sharp voltage knee under load** — terminal voltage is open-circuit
//!    voltage minus an SoC-dependent internal drop, collapsing under the
//!    combination of high current and low SoC (Figure 5).
//! 4. **Bounded charge acceptance** — charging current is capped at a
//!    C-rate limit with a taper near full, which is what throttles
//!    renewable-valley absorption (Section 2.2).

use crate::device::{ChargeResult, DischargeResult, StorageDevice};
use crate::lifetime::{AhThroughputModel, LifetimeParams};
use heb_units::{AmpHours, Amps, Joules, Ohms, Ratio, Seconds, Volts, Watts, SECONDS_PER_HOUR};

/// Electrical and kinetic parameters of a lead-acid string.
#[derive(Debug, Clone, PartialEq)]
pub struct LeadAcidParams {
    /// Nominal string voltage used for capacity bookkeeping (24 V in the
    /// prototype).
    pub nominal_voltage: Volts,
    /// Nameplate capacity at the 20-hour rate.
    pub capacity: AmpHours,
    /// KiBaM available-well fraction `c` (0 < c < 1).
    pub kibam_c: f64,
    /// KiBaM rate constant `k'` in 1/s governing well-to-well charge
    /// migration (and thus recovery speed).
    pub kibam_k: f64,
    /// Base ohmic internal resistance.
    pub internal_resistance: Ohms,
    /// Concentration-polarisation coefficient: the effective resistance
    /// grows as `polarization / (h₁ + 0.08)` where `h₁` is the
    /// available-well fullness, producing the voltage knee under
    /// sustained load and its recovery after rest.
    pub polarization: Ohms,
    /// Open-circuit voltage when full.
    pub ocv_full: Volts,
    /// Open-circuit voltage when (physically) empty.
    pub ocv_empty: Volts,
    /// Low-voltage cutoff: discharge current is limited so the terminal
    /// voltage never drops below this.
    pub cutoff_voltage: Volts,
    /// Coulombic efficiency of charging (gassing losses).
    pub coulombic_efficiency: Ratio,
    /// Maximum charging C-rate (fraction of capacity per hour).
    pub max_charge_c_rate: f64,
    /// Management depth-of-discharge limit: the controller never draws
    /// the battery below `1 − dod_limit` of nameplate charge.
    pub dod_limit: Ratio,
    /// Ah-throughput lifetime parameters.
    pub lifetime: LifetimeParams,
    /// Thermal parameters: overheating is what physically caps charging
    /// current ("batteries cannot be re-charged very fast with large
    /// charging current"), and heat accelerates plate wear.
    pub thermal: ThermalParams,
}

/// Lumped thermal model of a battery string: internal losses heat one
/// thermal mass that Newton-cools to ambient; charging derates linearly
/// between the derate-onset and shutdown temperatures; wear accelerates
/// with temperature (the classic lead-acid rule of thumb: life halves
/// per +10 K over 25 °C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Thermal capacitance of the string, J/K.
    pub capacitance_j_per_k: f64,
    /// Thermal resistance to ambient, K/W.
    pub resistance_k_per_w: f64,
    /// Temperature at which charge-current derating begins, °C.
    pub derate_onset_c: f64,
    /// Temperature at which charging is cut entirely, °C.
    pub charge_cutoff_c: f64,
    /// Extra wear per kelvin above 25 °C (0.07 ≈ the half-life-per-10-K
    /// rule linearised).
    pub wear_per_kelvin: f64,
}

impl ThermalParams {
    /// Defaults for a small enclosed 24 V string.
    #[must_use]
    pub fn prototype() -> Self {
        Self {
            ambient_c: 25.0,
            capacitance_j_per_k: 6_000.0,
            resistance_k_per_w: 1.0,
            derate_onset_c: 40.0,
            charge_cutoff_c: 55.0,
            wear_per_kelvin: 0.07,
        }
    }
}

impl LeadAcidParams {
    /// The 24 V / 8 Ah deep-cycle string of the scale-down prototype.
    #[must_use]
    pub fn prototype_string() -> Self {
        let capacity = AmpHours::new(8.0);
        Self {
            nominal_voltage: Volts::new(24.0),
            capacity,
            kibam_c: 0.55,
            kibam_k: 3.0e-4,
            internal_resistance: Ohms::new(0.12),
            polarization: Ohms::new(0.09),
            ocv_full: Volts::new(25.2),
            ocv_empty: Volts::new(23.1),
            cutoff_voltage: Volts::new(21.0),
            coulombic_efficiency: Ratio::new_clamped(0.85),
            max_charge_c_rate: 0.12,
            dod_limit: Ratio::new_clamped(0.8),
            lifetime: LifetimeParams::deep_cycle_lead_acid(capacity),
            thermal: ThermalParams::prototype(),
        }
    }

    /// Prototype string scaled to a different nameplate capacity, with
    /// internal resistance scaled inversely (bigger banks have more
    /// parallel paths).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    #[must_use]
    pub fn with_capacity(capacity: AmpHours) -> Self {
        assert!(capacity.get() > 0.0, "capacity must be positive");
        let base = Self::prototype_string();
        let scale = base.capacity / capacity;
        Self {
            capacity,
            internal_resistance: base.internal_resistance * scale,
            polarization: base.polarization * scale,
            lifetime: LifetimeParams::deep_cycle_lead_acid(capacity),
            ..base
        }
    }

    /// Same parameters with a different management DoD limit (used by the
    /// capacity-planning sweeps of Figures 13–14).
    #[must_use]
    pub fn with_dod_limit(mut self, dod: Ratio) -> Self {
        self.dod_limit = dod;
        self
    }

    fn validate(&self) {
        assert!(
            self.kibam_c > 0.0 && self.kibam_c < 1.0,
            "KiBaM c must be in (0, 1)"
        );
        assert!(self.kibam_k > 0.0, "KiBaM k must be positive");
        assert!(self.capacity.get() > 0.0, "capacity must be positive");
        assert!(
            self.ocv_full > self.ocv_empty,
            "full OCV must exceed empty OCV"
        );
        assert!(
            self.cutoff_voltage < self.ocv_empty,
            "cutoff must sit below the empty OCV"
        );
    }
}

/// A simulated lead-acid battery string.
///
/// # Examples
///
/// ```
/// use heb_esd::{LeadAcidBattery, StorageDevice};
/// use heb_units::{Seconds, Watts};
///
/// let mut battery = LeadAcidBattery::prototype_string();
/// let full = battery.available_energy();
/// let step = battery.discharge(Watts::new(120.0), Seconds::new(60.0));
/// assert!(step.delivered.get() > 0.0);
/// assert!(battery.available_energy() < full);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeadAcidBattery {
    params: LeadAcidParams,
    /// Available-well charge in coulombs.
    y1: f64,
    /// Bound-well charge in coulombs.
    y2: f64,
    /// String temperature, °C.
    temperature_c: f64,
    lifetime: AhThroughputModel,
}

impl LeadAcidBattery {
    /// Creates a full battery from `params`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see
    /// [`LeadAcidParams`] field docs for the constraints).
    #[must_use]
    pub fn new(params: LeadAcidParams) -> Self {
        params.validate();
        let q_max = params.capacity.as_coulombs().get();
        let lifetime = AhThroughputModel::new(params.lifetime);
        Self {
            y1: params.kibam_c * q_max,
            y2: (1.0 - params.kibam_c) * q_max,
            temperature_c: params.thermal.ambient_c,
            params,
            lifetime,
        }
    }

    /// A full 24 V / 8 Ah prototype string.
    #[must_use]
    pub fn prototype_string() -> Self {
        Self::new(LeadAcidParams::prototype_string())
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &LeadAcidParams {
        &self.params
    }

    /// The lifetime (Ah-throughput) accounting for this battery.
    #[must_use]
    pub fn lifetime(&self) -> &AhThroughputModel {
        &self.lifetime
    }

    /// Current string temperature in °C.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Advances the lumped thermal state: internal `loss` heats the
    /// mass, Newton cooling pulls it toward ambient.
    fn advance_thermal(&mut self, loss: Joules, dt: f64) {
        let t = &self.params.thermal;
        let cooling = (self.temperature_c - t.ambient_c) / t.resistance_k_per_w;
        let net = loss.get() / dt.max(1e-9) - cooling;
        self.temperature_c += net * dt / t.capacitance_j_per_k;
        self.temperature_c = self.temperature_c.max(t.ambient_c - 5.0);
    }

    /// Charge-current multiplier from thermal derating: 1 below the
    /// onset, linearly to 0 at the cutoff.
    fn thermal_charge_derate(&self) -> f64 {
        let t = &self.params.thermal;
        if self.temperature_c <= t.derate_onset_c {
            1.0
        } else if self.temperature_c >= t.charge_cutoff_c {
            0.0
        } else {
            (t.charge_cutoff_c - self.temperature_c) / (t.charge_cutoff_c - t.derate_onset_c)
        }
    }

    /// Wear multiplier from operating temperature.
    fn thermal_wear_factor(&self) -> f64 {
        1.0 + self.params.thermal.wear_per_kelvin * (self.temperature_c - 25.0).max(0.0)
    }

    /// Sets the stored charge to `soc` of nameplate, distributed between
    /// wells at their equilibrium ratio. Intended for experiment setup.
    pub fn set_soc(&mut self, soc: Ratio) {
        let q = soc.get() * self.q_max();
        self.y1 = self.params.kibam_c * q;
        self.y2 = (1.0 - self.params.kibam_c) * q;
    }

    /// Total stored charge in coulombs (both wells).
    fn q_total(&self) -> f64 {
        self.y1 + self.y2
    }

    /// Nameplate charge in coulombs.
    fn q_max(&self) -> f64 {
        self.params.capacity.as_coulombs().get()
    }

    /// Management floor in coulombs (`1 − DoD` of nameplate).
    fn q_floor(&self) -> f64 {
        (1.0 - self.params.dod_limit.get()) * self.q_max()
    }

    /// Physical state of charge (total charge over nameplate).
    fn physical_soc(&self) -> f64 {
        (self.q_total() / self.q_max()).clamp(0.0, 1.0)
    }

    /// Fullness of the available well — the driver of concentration
    /// polarisation. Coincides with total SoC at well equilibrium, but
    /// collapses faster under sustained high current and *recovers*
    /// during rest, which is exactly the paper's recovery effect.
    fn available_fullness(&self) -> f64 {
        let cap = self.params.kibam_c * self.q_max();
        if cap <= 0.0 {
            0.0
        } else {
            (self.y1 / cap).clamp(0.0, 1.0)
        }
    }

    /// Effective series resistance: base ohmic plus concentration
    /// polarisation keyed to available-well fullness.
    fn effective_resistance(&self) -> Ohms {
        let h1 = self.available_fullness();
        self.params.internal_resistance + self.params.polarization / (h1 + 0.08) * 1.0
    }

    fn ocv(&self) -> Volts {
        let soc = self.physical_soc();
        self.params.ocv_empty + (self.params.ocv_full - self.params.ocv_empty) * soc
    }

    /// Advances the KiBaM wells under constant current `i` (positive =
    /// discharge) for `dt`, clamping wells to their physical bounds.
    fn advance_wells(&mut self, i: f64, dt: f64) {
        let (a1, b1) = self.kinetic_coefficients(dt);
        let k = self.params.kibam_k;
        let c = self.params.kibam_c;
        let e = (-k * dt).exp();
        let q0 = self.q_total();
        let y1 = a1 - i * b1;
        let y2 = self.y2 * e + q0 * (1.0 - c) * (1.0 - e) - i * (1.0 - c) * (k * dt - 1.0 + e) / k;
        self.y1 = y1.clamp(0.0, c * self.q_max());
        self.y2 = y2.clamp(0.0, (1.0 - c) * self.q_max());
    }

    /// Coefficients of the affine map `y1(dt; i) = A1 − i·B1` given by the
    /// closed-form KiBaM solution for constant current.
    fn kinetic_coefficients(&self, dt: f64) -> (f64, f64) {
        let k = self.params.kibam_k;
        let c = self.params.kibam_c;
        let e = (-k * dt).exp();
        let q0 = self.q_total();
        let a1 = self.y1 * e + q0 * c * (1.0 - e);
        let b1 = (1.0 - e) / k + c * (k * dt - 1.0 + e) / k;
        (a1, b1)
    }

    /// The largest discharge current sustainable for `dt` seconds given
    /// kinetic availability, the voltage cutoff, and the DoD floor.
    fn max_discharge_current(&self, dt: f64) -> f64 {
        let (a1, b1) = self.kinetic_coefficients(dt);
        let i_kinetic = if b1 > 0.0 { a1 / b1 } else { 0.0 };
        let r = self.effective_resistance().get();
        let i_voltage = (self.ocv() - self.params.cutoff_voltage).get() / r;
        let i_dod = (self.q_total() - self.q_floor()).max(0.0) / dt;
        i_kinetic.min(i_voltage).min(i_dod).max(0.0)
    }

    /// The largest charging current acceptable for `dt` seconds given the
    /// C-rate cap, remaining headroom, and the kinetic acceptance limit.
    ///
    /// The kinetic bound is the charge-side mirror of the discharge
    /// limit: the available well can only take charge up to its own
    /// capacity; beyond that, acceptance is paced by how fast charge
    /// migrates into the bound well — the real absorption-phase taper
    /// of lead-acid charging.
    fn max_charge_current(&self, dt: f64) -> f64 {
        let i_cap = self.params.max_charge_c_rate * self.params.capacity.get();
        let ce = self.params.coulombic_efficiency.get().max(1e-6);
        let headroom_q = (self.q_max() - self.q_total()).max(0.0);
        let i_fill = headroom_q / (ce * dt);
        // Kinetic acceptance: keep y1(dt) within the available well.
        let (a1, b1) = self.kinetic_coefficients(dt);
        let y1_cap = self.params.kibam_c * self.q_max();
        let i_accept = if b1 > 0.0 {
            ((y1_cap - a1) / (b1 * ce)).max(0.0)
        } else {
            0.0
        };
        let derate = self.thermal_charge_derate();
        (i_cap * derate).min(i_fill).min(i_accept).max(0.0)
    }
}

impl StorageDevice for LeadAcidBattery {
    fn usable_capacity(&self) -> Joules {
        let usable_ah = self.params.capacity * self.params.dod_limit.get();
        usable_ah.energy_at(self.params.nominal_voltage)
    }

    fn available_energy(&self) -> Joules {
        let q = (self.q_total() - self.q_floor()).max(0.0);
        AmpHours::new(q / SECONDS_PER_HOUR).energy_at(self.params.nominal_voltage)
    }

    fn headroom(&self) -> Joules {
        let q = (self.q_max() - self.q_total()).max(0.0);
        AmpHours::new(q / SECONDS_PER_HOUR).energy_at(self.params.nominal_voltage)
    }

    fn max_discharge_power(&self) -> Watts {
        let i = self.max_discharge_current(1.0);
        let v = self.ocv() - Amps::new(i) * self.effective_resistance();
        (Amps::new(i) * v).max(Watts::zero())
    }

    fn max_charge_power(&self) -> Watts {
        let i = self.max_charge_current(1.0);
        let v = self.ocv() + Amps::new(i) * self.effective_resistance();
        Amps::new(i) * v
    }

    fn open_circuit_voltage(&self) -> Volts {
        self.ocv()
    }

    fn loaded_voltage(&self, load: Watts) -> Volts {
        let r = self.effective_resistance();
        let ocv = self.ocv();
        // Fixed-point solve of V = OCV − (P/V)·R.
        let mut v = ocv;
        for _ in 0..4 {
            let i = load / v;
            v = ocv - i * r;
            if v < self.params.cutoff_voltage {
                return self.params.cutoff_voltage;
            }
        }
        v
    }

    fn discharge(&mut self, request: Watts, dt: Seconds) -> DischargeResult {
        let dt_s = dt.get();
        if dt_s <= 0.0 {
            return DischargeResult::none();
        }
        if request.get() <= 0.0 || self.is_depleted() {
            self.idle(dt);
            return DischargeResult::none();
        }
        let ocv = self.ocv();
        let r = self.effective_resistance();
        // Fixed-point current solve, then apply limits.
        let mut i = (request / ocv).get();
        for _ in 0..3 {
            let v = (ocv - Amps::new(i) * r).max(self.params.cutoff_voltage);
            i = (request / v).get();
        }
        let soc_before = self.soc();
        let i = i.min(self.max_discharge_current(dt_s));
        if i <= 0.0 {
            self.idle(dt);
            return DischargeResult::none();
        }
        let v_loaded = (ocv - Amps::new(i) * r).max(self.params.cutoff_voltage);
        self.advance_wells(i, dt_s);

        let ah = AmpHours::new(i * dt_s / SECONDS_PER_HOUR);
        let c_rate = i / self.params.capacity.get();
        // Heat accelerates plate wear: scale the recorded amp-hours.
        let ah_weighted = ah * self.thermal_wear_factor();
        self.lifetime
            .record_discharge(ah_weighted, soc_before, c_rate);
        self.lifetime.advance(dt);

        let drained = Joules::new(i * ocv.get() * dt_s);
        let delivered = Joules::new(i * v_loaded.get() * dt_s);
        let loss = drained - delivered;
        self.advance_thermal(loss, dt_s);
        DischargeResult {
            delivered,
            drained,
            loss,
        }
    }

    fn charge(&mut self, offered: Watts, dt: Seconds) -> ChargeResult {
        let dt_s = dt.get();
        if dt_s <= 0.0 {
            return ChargeResult::none();
        }
        if offered.get() <= 0.0 || self.is_full() {
            self.idle(dt);
            return ChargeResult::none();
        }
        let ocv = self.ocv();
        let r = self.effective_resistance();
        let mut i = (offered / ocv).get();
        for _ in 0..3 {
            let v = ocv + Amps::new(i) * r;
            i = (offered / v).get();
        }
        let i = i.min(self.max_charge_current(dt_s));
        if i <= 0.0 {
            self.idle(dt);
            return ChargeResult::none();
        }
        let ce = self.params.coulombic_efficiency.get();
        let v_charge = ocv + Amps::new(i) * r;
        // Gassing: only `ce` of the current becomes stored charge.
        self.advance_wells(-i * ce, dt_s);
        self.lifetime.advance(dt);

        let drawn = Joules::new(i * v_charge.get() * dt_s);
        let stored = Joules::new(i * ce * ocv.get() * dt_s);
        let loss = drawn - stored;
        self.advance_thermal(loss, dt_s);
        ChargeResult {
            drawn,
            stored,
            loss,
        }
    }

    fn idle(&mut self, dt: Seconds) {
        if dt.get() > 0.0 {
            self.advance_wells(0.0, dt.get());
            self.advance_thermal(Joules::zero(), dt.get());
            self.lifetime.advance(dt);
        }
    }

    fn idle_settled(&mut self, dt: Seconds) -> bool {
        if dt.get() <= 0.0 {
            // idle() is a no-op for non-positive dt.
            return true;
        }
        let before = (
            self.y1.to_bits(),
            self.y2.to_bits(),
            self.temperature_c.to_bits(),
        );
        StorageDevice::idle(self, dt);
        before
            == (
                self.y1.to_bits(),
                self.y2.to_bits(),
                self.temperature_c.to_bits(),
            )
    }

    fn idle_accumulate(&mut self, dt: Seconds, n: u64) {
        if dt.get() <= 0.0 {
            return;
        }
        // Wells and thermal state are at a bitwise fixed point (the
        // idle_settled contract); only the calendar-life clock still
        // advances. Repeated `+= dt` is not `n·dt` in floating point,
        // so the adds are replayed one per tick.
        for _ in 0..n {
            self.lifetime.advance(dt);
        }
    }

    fn degrade(&mut self, capacity_fade: Ratio, resistance_growth: f64) {
        // Sulfation: the nameplate shrinks and the series resistance
        // grows. Stored charge above the shrunken wells is lost to the
        // plates (it was never dispatched, so the energy books — which
        // only track flows — stay balanced).
        let keep = (1.0 - capacity_fade.get()).max(0.01);
        self.params.capacity = AmpHours::new(self.params.capacity.get() * keep);
        let growth = 1.0 + resistance_growth.max(0.0);
        self.params.internal_resistance = self.params.internal_resistance * growth;
        self.params.polarization = self.params.polarization * growth;
        let q_max = self.q_max();
        let c = self.params.kibam_c;
        self.y1 = self.y1.clamp(0.0, c * q_max);
        self.y2 = self.y2.clamp(0.0, (1.0 - c) * q_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Seconds = Seconds::new(1.0);

    fn drain_fully(b: &mut LeadAcidBattery, power: Watts) -> Joules {
        let mut total = Joules::zero();
        for _ in 0..200_000 {
            let r = b.discharge(power, TICK);
            if r.is_empty() {
                break;
            }
            total += r.delivered;
        }
        total
    }

    #[test]
    fn starts_full() {
        let b = LeadAcidBattery::prototype_string();
        assert!((b.soc().get() - 1.0).abs() < 1e-9);
        assert!(b.is_full());
        assert!(!b.is_depleted());
        // 8 Ah * 0.8 DoD * 24 V = 153.6 Wh usable.
        assert!((b.usable_capacity().as_watt_hours().get() - 153.6).abs() < 1e-6);
    }

    #[test]
    fn discharge_accounting_is_conservative() {
        let mut b = LeadAcidBattery::prototype_string();
        let r = b.discharge(Watts::new(150.0), TICK);
        assert!(r.delivered.get() > 0.0);
        assert!(r.loss.get() > 0.0);
        assert!(((r.delivered + r.loss) - r.drained).get().abs() < 1e-9);
    }

    #[test]
    fn charge_accounting_is_conservative() {
        let mut b = LeadAcidBattery::prototype_string();
        b.set_soc(Ratio::HALF);
        let r = b.charge(Watts::new(40.0), TICK);
        assert!(r.stored.get() > 0.0);
        assert!(((r.stored + r.loss) - r.drawn).get().abs() < 1e-9);
    }

    #[test]
    fn rate_capacity_effect() {
        // The same battery delivers less total energy at 4x the power.
        let mut slow = LeadAcidBattery::prototype_string();
        let mut fast = LeadAcidBattery::prototype_string();
        let e_slow = drain_fully(&mut slow, Watts::new(40.0));
        let e_fast = drain_fully(&mut fast, Watts::new(160.0));
        assert!(
            e_fast.get() < e_slow.get() * 0.97,
            "high-rate discharge should forfeit usable energy: slow={} fast={}",
            e_slow.as_watt_hours(),
            e_fast.as_watt_hours()
        );
    }

    #[test]
    fn recovery_effect() {
        // Drain hard until the available well starves (sustained power
        // collapses), rest, then verify the battery can again sustain a
        // load it could not before the rest.
        let mut b = LeadAcidBattery::prototype_string();
        for _ in 0..200_000 {
            let r = b.discharge(Watts::new(220.0), TICK);
            // Stop when the battery can no longer sustain half the load.
            if r.delivered.get() < 110.0 {
                break;
            }
        }
        let starved = b.max_discharge_power();
        assert!(
            starved.get() < 150.0,
            "battery should be kinetically starved, still offers {starved}"
        );
        b.idle(Seconds::from_hours(2.0));
        let recovered = b.max_discharge_power();
        assert!(
            recovered.get() > starved.get() + 20.0,
            "rest should recover deliverable power: {starved} -> {recovered}"
        );
    }

    #[test]
    fn voltage_sags_with_load_and_soc() {
        let b = LeadAcidBattery::prototype_string();
        let v_idle = b.loaded_voltage(Watts::zero());
        let v_loaded = b.loaded_voltage(Watts::new(250.0));
        assert!(v_loaded < v_idle);

        let mut low = LeadAcidBattery::prototype_string();
        low.set_soc(Ratio::new_clamped(0.3));
        // Same load sags more at low SoC (higher effective resistance).
        let sag_full = v_idle - v_loaded;
        let sag_low = low.open_circuit_voltage() - low.loaded_voltage(Watts::new(250.0));
        assert!(sag_low > sag_full);
    }

    #[test]
    fn voltage_respects_cutoff() {
        let mut b = LeadAcidBattery::prototype_string();
        b.set_soc(Ratio::new_clamped(0.25));
        let v = b.loaded_voltage(Watts::new(2_000.0));
        assert!(v >= b.params().cutoff_voltage);
    }

    #[test]
    fn charge_current_is_capped() {
        let mut b = LeadAcidBattery::prototype_string();
        b.set_soc(Ratio::new_clamped(0.3));
        // Offer far more than the 0.25C cap can absorb.
        let r = b.charge(Watts::new(10_000.0), TICK);
        let i_cap = 0.25 * 8.0; // amps
        let max_drawn = i_cap * (b.params().ocv_full.get() + 1.0) * 1.0;
        assert!(
            r.drawn.get() <= max_drawn,
            "drawn {} exceeds C-rate cap bound {max_drawn}",
            r.drawn.get()
        );
    }

    #[test]
    fn dod_floor_is_respected() {
        let mut b = LeadAcidBattery::prototype_string();
        let _ = drain_fully(&mut b, Watts::new(30.0));
        // Physical charge never drops below 20 % of nameplate.
        assert!(b.q_total() >= b.q_floor() - 1.0);
        assert!(b.is_depleted());
    }

    #[test]
    fn round_trip_efficiency_in_lead_acid_band() {
        let mut b = LeadAcidBattery::prototype_string();
        b.set_soc(Ratio::HALF);
        // Charge for a while, then discharge the same stored energy out.
        let mut drawn = Joules::zero();
        let mut stored = Joules::zero();
        for _ in 0..3600 {
            let r = b.charge(Watts::new(45.0), TICK);
            drawn += r.drawn;
            stored += r.stored;
        }
        let mut delivered = Joules::zero();
        let mut drained = Joules::zero();
        while drained < stored {
            let r = b.discharge(Watts::new(100.0), TICK);
            if r.is_empty() {
                break;
            }
            delivered += r.delivered;
            drained += r.drained;
        }
        let round_trip = delivered.get() / drawn.get();
        assert!(
            (0.6..0.88).contains(&round_trip),
            "lead-acid round trip should be distinctly below SC levels, got {round_trip}"
        );
    }

    #[test]
    fn discharge_zero_is_idle() {
        let mut b = LeadAcidBattery::prototype_string();
        let before = b.available_energy();
        let r = b.discharge(Watts::zero(), Seconds::new(100.0));
        assert!(r.is_empty());
        assert_eq!(b.available_energy(), before);
    }

    #[test]
    fn lifetime_accrues_only_on_discharge() {
        let mut b = LeadAcidBattery::prototype_string();
        b.idle(Seconds::from_hours(1.0));
        assert_eq!(b.lifetime().raw_throughput(), AmpHours::zero());
        let _ = b.discharge(Watts::new(100.0), Seconds::new(60.0));
        assert!(b.lifetime().raw_throughput().get() > 0.0);
    }

    #[test]
    fn with_capacity_scales_resistance() {
        let small = LeadAcidParams::with_capacity(AmpHours::new(4.0));
        let large = LeadAcidParams::with_capacity(AmpHours::new(16.0));
        assert!(small.internal_resistance > large.internal_resistance);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LeadAcidParams::with_capacity(AmpHours::zero());
    }

    #[test]
    fn temperature_rises_under_load_and_cools_at_rest() {
        let mut b = LeadAcidBattery::prototype_string();
        assert_eq!(b.temperature_c(), 25.0);
        for _ in 0..1800 {
            let _ = b.discharge(Watts::new(300.0), TICK);
        }
        let hot = b.temperature_c();
        assert!(
            hot > 25.5,
            "sustained 300 W should heat the string, got {hot}"
        );
        b.idle(Seconds::from_hours(4.0));
        assert!(
            b.temperature_c() < hot && b.temperature_c() < 26.0,
            "string should cool toward ambient, got {}",
            b.temperature_c()
        );
    }

    #[test]
    fn hot_battery_derates_charging() {
        let mut cool = LeadAcidBattery::prototype_string();
        cool.set_soc(Ratio::HALF);
        let mut hot = cool.clone();
        hot.temperature_c = 50.0;
        let r_cool = cool.charge(Watts::new(60.0), TICK);
        let r_hot = hot.charge(Watts::new(60.0), TICK);
        assert!(
            r_hot.drawn.get() < 0.5 * r_cool.drawn.get(),
            "50 degC charge {} should be well under cool charge {}",
            r_hot.drawn.get(),
            r_cool.drawn.get()
        );
        let mut cooked = cool.clone();
        cooked.temperature_c = 60.0;
        let r_cooked = cooked.charge(Watts::new(60.0), TICK);
        assert!(r_cooked.is_empty(), "charging past cutoff must stop");
    }

    #[test]
    fn heat_accelerates_wear() {
        let mut cool = LeadAcidBattery::prototype_string();
        let mut hot = LeadAcidBattery::prototype_string();
        hot.temperature_c = 45.0;
        // Keep the hot one hot by pinning temperature between ticks.
        for _ in 0..600 {
            let _ = cool.discharge(Watts::new(100.0), TICK);
            hot.temperature_c = 45.0;
            let _ = hot.discharge(Watts::new(100.0), TICK);
        }
        assert!(
            hot.lifetime().weighted_throughput() > cool.lifetime().weighted_throughput() * 1.5,
            "45 degC wear {} should far exceed 25 degC wear {}",
            hot.lifetime().weighted_throughput().get(),
            cool.lifetime().weighted_throughput().get()
        );
    }

    #[test]
    fn degrade_fades_capacity_and_grows_resistance() {
        let mut b = LeadAcidBattery::prototype_string();
        let cap_before = b.usable_capacity();
        let r_before = b.effective_resistance();
        b.degrade(Ratio::new_clamped(0.25), 0.5);
        assert!((b.params().capacity.get() - 6.0).abs() < 1e-9);
        assert!(b.usable_capacity() < cap_before);
        assert!(b.effective_resistance() > r_before);
        // Wells were clamped into the shrunken envelope: SoC stays valid
        // and the device still serves load.
        assert!(b.soc().get() <= 1.0 + 1e-9);
        let r = b.discharge(Watts::new(50.0), TICK);
        assert!(r.delivered.get() > 0.0);
        assert!(((r.delivered + r.loss) - r.drained).get().abs() < 1e-9);
    }

    #[test]
    fn degrade_is_bounded_below() {
        let mut b = LeadAcidBattery::prototype_string();
        b.degrade(Ratio::ONE, -2.0);
        // Full fade clamps to a 1 % floor and negative growth is ignored.
        assert!(b.params().capacity.get() > 0.0);
        assert!((b.params().internal_resistance.get() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn max_discharge_power_is_positive_when_charged() {
        let b = LeadAcidBattery::prototype_string();
        assert!(b.max_discharge_power().get() > 100.0);
        let mut empty = LeadAcidBattery::prototype_string();
        let _ = drain_fully(&mut empty, Watts::new(50.0));
        assert!(empty.max_discharge_power().get() < 5.0);
    }
}

#[cfg(test)]
mod idle_span_tests {
    use super::*;

    /// `idle_settled` until fixed, then `idle_accumulate` for the rest,
    /// must be bitwise-identical to the same number of per-tick idles —
    /// the contract the event core's quiet-span fast path builds on.
    fn assert_span_matches_per_tick(mut device: LeadAcidBattery, n: u64) {
        let dt = Seconds::new(1.0);
        let mut per_tick = device.clone();
        for _ in 0..n {
            StorageDevice::idle(&mut per_tick, dt);
        }
        let mut done = 0;
        while done < n {
            let settled = device.idle_settled(dt);
            done += 1;
            if settled {
                break;
            }
        }
        device.idle_accumulate(dt, n - done);
        assert_eq!(device, per_tick);
    }

    #[test]
    fn span_idle_matches_per_tick_idle_from_full() {
        assert_span_matches_per_tick(LeadAcidBattery::prototype_string(), 5_000);
    }

    #[test]
    fn span_idle_matches_per_tick_idle_from_mid_soc() {
        let mut b = LeadAcidBattery::prototype_string();
        b.set_soc(Ratio::new_clamped(0.5));
        assert_span_matches_per_tick(b, 5_000);
    }

    #[test]
    fn span_idle_matches_per_tick_idle_after_discharge() {
        // A fresh discharge leaves the wells off equilibrium and the
        // string warm, so the first idles move real state (recovery and
        // cooling) before the fixed point is reached.
        let mut b = LeadAcidBattery::prototype_string();
        for _ in 0..120 {
            let _ = b.discharge(Watts::new(150.0), Seconds::new(1.0));
        }
        assert_span_matches_per_tick(b, 5_000);
    }

    #[test]
    fn full_battery_is_settled_immediately() {
        // The wells clamp pins a factory-full string at its caps, so the
        // very first idle already reports a fixed point — this is what
        // makes valley fast-forwarding O(1) per tick from the start.
        let mut b = LeadAcidBattery::prototype_string();
        assert!(b.idle_settled(Seconds::new(1.0)));
    }
}
