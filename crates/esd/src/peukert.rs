//! Peukert's-law helpers for battery characterisation.
//!
//! Peukert's law captures the rate-capacity effect of lead-acid
//! batteries: at discharge currents above the rating, the *usable*
//! capacity shrinks — `t = H · (C / (I·H))^k` for a battery rated to
//! deliver capacity `C` over `H` hours, discharged at current `I`, with
//! Peukert exponent `k` (≈1.1–1.3 for lead-acid).
//!
//! The dynamic simulation uses the kinetic battery model (which exhibits
//! this effect emergently); these closed-form helpers back the
//! characterisation analyses behind the paper's Figures 3 and 5 and give
//! the tests an independent oracle.

use heb_units::{AmpHours, Amps, Seconds};

/// Runtime of a battery rated `capacity` over the `rated` discharge
/// duration, discharged at constant `current`, with Peukert exponent
/// `k`.
///
/// # Panics
///
/// Panics if `current`, `capacity`, or `rated` are not positive, or if
/// `k < 1`.
///
/// # Examples
///
/// ```
/// use heb_esd::peukert_runtime;
/// use heb_units::{AmpHours, Amps, Seconds};
///
/// // An 8 Ah (20-hour rate) battery at its rated 0.4 A lasts 20 h...
/// let rated = Seconds::from_hours(20.0);
/// let t = peukert_runtime(AmpHours::new(8.0), rated, Amps::new(0.4), 1.2);
/// assert!((t.as_hours() - 20.0).abs() < 1e-9);
/// // ...but at 10x the current it lasts far less than 2 h:
/// let t = peukert_runtime(AmpHours::new(8.0), rated, Amps::new(4.0), 1.2);
/// assert!(t.as_hours() < 2.0);
/// ```
#[must_use]
pub fn peukert_runtime(capacity: AmpHours, rated: Seconds, current: Amps, k: f64) -> Seconds {
    assert!(capacity.get() > 0.0, "capacity must be positive");
    assert!(rated.get() > 0.0, "rated duration must be positive");
    assert!(current.get() > 0.0, "current must be positive");
    assert!(k >= 1.0, "Peukert exponent must be >= 1");
    let rated_hours = rated.as_hours();
    let hours = rated_hours * (capacity.get() / (current.get() * rated_hours)).powf(k);
    Seconds::from_hours(hours)
}

/// Effective (usable) capacity at a constant discharge `current`:
/// `runtime × current`.
///
/// At the rated current this equals the nameplate capacity; above it,
/// the effective capacity falls off with exponent `k − 1`.
///
/// # Panics
///
/// Same conditions as [`peukert_runtime`].
///
/// # Examples
///
/// ```
/// use heb_esd::effective_capacity;
/// use heb_units::{AmpHours, Amps, Seconds};
///
/// let rated = Seconds::from_hours(20.0);
/// let at_rated = effective_capacity(AmpHours::new(8.0), rated, Amps::new(0.4), 1.2);
/// let at_high = effective_capacity(AmpHours::new(8.0), rated, Amps::new(4.0), 1.2);
/// assert!(at_high < at_rated);
/// ```
#[must_use]
pub fn effective_capacity(capacity: AmpHours, rated: Seconds, current: Amps, k: f64) -> AmpHours {
    let t = peukert_runtime(capacity, rated, current, k);
    AmpHours::new(current.get() * t.as_hours())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rated() -> Seconds {
        Seconds::from_hours(20.0)
    }

    #[test]
    fn rated_current_gives_nameplate_capacity() {
        let cap = effective_capacity(AmpHours::new(8.0), rated(), Amps::new(0.4), 1.25);
        assert!((cap.get() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_monotonically_decreases_with_current() {
        let mut last = f64::INFINITY;
        for i in [0.4, 0.8, 1.6, 3.2, 6.4] {
            let cap = effective_capacity(AmpHours::new(8.0), rated(), Amps::new(i), 1.2).get();
            assert!(cap < last, "capacity must fall as current rises");
            last = cap;
        }
    }

    #[test]
    fn unity_exponent_is_ideal_battery() {
        // k = 1 means no rate-capacity effect at all.
        for i in [0.4, 2.0, 8.0] {
            let cap = effective_capacity(AmpHours::new(8.0), rated(), Amps::new(i), 1.0);
            assert!((cap.get() - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "current must be positive")]
    fn zero_current_panics() {
        let _ = peukert_runtime(AmpHours::new(8.0), rated(), Amps::zero(), 1.2);
    }

    #[test]
    #[should_panic(expected = "Peukert exponent")]
    fn sub_unity_exponent_panics() {
        let _ = peukert_runtime(AmpHours::new(8.0), rated(), Amps::new(1.0), 0.9);
    }
}
