//! Ah-throughput battery-lifetime model (paper Section 7.3, ref. [49]).
//!
//! Lead-acid lifetime is dominated by how much charge is cycled through
//! the plates, not by calendar time alone. The Risø/Bindner
//! *Ah-throughput* model gives a battery a fixed lifetime budget of
//! amp-hours — `rated_cycles × rated_DoD × capacity` — and weights each
//! discharged amp-hour by how stressful the conditions were: discharging
//! at low state-of-charge and at rates above the rated C-rate wears the
//! plates faster. When the weighted throughput reaches the budget the
//! battery is considered worn out.
//!
//! The HEB controller's whole lifetime argument (Figure 12(c), the 4.7×
//! claim) is that routing small peaks to super-capacitors and splitting
//! large peaks removes exactly the high-rate, low-SoC amp-hours that this
//! weighting penalises.

use heb_units::{AmpHours, Ratio, Seconds};

/// Parameters of the Ah-throughput model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeParams {
    /// Cycle life at the rated depth of discharge (datasheet value;
    /// 1500 cycles @ 80 % DoD is typical for deep-cycle lead-acid).
    pub rated_cycles: f64,
    /// Depth of discharge at which `rated_cycles` is specified.
    pub rated_dod: Ratio,
    /// Nameplate capacity of the battery the model tracks.
    pub capacity: AmpHours,
    /// Extra wear per unit of (1 − SoC): discharging near-empty plates
    /// is more damaging. Lead-acid cycle-life-vs-DoD curves are strongly
    /// convex (≈1500 cycles @ 80 % DoD vs ≈6000 @ 20 %), i.e. deep-cycle
    /// amp-hours wear roughly 3–4× more than shallow ones — hence the
    /// default of 3. 0 disables SoC weighting.
    pub low_soc_stress: f64,
    /// Rated discharge C-rate (fraction of capacity per hour, e.g. 0.2
    /// for a C/5 rating). Discharge above this rate is weighted extra.
    pub rated_c_rate: f64,
    /// Extra wear per unit of C-rate above `rated_c_rate`. 0 disables
    /// rate weighting.
    pub over_rate_stress: f64,
    /// Calendar float life — an upper bound on projected lifetime even
    /// for a battery that is never cycled.
    pub float_life: Seconds,
}

impl LifetimeParams {
    /// Deep-cycle lead-acid defaults matching the prototype string.
    #[must_use]
    pub fn deep_cycle_lead_acid(capacity: AmpHours) -> Self {
        Self {
            rated_cycles: 1500.0,
            rated_dod: Ratio::new_clamped(0.8),
            capacity,
            low_soc_stress: 3.0,
            rated_c_rate: 0.2,
            over_rate_stress: 0.8,
            float_life: Seconds::from_hours(20.0 * 365.0 * 24.0),
        }
    }

    /// The total (unweighted) amp-hour budget.
    #[must_use]
    pub fn throughput_budget(&self) -> AmpHours {
        self.capacity * (self.rated_cycles * self.rated_dod.get())
    }
}

/// Running Ah-throughput accounting for one battery.
#[derive(Debug, Clone, PartialEq)]
pub struct AhThroughputModel {
    params: LifetimeParams,
    weighted_throughput: AmpHours,
    raw_throughput: AmpHours,
    elapsed: Seconds,
}

impl AhThroughputModel {
    /// Creates a fresh accounting with zero wear.
    #[must_use]
    pub fn new(params: LifetimeParams) -> Self {
        Self {
            params,
            weighted_throughput: AmpHours::zero(),
            raw_throughput: AmpHours::zero(),
            elapsed: Seconds::zero(),
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &LifetimeParams {
        &self.params
    }

    /// Records `ah` of discharge performed at the given state of charge
    /// and C-rate (fraction of capacity per hour).
    pub fn record_discharge(&mut self, ah: AmpHours, soc: Ratio, c_rate: f64) {
        if ah.get() <= 0.0 {
            return;
        }
        let soc_stress = 1.0 + self.params.low_soc_stress * (1.0 - soc.get()).max(0.0);
        let over_rate = (c_rate - self.params.rated_c_rate).max(0.0);
        let rate_stress = 1.0 + self.params.over_rate_stress * over_rate;
        self.weighted_throughput += ah * (soc_stress * rate_stress);
        self.raw_throughput += ah;
    }

    /// Advances wall-clock time (used by the calendar-life bound).
    pub fn advance(&mut self, dt: Seconds) {
        self.elapsed += dt;
    }

    /// Total simulated time observed so far.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Raw (unweighted) amp-hours discharged so far.
    #[must_use]
    pub fn raw_throughput(&self) -> AmpHours {
        self.raw_throughput
    }

    /// Stress-weighted amp-hours charged against the budget so far.
    #[must_use]
    pub fn weighted_throughput(&self) -> AmpHours {
        self.weighted_throughput
    }

    /// Fraction of the lifetime budget consumed, possibly above 1 for a
    /// battery driven past wear-out.
    #[must_use]
    pub fn life_used(&self) -> Ratio {
        let budget = self.params.throughput_budget();
        if budget.get() <= 0.0 {
            Ratio::ONE
        } else {
            Ratio::new_unclamped(self.weighted_throughput / budget)
        }
    }

    /// Equivalent number of full rated-DoD cycles performed.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        let per_cycle = self.params.capacity * self.params.rated_dod.get();
        if per_cycle.get() <= 0.0 {
            0.0
        } else {
            self.raw_throughput / per_cycle
        }
    }

    /// Projected total lifetime if usage continues at the observed rate,
    /// capped by the calendar float life.
    ///
    /// Returns the float life for a battery with no recorded wear.
    #[must_use]
    pub fn projected_lifetime(&self) -> Seconds {
        let used = self.life_used().get();
        if used <= 0.0 || self.elapsed.get() <= 0.0 {
            return self.params.float_life;
        }
        let projected = self.elapsed / used;
        projected.min(self.params.float_life)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LifetimeParams {
        LifetimeParams::deep_cycle_lead_acid(AmpHours::new(8.0))
    }

    #[test]
    fn budget_matches_datasheet_formula() {
        let p = params();
        // 1500 cycles * 0.8 DoD * 8 Ah
        assert!((p.throughput_budget().get() - 9600.0).abs() < 1e-9);
    }

    #[test]
    fn gentle_discharge_counts_close_to_raw() {
        let mut m = AhThroughputModel::new(params());
        m.record_discharge(AmpHours::new(1.0), Ratio::ONE, 0.1);
        assert!((m.weighted_throughput().get() - 1.0).abs() < 1e-12);
        assert_eq!(m.raw_throughput(), AmpHours::new(1.0));
    }

    #[test]
    fn low_soc_and_high_rate_cost_more() {
        let mut gentle = AhThroughputModel::new(params());
        let mut harsh = AhThroughputModel::new(params());
        gentle.record_discharge(AmpHours::new(1.0), Ratio::ONE, 0.1);
        harsh.record_discharge(AmpHours::new(1.0), Ratio::new_clamped(0.2), 1.0);
        assert!(harsh.weighted_throughput() > gentle.weighted_throughput());
        // harsh weight: (1 + 3*0.8) * (1 + 0.8*(1.0-0.2)) = 3.4 * 1.64
        assert!((harsh.weighted_throughput().get() - 3.4 * 1.64).abs() < 1e-9);
    }

    #[test]
    fn zero_discharge_is_ignored() {
        let mut m = AhThroughputModel::new(params());
        m.record_discharge(AmpHours::zero(), Ratio::HALF, 2.0);
        m.record_discharge(AmpHours::new(-1.0), Ratio::HALF, 2.0);
        assert_eq!(m.raw_throughput(), AmpHours::zero());
        assert_eq!(m.weighted_throughput(), AmpHours::zero());
    }

    #[test]
    fn equivalent_cycles() {
        let mut m = AhThroughputModel::new(params());
        // One full rated cycle = 8 Ah * 0.8 = 6.4 Ah.
        m.record_discharge(AmpHours::new(6.4), Ratio::ONE, 0.1);
        assert!((m.equivalent_cycles() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_scales_with_usage_rate() {
        let mut m = AhThroughputModel::new(params());
        m.advance(Seconds::from_hours(24.0));
        // One day consumed 1% of life -> ~100 days projected.
        let one_percent = params().throughput_budget() * 0.01;
        m.record_discharge(one_percent, Ratio::ONE, 0.1);
        let projected = m.projected_lifetime();
        assert!((projected.as_hours() / 24.0 - 100.0).abs() < 1.0);
    }

    #[test]
    fn projection_capped_by_float_life() {
        let mut m = AhThroughputModel::new(params());
        m.advance(Seconds::from_hours(24.0 * 365.0));
        // A year of time with essentially no wear projects to float life.
        m.record_discharge(AmpHours::new(1e-6), Ratio::ONE, 0.1);
        assert_eq!(m.projected_lifetime(), params().float_life);
    }

    #[test]
    fn unused_battery_projects_float_life() {
        let m = AhThroughputModel::new(params());
        assert_eq!(m.projected_lifetime(), params().float_life);
    }
}
