//! Parallel composition of identical devices into a dispatchable pool.
//!
//! The HEB architecture (Figure 8) pools batteries into a battery bank
//! and super-capacitor modules into an SC pool; the controller addresses
//! each pool as one logical buffer. [`Bank`] implements that aggregation:
//! power requests are split across member devices proportionally to what
//! each can serve, with a redistribution pass so that one depleted member
//! does not strand capacity held by its siblings.

use crate::device::{ChargeResult, DischargeResult, StorageDevice};
use heb_telemetry::{null_recorder, EsdEvent, Event, PoolId, RecorderHandle};
use heb_units::{Joules, Seconds, Volts, Watts};

/// A pool of identical storage devices dispatched as one logical buffer.
///
/// # Examples
///
/// ```
/// use heb_esd::{Bank, StorageDevice, SuperCapacitor};
/// use heb_units::{Seconds, Watts};
///
/// let mut pool = Bank::new(
///     (0..3).map(|_| SuperCapacitor::prototype_module()).collect::<Vec<_>>(),
/// );
/// assert_eq!(pool.len(), 3);
/// let r = pool.discharge(Watts::new(300.0), Seconds::new(1.0));
/// assert!(r.delivered.get() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Bank<D> {
    devices: Vec<D>,
    /// Per-member quarantine flags (fault isolation). A quarantined
    /// member is excluded from aggregates and dispatch but keeps its
    /// state of charge, so restoring it returns exactly the energy it
    /// held — nothing is created or destroyed by isolation itself.
    quarantined: Vec<bool>,
    /// Telemetry sink (default null). Purely observational: it never
    /// influences dispatch, so it is excluded from equality.
    recorder: RecorderHandle,
    /// Which logical pool this bank plays in the telemetry stream;
    /// `None` until [`Bank::set_recorder`] assigns one.
    pool: Option<PoolId>,
    /// Dispatch scratch (per-member weights), recycled call to call so
    /// the per-tick hot path does not allocate. Not state: excluded
    /// from equality.
    scratch_weights: Vec<Watts>,
    /// Dispatch scratch (members driven this call), recycled likewise.
    scratch_used: Vec<bool>,
}

/// Equality is over simulated state only — two banks with the same
/// members and quarantine flags are equal regardless of where their
/// telemetry flows.
impl<D: PartialEq> PartialEq for Bank<D> {
    fn eq(&self, other: &Self) -> bool {
        self.devices == other.devices && self.quarantined == other.quarantined
    }
}

impl<D: StorageDevice> Bank<D> {
    /// Creates a bank from member devices. An empty bank is legal and
    /// behaves as a zero-capacity buffer (useful for `BaOnly`-style
    /// configurations with no SC pool).
    #[must_use]
    pub fn new(devices: Vec<D>) -> Self {
        let quarantined = vec![false; devices.len()];
        Self {
            devices,
            quarantined,
            recorder: null_recorder(),
            pool: None,
            scratch_weights: Vec::new(),
            scratch_used: Vec::new(),
        }
    }

    /// An empty, zero-capacity bank.
    #[must_use]
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// Routes this bank's structural events (quarantine, restore,
    /// ageing) to `recorder`, identified as `pool` in the stream.
    pub fn set_recorder(&mut self, pool: PoolId, recorder: RecorderHandle) {
        self.pool = Some(pool);
        self.recorder = recorder;
    }

    /// Emits an ESD event if recording is on and a pool id was
    /// assigned; with the default null recorder the closure never
    /// runs, so event construction costs nothing.
    fn emit(&self, event: impl FnOnce(PoolId) -> EsdEvent) {
        if let Some(pool) = self.pool {
            if self.recorder.is_enabled() {
                self.recorder.record(&Event::Esd(event(pool)));
            }
        }
    }

    /// Number of member devices (including quarantined ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the bank has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Immutable view of the member devices (including quarantined
    /// ones — check [`Bank::is_quarantined`] before interpreting one as
    /// dispatchable).
    #[must_use]
    pub fn devices(&self) -> &[D] {
        &self.devices
    }

    /// Mutable view of the member devices (for experiment setup such as
    /// presetting SoC).
    pub fn devices_mut(&mut self) -> &mut [D] {
        &mut self.devices
    }

    /// Adds a device to the pool (the architecture's scale-out knob).
    pub fn push(&mut self, device: D) {
        self.devices.push(device);
        self.quarantined.push(false);
    }

    /// Takes member `index` out of service: it stops contributing to
    /// capacity, power limits, and dispatch, but retains its charge.
    /// Returns `false` (and does nothing) if the index is out of range
    /// or the member is already quarantined.
    pub fn quarantine(&mut self, index: usize) -> bool {
        match self.quarantined.get_mut(index) {
            Some(q) if !*q => {
                *q = true;
                self.emit(|pool| EsdEvent::MemberQuarantined {
                    pool,
                    member: index,
                });
                true
            }
            _ => false,
        }
    }

    /// Returns member `index` to service. Returns `false` if the index
    /// is out of range or the member was not quarantined.
    pub fn restore(&mut self, index: usize) -> bool {
        match self.quarantined.get_mut(index) {
            Some(q) if *q => {
                *q = false;
                self.emit(|pool| EsdEvent::MemberRestored {
                    pool,
                    member: index,
                });
                true
            }
            _ => false,
        }
    }

    /// Whether member `index` is currently quarantined (out-of-range
    /// indices read as not quarantined).
    #[must_use]
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.get(index).copied().unwrap_or(false)
    }

    /// Number of members currently quarantined.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// Number of members currently in service.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.devices.len() - self.quarantined_count()
    }

    /// Iterator over the in-service members.
    fn active(&self) -> impl Iterator<Item = &D> {
        self.devices
            .iter()
            .zip(self.quarantined.iter())
            .filter_map(|(d, &q)| (!q).then_some(d))
    }

    /// Whether an offered charge would move no energy through this bank:
    /// every in-service member is full with zero charge acceptance.
    ///
    /// In this state `Bank::charge` with any positive offer reduces to
    /// exactly one [`StorageDevice::idle`] per member (in-service
    /// members through their own full-device charge path, quarantined
    /// members through the untouched-member sweep), which is what lets
    /// the event core fast-forward quiet spans without calling the
    /// dispatch machinery per tick.
    #[must_use]
    pub fn charge_quiescent(&self) -> bool {
        self.devices
            .iter()
            .zip(self.quarantined.iter())
            .all(|(d, &q)| q || (d.is_full() && d.max_charge_power().get() <= 0.0))
    }

    /// Splits `total` across members proportionally to `weight`, calls
    /// `f` per member, and re-offers any shortfall to members the first
    /// pass did not touch. A member is driven **at most once per call**
    /// — each `f` invocation advances that device's internal clock by
    /// `dt`, so re-offering to an already-driven member would make it
    /// live two ticks in one. Members never driven this call idle
    /// instead (battery recovery keeps flowing).
    fn dispatch<R: Copy + Default>(
        &mut self,
        total: Watts,
        dt: Seconds,
        weight: impl Fn(&D) -> Watts,
        mut f: impl FnMut(&mut D, Watts, Seconds) -> R,
        realized: impl Fn(&R) -> Watts,
        mut absorb: impl FnMut(&mut R, R),
    ) -> R {
        let mut acc = R::default();
        if self.devices.is_empty() {
            return acc;
        }
        if total.get() <= 0.0 {
            self.idle(dt);
            return acc;
        }
        // Quarantined members carry zero weight and are skipped by both
        // passes; they idle with the rest of the untouched members.
        let mut weights = std::mem::take(&mut self.scratch_weights);
        weights.clear();
        weights.extend(
            self.devices
                .iter()
                .zip(self.quarantined.iter())
                .map(|(d, &q)| if q { Watts::zero() } else { weight(d) }),
        );
        let cap: Watts = weights.iter().copied().sum();
        let mut used = std::mem::take(&mut self.scratch_used);
        used.clear();
        used.resize(self.devices.len(), false);
        let mut remaining = total;
        // Pass 1: proportional split by capability.
        if cap.get() > 0.0 {
            for (idx, device) in self.devices.iter_mut().enumerate() {
                let share = total * (weights[idx] / cap);
                let share = share.min(remaining);
                if share.get() <= 0.0 {
                    continue;
                }
                let r = f(device, share, dt);
                used[idx] = true;
                remaining -= realized(&r);
                absorb(&mut acc, r);
                if remaining.get() <= 1e-9 {
                    break;
                }
            }
        }
        // Pass 2: offer the shortfall to members pass 1 never drove.
        if remaining.get() > 1e-9 {
            for (idx, device) in self.devices.iter_mut().enumerate() {
                if used[idx] || self.quarantined[idx] {
                    continue;
                }
                let r = f(device, remaining, dt);
                used[idx] = true;
                remaining -= realized(&r);
                absorb(&mut acc, r);
                if remaining.get() <= 1e-9 {
                    break;
                }
            }
        }
        // Untouched members idle so their internal clocks stay aligned.
        for (idx, device) in self.devices.iter_mut().enumerate() {
            if !used[idx] {
                device.idle(dt);
            }
        }
        self.scratch_weights = weights;
        self.scratch_used = used;
        acc
    }
}

impl<D: StorageDevice> StorageDevice for Bank<D> {
    fn usable_capacity(&self) -> Joules {
        self.active().map(StorageDevice::usable_capacity).sum()
    }

    fn available_energy(&self) -> Joules {
        self.active().map(StorageDevice::available_energy).sum()
    }

    fn headroom(&self) -> Joules {
        self.active().map(StorageDevice::headroom).sum()
    }

    fn max_discharge_power(&self) -> Watts {
        self.active().map(StorageDevice::max_discharge_power).sum()
    }

    fn max_charge_power(&self) -> Watts {
        self.active().map(StorageDevice::max_charge_power).sum()
    }

    fn open_circuit_voltage(&self) -> Volts {
        // Members are paralleled behind per-device converters; report the
        // mean in-service member voltage as the pool telemetry value.
        let n = self.active_count();
        if n == 0 {
            return Volts::zero();
        }
        let sum: Volts = self.active().map(StorageDevice::open_circuit_voltage).sum();
        sum / n as f64
    }

    fn loaded_voltage(&self, load: Watts) -> Volts {
        let n = self.active_count();
        if n == 0 {
            return Volts::zero();
        }
        let share = load / n as f64;
        let sum: Volts = self.active().map(|d| d.loaded_voltage(share)).sum();
        sum / n as f64
    }

    fn discharge(&mut self, request: Watts, dt: Seconds) -> DischargeResult {
        if request.get() <= 0.0 {
            self.idle(dt);
            return DischargeResult::none();
        }

        self.dispatch(
            request,
            dt,
            StorageDevice::max_discharge_power,
            |d, p, dt| d.discharge(p, dt),
            |r: &DischargeResult| {
                if dt.get() > 0.0 {
                    r.delivered / dt
                } else {
                    Watts::zero()
                }
            },
            DischargeResult::absorb,
        )
    }

    fn charge(&mut self, offered: Watts, dt: Seconds) -> ChargeResult {
        if offered.get() <= 0.0 {
            self.idle(dt);
            return ChargeResult::none();
        }
        self.dispatch(
            offered,
            dt,
            StorageDevice::max_charge_power,
            |d, p, dt| d.charge(p, dt),
            |r: &ChargeResult| {
                if dt.get() > 0.0 {
                    r.drawn / dt
                } else {
                    Watts::zero()
                }
            },
            ChargeResult::absorb,
        )
    }

    fn idle(&mut self, dt: Seconds) {
        for device in &mut self.devices {
            device.idle(dt);
        }
    }

    /// One batched settling sweep over every member (quarantined ones
    /// included — their clocks advance exactly as [`Bank::idle`] would
    /// advance them). True only when *every* member settled; no
    /// short-circuit, so each member is driven exactly once.
    fn idle_settled(&mut self, dt: Seconds) -> bool {
        let mut settled = true;
        for device in &mut self.devices {
            settled &= device.idle_settled(dt);
        }
        settled
    }

    /// Replays `n` idle steps for every member in one sweep. Valid under
    /// the same contract as the per-device method: only after
    /// [`StorageDevice::idle_settled`] returned `true` for this bank at
    /// the same `dt`, which implies every member settled.
    fn idle_accumulate(&mut self, dt: Seconds, n: u64) {
        for device in &mut self.devices {
            device.idle_accumulate(dt, n);
        }
    }

    fn degrade(&mut self, capacity_fade: heb_units::Ratio, resistance_growth: f64) {
        // Ageing hits every member, quarantined or not — a string on the
        // repair bench fades just like its in-service siblings.
        for device in &mut self.devices {
            device.degrade(capacity_fade, resistance_growth);
        }
        self.emit(|pool| EsdEvent::Degraded {
            pool,
            capacity_fade,
            resistance_growth,
        });
    }
}

impl<D> FromIterator<D> for Bank<D> {
    fn from_iter<I: IntoIterator<Item = D>>(iter: I) -> Self {
        let devices: Vec<D> = iter.into_iter().collect();
        let quarantined = vec![false; devices.len()];
        Self {
            devices,
            quarantined,
            recorder: null_recorder(),
            pool: None,
            scratch_weights: Vec::new(),
            scratch_used: Vec::new(),
        }
    }
}

impl<D> Extend<D> for Bank<D> {
    fn extend<I: IntoIterator<Item = D>>(&mut self, iter: I) {
        self.devices.extend(iter);
        self.quarantined.resize(self.devices.len(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LeadAcidBattery, SuperCapacitor};
    use heb_units::Ratio;

    const TICK: Seconds = Seconds::new(1.0);

    fn sc_bank(n: usize) -> Bank<SuperCapacitor> {
        (0..n).map(|_| SuperCapacitor::prototype_module()).collect()
    }

    #[test]
    fn empty_bank_is_inert() {
        let mut bank: Bank<SuperCapacitor> = Bank::empty();
        assert!(bank.is_empty());
        assert!(bank.usable_capacity().is_zero());
        assert!(bank.discharge(Watts::new(100.0), TICK).is_empty());
        assert!(bank.charge(Watts::new(100.0), TICK).is_empty());
        assert_eq!(bank.open_circuit_voltage(), Volts::zero());
    }

    #[test]
    fn charge_quiescence_tracks_headroom_and_quarantine() {
        let mut bank = sc_bank(2);
        // Factory-full modules accept nothing: quiescent.
        assert!(bank.charge_quiescent());
        // Drain one member; it now has headroom and a nonzero charge cap.
        let _ = bank.devices_mut()[0].discharge(Watts::new(100.0), TICK);
        assert!(!bank.charge_quiescent());
        // Quarantining the drained member removes it from dispatch, so
        // the bank is quiescent again even though the member could charge.
        assert!(bank.quarantine(0));
        assert!(bank.charge_quiescent());
        assert!(bank.restore(0));
        assert!(!bank.charge_quiescent());
        // An empty bank has nothing to charge.
        assert!(Bank::<SuperCapacitor>::empty().charge_quiescent());
    }

    #[test]
    fn capacity_aggregates() {
        let bank = sc_bank(3);
        let single = SuperCapacitor::prototype_module();
        assert!((bank.usable_capacity().get() - 3.0 * single.usable_capacity().get()).abs() < 1e-6);
    }

    #[test]
    fn discharge_splits_across_members() {
        let mut bank = sc_bank(2);
        let r = bank.discharge(Watts::new(200.0), TICK);
        assert!((r.delivered.get() - 200.0).abs() < 5.0);
        let socs: Vec<f64> = bank.devices().iter().map(|d| d.soc().get()).collect();
        assert!((socs[0] - socs[1]).abs() < 1e-6, "equal split expected");
    }

    #[test]
    fn shortfall_redistributes_to_charged_members() {
        let mut bank = sc_bank(2);
        bank.devices_mut()[0].set_soc(Ratio::ZERO);
        let r = bank.discharge(Watts::new(200.0), TICK);
        // Member 1 must cover (nearly) the whole request.
        assert!(
            r.delivered.get() > 190.0,
            "got only {} W·s",
            r.delivered.get()
        );
    }

    #[test]
    fn charge_respects_member_limits() {
        let mut bank: Bank<LeadAcidBattery> = (0..2)
            .map(|_| LeadAcidBattery::prototype_string())
            .collect();
        for d in bank.devices_mut() {
            d.set_soc(Ratio::HALF);
        }
        let r = bank.charge(Watts::new(10_000.0), TICK);
        // Two strings at 0.25C (2 A) each accept well under 10 kW.
        assert!(r.drawn.get() < 300.0);
        assert!(r.stored.get() > 0.0);
    }

    #[test]
    fn bank_of_batteries_recovers_when_idle() {
        let mut bank: Bank<LeadAcidBattery> = (0..2)
            .map(|_| LeadAcidBattery::prototype_string())
            .collect();
        for _ in 0..20_000 {
            if bank.discharge(Watts::new(400.0), TICK).is_empty() {
                break;
            }
        }
        let exhausted = bank.max_discharge_power();
        bank.idle(Seconds::from_hours(1.0));
        assert!(bank.max_discharge_power() > exhausted);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut bank: Bank<SuperCapacitor> =
            std::iter::once(SuperCapacitor::prototype_module()).collect();
        bank.extend(std::iter::once(SuperCapacitor::prototype_module()));
        bank.push(SuperCapacitor::prototype_module());
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.active_count(), 3);
    }

    #[test]
    fn quarantine_excludes_member_without_destroying_energy() {
        let mut bank = sc_bank(3);
        let full = bank.available_energy();
        let per_member = full.get() / 3.0;
        assert!(bank.quarantine(1));
        assert!(bank.is_quarantined(1));
        assert_eq!(bank.quarantined_count(), 1);
        assert_eq!(bank.active_count(), 2);
        // Aggregates drop to the two in-service members...
        assert!((bank.available_energy().get() - 2.0 * per_member).abs() < 1e-6);
        // ...and return exactly on restore: isolation moves no energy.
        assert!(bank.restore(1));
        assert!((bank.available_energy().get() - full.get()).abs() < 1e-6);
    }

    #[test]
    fn quarantined_member_is_never_dispatched() {
        let mut bank = sc_bank(2);
        let before = bank.devices()[0].soc();
        bank.quarantine(0);
        let r = bank.discharge(Watts::new(150.0), TICK);
        assert!(r.delivered.get() > 0.0, "survivor must carry the load");
        assert_eq!(
            bank.devices()[0].soc(),
            before,
            "quarantined member must hold its charge"
        );
        assert!(bank.devices()[1].soc() < before);
    }

    #[test]
    fn quarantine_is_idempotent_and_bounds_checked() {
        let mut bank = sc_bank(2);
        assert!(bank.quarantine(0));
        assert!(!bank.quarantine(0), "double quarantine must be a no-op");
        assert!(!bank.quarantine(7), "out of range must be a no-op");
        assert!(!bank.restore(1), "restoring a healthy member is a no-op");
        assert!(!bank.is_quarantined(7));
    }

    #[test]
    fn fully_quarantined_bank_is_inert() {
        let mut bank = sc_bank(2);
        bank.quarantine(0);
        bank.quarantine(1);
        assert!(bank.available_energy().is_zero());
        assert_eq!(bank.max_discharge_power(), Watts::zero());
        assert!(bank.discharge(Watts::new(100.0), TICK).is_empty());
        assert_eq!(bank.open_circuit_voltage(), Volts::zero());
    }

    #[test]
    fn degrade_forwards_to_members() {
        let mut bank = sc_bank(2);
        let before = bank.usable_capacity();
        bank.degrade(Ratio::new_clamped(0.2), 0.5);
        assert!(bank.usable_capacity() < before);
    }

    #[test]
    fn structural_events_flow_to_the_recorder() {
        use heb_telemetry::{PoolId, RingRecorder};
        use std::sync::Arc;

        let ring = Arc::new(RingRecorder::new(16));
        let mut bank = sc_bank(2);
        bank.set_recorder(PoolId::SuperCap, Arc::clone(&ring) as _);
        bank.quarantine(0);
        bank.quarantine(0); // no-op: must not emit
        bank.restore(0);
        bank.degrade(Ratio::new_clamped(0.1), 0.2);
        let kinds: Vec<&str> = ring.events().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "esd.member_quarantined",
                "esd.member_restored",
                "esd.degraded"
            ]
        );
    }

    #[test]
    fn equality_ignores_the_recorder() {
        use heb_telemetry::{PoolId, RingRecorder};
        use std::sync::Arc;

        let plain = sc_bank(2);
        let mut instrumented = sc_bank(2);
        instrumented.set_recorder(PoolId::SuperCap, Arc::new(RingRecorder::new(4)) as _);
        assert_eq!(plain, instrumented);
    }
}
