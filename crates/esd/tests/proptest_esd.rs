//! Property tests for the storage-device models: conservation,
//! bounds, and monotonicity under arbitrary operation sequences.

use heb_esd::{Bank, LeadAcidBattery, LithiumIonBattery, StorageDevice, SuperCapacitor};
use heb_units::{Ratio, Seconds, Watts};
use proptest::prelude::*;

/// One random controller action.
#[derive(Debug, Clone, Copy)]
enum Op {
    Discharge(f64),
    Charge(f64),
    Idle(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1.0..400.0f64).prop_map(Op::Discharge),
        (1.0..400.0f64).prop_map(Op::Charge),
        (1.0..600.0f64).prop_map(Op::Idle),
    ]
}

fn apply<D: StorageDevice>(device: &mut D, op: Op) -> (f64, f64, f64) {
    let dt = Seconds::new(1.0);
    match op {
        Op::Discharge(p) => {
            let r = device.discharge(Watts::new(p), dt);
            // Conservation: delivered + loss == drained.
            assert!(
                ((r.delivered + r.loss) - r.drained).get().abs() < 1e-6,
                "discharge books: {r:?}"
            );
            // Never delivers more than asked (plus numerical slack).
            assert!(r.delivered.get() <= p * dt.get() + 1e-6);
            assert!(r.loss.get() >= -1e-9 && r.drained.get() >= -1e-9);
            (-r.drained.get(), r.delivered.get(), 0.0)
        }
        Op::Charge(p) => {
            let r = device.charge(Watts::new(p), dt);
            assert!(
                ((r.stored + r.loss) - r.drawn).get().abs() < 1e-6,
                "charge books: {r:?}"
            );
            assert!(r.drawn.get() <= p * dt.get() + 1e-6);
            assert!(r.loss.get() >= -1e-9 && r.stored.get() >= -1e-9);
            (r.stored.get(), 0.0, r.drawn.get())
        }
        Op::Idle(secs) => {
            device.idle(Seconds::new(secs));
            (0.0, 0.0, 0.0)
        }
    }
}

fn check_device_invariants<D: StorageDevice>(device: &D) {
    let soc = device.soc().get();
    assert!((0.0..=1.0 + 1e-9).contains(&soc), "SoC {soc} out of range");
    assert!(device.available_energy().get() >= -1e-9);
    assert!(device.headroom().get() >= -1e-9);
    assert!(
        device.available_energy() <= device.usable_capacity() * (1.0 + 1e-9),
        "available exceeds usable"
    );
    assert!(device.max_discharge_power().get() >= 0.0);
    assert!(device.max_charge_power().get() >= 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn battery_survives_any_operation_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        start_soc in 0.0..=1.0f64,
    ) {
        let mut battery = LeadAcidBattery::prototype_string();
        battery.set_soc(Ratio::new_clamped(start_soc));
        for op in ops {
            apply(&mut battery, op);
            check_device_invariants(&battery);
            // Terminal voltage stays within the physical window.
            let v = battery.open_circuit_voltage().get();
            prop_assert!((20.0..26.0).contains(&v), "OCV {v}");
        }
    }

    #[test]
    fn supercap_survives_any_operation_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        start_soc in 0.0..=1.0f64,
    ) {
        let mut sc = SuperCapacitor::prototype_module();
        sc.set_soc(Ratio::new_clamped(start_soc));
        for op in ops {
            apply(&mut sc, op);
            check_device_invariants(&sc);
            let v = sc.open_circuit_voltage().get();
            let min = sc.params().min_voltage.get();
            let max = sc.params().rated_voltage.get();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "V {v} outside [{min}, {max}]");
        }
    }

    #[test]
    fn li_ion_survives_any_operation_sequence(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        start_soc in 0.0..=1.0f64,
    ) {
        let mut li = LithiumIonBattery::prototype_string();
        li.set_soc(Ratio::new_clamped(start_soc));
        for op in ops {
            apply(&mut li, op);
            check_device_invariants(&li);
            let v = li.open_circuit_voltage().get();
            prop_assert!((20.0..29.0).contains(&v), "OCV {v}");
        }
    }

    #[test]
    fn li_ion_never_creates_energy(
        charge_w in 20.0..400.0f64,
        discharge_w in 20.0..400.0f64,
    ) {
        let mut li = LithiumIonBattery::prototype_string();
        li.set_soc(Ratio::new_clamped(0.2));
        let mut drawn = 0.0;
        for _ in 0..50_000 {
            let r = li.charge(Watts::new(charge_w), Seconds::new(1.0));
            if r.is_empty() || r.drawn.get() < 0.5 { break; }
            drawn += r.drawn.get();
        }
        let mut delivered = 0.0;
        for _ in 0..50_000 {
            let r = li.discharge(Watts::new(discharge_w), Seconds::new(1.0));
            if r.is_empty() { break; }
            delivered += r.delivered.get();
        }
        prop_assert!(delivered <= drawn * (1.0 + 1e-6), "free energy: {delivered} > {drawn}");
    }

    #[test]
    fn battery_energy_balances_over_random_runs(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        // Energy bookkeeping: final available == initial + net internal
        // flows, tracked at the OCV boundary (tolerate OCV drift since
        // stored joules are valued at the instantaneous OCV).
        let mut battery = LeadAcidBattery::prototype_string();
        battery.set_soc(Ratio::HALF);
        let initial = battery.available_energy().get();
        let mut net = 0.0;
        for op in ops {
            let (delta, _, _) = apply(&mut battery, op);
            net += delta;
        }
        let expected = initial + net;
        let actual = battery.available_energy().get();
        let tolerance = 0.08 * (initial + net.abs()).max(1000.0);
        prop_assert!(
            (actual - expected).abs() <= tolerance,
            "drift: expected {expected}, got {actual}"
        );
    }

    #[test]
    fn supercap_round_trip_never_creates_energy(
        charge_w in 20.0..400.0f64,
        discharge_w in 20.0..400.0f64,
    ) {
        let mut sc = SuperCapacitor::prototype_module();
        sc.set_soc(Ratio::ZERO);
        let mut drawn = 0.0;
        for _ in 0..20_000 {
            let r = sc.charge(Watts::new(charge_w), Seconds::new(1.0));
            if r.is_empty() { break; }
            drawn += r.drawn.get();
        }
        let mut delivered = 0.0;
        for _ in 0..20_000 {
            let r = sc.discharge(Watts::new(discharge_w), Seconds::new(1.0));
            if r.is_empty() { break; }
            delivered += r.delivered.get();
        }
        prop_assert!(delivered <= drawn * (1.0 + 1e-6), "free energy: {delivered} > {drawn}");
    }

    #[test]
    fn battery_rest_never_reduces_deliverable_power(
        drain_secs in 10u32..2000,
        rest_secs in 10.0..7200.0f64,
    ) {
        let mut battery = LeadAcidBattery::prototype_string();
        for _ in 0..drain_secs {
            let r = battery.discharge(Watts::new(200.0), Seconds::new(1.0));
            if r.is_empty() { break; }
        }
        let before = battery.max_discharge_power().get();
        battery.idle(Seconds::new(rest_secs));
        let after = battery.max_discharge_power().get();
        prop_assert!(after >= before - 1e-6, "rest hurt: {before} -> {after}");
    }

    #[test]
    fn bank_capacity_is_sum_of_members(n in 1usize..5) {
        let bank: Bank<SuperCapacitor> =
            (0..n).map(|_| SuperCapacitor::prototype_module()).collect();
        let single = SuperCapacitor::prototype_module().usable_capacity().get();
        prop_assert!((bank.usable_capacity().get() - n as f64 * single).abs() < 1e-6);
    }

    #[test]
    fn bank_discharge_respects_request(
        n in 1usize..4,
        request in 1.0..900.0f64,
    ) {
        let mut bank: Bank<SuperCapacitor> =
            (0..n).map(|_| SuperCapacitor::prototype_module()).collect();
        let r = bank.discharge(Watts::new(request), Seconds::new(1.0));
        prop_assert!(r.delivered.get() <= request + 1e-6);
        prop_assert!(((r.delivered + r.loss) - r.drained).get().abs() < 1e-6);
    }
}
