//! Property tests for the power-delivery substrate.

use heb_powersys::{
    Cluster, Converter, ConverterChain, Ipdu, PowerSource, RenewableFeed, SwitchFabric, UtilityFeed,
};
use heb_units::{Ratio, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cluster_demand_stays_in_band(
        n in 1usize..32,
        utils in proptest::collection::vec(0.0..=1.0f64, 1..32),
    ) {
        let mut cluster = Cluster::prototype(n);
        let ratios: Vec<Ratio> = utils.iter().map(|&u| Ratio::new_clamped(u)).collect();
        cluster.set_utilizations(&ratios);
        let demand = cluster.total_demand().get();
        prop_assert!(demand >= 30.0 * n as f64 - 1e-9);
        prop_assert!(demand <= 70.0 * n as f64 + 1e-9);
    }

    #[test]
    fn shedding_and_restoring_is_idempotent(
        n in 1usize..16,
        shed in 0usize..20,
    ) {
        let mut cluster = Cluster::prototype(n);
        let _ = cluster.tick(Seconds::new(1.0), Seconds::new(1.0));
        let shed_ids = cluster.shed_least_recently_used(shed);
        prop_assert_eq!(shed_ids.len(), shed.min(n));
        prop_assert_eq!(cluster.running_count(), n - shed.min(n));
        cluster.restore_all();
        cluster.restore_all();
        prop_assert_eq!(cluster.running_count(), n);
        prop_assert_eq!(cluster.total_restarts(), shed.min(n) as u64);
    }

    #[test]
    fn utility_feed_conserves(budget in 0.0..1e4f64, demand in -100.0..2e4f64) {
        let mut feed = UtilityFeed::new(Watts::new(budget));
        let (granted, shortfall) = feed.draw(Watts::new(demand), Seconds::new(1.0));
        prop_assert!(granted.get() >= 0.0);
        prop_assert!(granted.get() <= budget + 1e-9);
        if demand > 0.0 {
            prop_assert!((granted + shortfall).get() >= demand - 1e-9);
        }
        prop_assert!(feed.peak_drawn() <= Watts::new(budget));
    }

    #[test]
    fn renewable_utilization_is_a_fraction(
        supplies in proptest::collection::vec(0.0..1e3f64, 1..100),
        demand in 0.0..1e3f64,
        absorb_fraction in 0.0..=1.0f64,
    ) {
        let mut feed = RenewableFeed::new();
        for s in supplies {
            feed.set_supply(Watts::new(s));
            let (_, surplus) = feed.draw(Watts::new(demand), Seconds::new(1.0));
            feed.absorb_into_storage(surplus * absorb_fraction, Seconds::new(1.0));
        }
        let reu = feed.utilization();
        prop_assert!((0.0..=1.0).contains(&reu), "REU {reu}");
        prop_assert!(feed.energy_used() <= feed.energy_generated() * (1.0 + 1e-9));
    }

    #[test]
    fn fabric_counts_partition(n in 1usize..64, sc in 0usize..64, ba in 0usize..64) {
        let mut fabric = SwitchFabric::new(n);
        fabric.assign_split(sc, ba);
        let total = fabric.count_on(PowerSource::SuperCap)
            + fabric.count_on(PowerSource::Battery)
            + fabric.count_on(PowerSource::Utility);
        prop_assert_eq!(total, n);
        prop_assert_eq!(fabric.count_on(PowerSource::SuperCap), sc.min(n));
        prop_assert!(fabric.sc_share().in_unit_interval());
    }

    #[test]
    fn converter_chain_round_trips(effs in proptest::collection::vec(0.5..1.0f64, 0..5), p in 0.0..1e4f64) {
        let chain: ConverterChain = effs
            .iter()
            .map(|&e| Converter::new("stage", Ratio::new_clamped(e)))
            .collect();
        let out = chain.forward(Watts::new(p));
        prop_assert!(out.get() <= p + 1e-9, "chains never amplify");
        let back = chain.required_input(out);
        prop_assert!((back.get() - p).abs() <= 1e-6 * p.max(1.0));
        prop_assert!((chain.loss(Watts::new(p)) + out - Watts::new(p)).get().abs() <= 1e-9 * p.max(1.0));
    }

    #[test]
    fn ipdu_window_never_overflows(window in 1usize..50, samples in 1usize..200) {
        let cluster = Cluster::prototype(2);
        let mut ipdu = Ipdu::new(window);
        for t in 0..samples {
            ipdu.sample(&cluster, Seconds::new(t as f64));
        }
        prop_assert_eq!(ipdu.len(), window.min(samples));
        prop_assert!(ipdu.valley_total() <= ipdu.peak_total());
    }
}
