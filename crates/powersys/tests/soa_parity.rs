//! SoA-layout parity: drive the struct-of-arrays [`Cluster`] and a
//! reference `Vec<Server>` model (the pre-rework object-per-server
//! layout) through identical randomized op scripts and demand that
//! every observable matches — bitwise wherever the legacy layout had a
//! defined reduction order.
//!
//! The reference model re-implements the historical cluster semantics
//! directly on [`Server`] objects: flat index-order sweeps, and the
//! `Iterator::min_by` (strict `<`, first-on-tie) LRU victim rule. Fleet
//! sizes deliberately span multiple racks (`RACK_FANOUT` = 64) so the
//! aggregation tree's invalidation logic is exercised, not just the
//! single-rack degenerate case the golden traces pin down.

use heb_powersys::{Cluster, FrequencyLevel, PowerState, Server, RACK_FANOUT};
use heb_units::{Ratio, Seconds};
use proptest::prelude::*;

/// One step of the randomized cluster-mutation script.
#[derive(Debug, Clone)]
enum Op {
    /// Set one server's utilization (value may need clamping).
    SetUtil { slot: usize, level: f64 },
    /// Set every server's utilization.
    SetAll { level: f64 },
    /// Flip one server's frequency-governor level.
    SetFreq { slot: usize, low: bool },
    /// Advance one metering tick.
    Tick { dt: f64 },
    /// Shed the `count` least-recently-used running servers.
    Shed { count: usize },
    /// Power one server off (idempotent).
    PowerOff { slot: usize },
    /// Power one server on (idempotent, charges restart energy).
    PowerOn { slot: usize },
    /// Power every off server back on.
    RestoreAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..512, -0.25..1.25f64).prop_map(|(slot, level)| Op::SetUtil { slot, level }),
        (0.0..=1.0f64).prop_map(|level| Op::SetAll { level }),
        (0usize..512, 0usize..2).prop_map(|(slot, low)| Op::SetFreq {
            slot,
            low: low == 1
        }),
        (0.5..120.0f64).prop_map(|dt| Op::Tick { dt }),
        (0usize..8).prop_map(|count| Op::Shed { count }),
        (0usize..512).prop_map(|slot| Op::PowerOff { slot }),
        (0usize..512).prop_map(|slot| Op::PowerOn { slot }),
        Just(Op::RestoreAll),
    ]
}

/// The legacy object-per-server cluster, reconstructed: a `Vec<Server>`
/// plus the flat sweeps the original implementation ran over it.
struct Reference {
    servers: Vec<Server>,
}

impl Reference {
    fn new(n: usize) -> Self {
        Self {
            servers: (0..n).map(Server::prototype).collect(),
        }
    }

    /// The legacy flat left-to-right demand sum.
    fn flat_demand(&self) -> f64 {
        self.servers
            .iter()
            .fold(0.0, |acc, s| acc + s.power_draw().get())
    }

    /// The aggregation tree's documented reduction order: per-rack
    /// index-order sums, folded in rack order.
    fn tree_demand(&self) -> f64 {
        self.servers
            .chunks(RACK_FANOUT)
            .map(|rack| rack.iter().fold(0.0, |acc, s| acc + s.power_draw().get()))
            .sum()
    }

    /// Flat index-order tick, summing energies left to right.
    fn tick(&mut self, now: Seconds, dt: Seconds) -> f64 {
        self.servers
            .iter_mut()
            .fold(0.0, |acc, s| acc + s.tick(now, dt).get())
    }

    /// `Iterator::min_by` victim selection: the first running server
    /// with the strictly smallest last-active stamp.
    fn lru_running(&self) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in self.servers.iter().enumerate() {
            if s.state() != PowerState::On {
                continue;
            }
            let stamp = s.last_active().get();
            if best.is_none_or(|(b, _)| stamp < b) {
                best = Some((stamp, i));
            }
        }
        best.map(|(_, i)| i)
    }

    fn shed_lru(&mut self, count: usize) -> Vec<usize> {
        let mut shed = Vec::new();
        for _ in 0..count {
            match self.lru_running() {
                Some(i) => {
                    self.servers[i].power_off();
                    shed.push(i);
                }
                None => break,
            }
        }
        shed
    }

    fn running_count(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.state() == PowerState::On)
            .count()
    }
}

/// Applies one op to both layouts, asserting the per-op observables
/// that must already agree (shed victim lists, tick energies).
fn apply(op: &Op, cluster: &mut Cluster, model: &mut Reference, now: &mut f64) {
    let n = model.servers.len();
    match *op {
        Op::SetUtil { slot, level } => {
            let idx = slot % n;
            let u = Ratio::new_unclamped(level);
            cluster.set_utilization(idx, u);
            model.servers[idx].set_utilization(u);
        }
        Op::SetAll { level } => {
            let u = Ratio::new_clamped(level);
            cluster.set_all_utilization(u);
            for s in &mut model.servers {
                s.set_utilization(u);
            }
        }
        Op::SetFreq { slot, low } => {
            let idx = slot % n;
            let f = if low {
                FrequencyLevel::Low
            } else {
                FrequencyLevel::High
            };
            cluster.set_frequency(idx, f);
            model.servers[idx].set_frequency(f);
        }
        Op::Tick { dt } => {
            let (t, step) = (Seconds::new(*now), Seconds::new(dt));
            let ec = cluster.tick(t, step);
            let em = model.tick(t, step);
            prop_assert_eq!(ec.get().to_bits(), em.to_bits(), "tick energy diverged");
            *now += dt;
        }
        Op::Shed { count } => {
            let vc = cluster.shed_least_recently_used(count);
            let vm = model.shed_lru(count);
            prop_assert_eq!(vc, vm, "LRU shed victims diverged");
        }
        Op::PowerOff { slot } => {
            let idx = slot % n;
            cluster.power_off(idx);
            model.servers[idx].power_off();
        }
        Op::PowerOn { slot } => {
            let idx = slot % n;
            cluster.power_on(idx);
            model.servers[idx].power_on();
        }
        Op::RestoreAll => {
            cluster.restore_all();
            for s in &mut model.servers {
                s.power_on();
            }
        }
    }
}

/// Aggregate observables with a defined legacy reduction order must
/// match bitwise after every op.
fn check_aggregates(cluster: &mut Cluster, model: &Reference) {
    let n = model.servers.len();
    prop_assert_eq!(cluster.running_count(), model.running_count());
    let total = cluster.total_demand().get();
    prop_assert_eq!(
        total.to_bits(),
        model.tree_demand().to_bits(),
        "cached total diverged from the rack-fold reference"
    );
    if n <= RACK_FANOUT {
        // Single rack: the tree total degenerates to the legacy flat
        // sum exactly — the bit-identity the golden traces rely on.
        prop_assert_eq!(total.to_bits(), model.flat_demand().to_bits());
    }
    let downtime: f64 = model.servers.iter().map(|s| s.downtime().get()).sum();
    prop_assert_eq!(cluster.total_downtime().get().to_bits(), downtime.to_bits());
    let restarts: u64 = model.servers.iter().map(Server::restarts).sum();
    prop_assert_eq!(cluster.total_restarts(), restarts);
    let prospective: f64 = model
        .servers
        .iter()
        .map(|s| s.prospective_draw().get())
        .sum();
    prop_assert_eq!(
        cluster.prospective_total().get().to_bits(),
        prospective.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline parity property: random op scripts over fleets
    /// spanning one to three racks leave the SoA cluster and the
    /// object-layout reference in identical states.
    #[test]
    fn cluster_matches_object_layout_under_op_scripts(
        n in 1usize..(RACK_FANOUT * 2 + 23),
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut cluster = Cluster::prototype(n);
        let mut model = Reference::new(n);
        let mut now = 1.0;
        for op in &ops {
            apply(op, &mut cluster, &mut model, &mut now);
            check_aggregates(&mut cluster, &model);
        }
        // Final per-server materialization: every field bit-equal.
        for (i, want) in model.servers.iter().enumerate() {
            prop_assert_eq!(&cluster.server(i), want, "server {} diverged", i);
        }
    }

    /// Rebuilding a cluster from its materialized servers is lossless,
    /// regardless of the op history that produced the state.
    #[test]
    fn materialize_round_trips_after_op_scripts(
        n in 1usize..(RACK_FANOUT + 11),
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let mut cluster = Cluster::prototype(n);
        let mut model = Reference::new(n);
        let mut now = 1.0;
        for op in &ops {
            apply(op, &mut cluster, &mut model, &mut now);
        }
        let servers: Vec<Server> = (0..n).map(|i| cluster.server(i)).collect();
        let mut rebuilt = Cluster::new(servers);
        prop_assert_eq!(&rebuilt, &cluster);
        prop_assert_eq!(
            rebuilt.total_demand().get().to_bits(),
            cluster.total_demand().get().to_bits()
        );
    }

    /// Shedding everything and restoring everything returns the fleet
    /// to full strength with the restart book-keeping intact, at
    /// multi-rack sizes.
    #[test]
    fn multi_rack_shed_restore_cycles(
        n in (RACK_FANOUT + 1)..(RACK_FANOUT * 3 + 1),
        cycles in 1usize..4,
    ) {
        let mut cluster = Cluster::prototype(n);
        let mut model = Reference::new(n);
        let mut now = 1.0;
        for _ in 0..cycles {
            apply(&Op::Tick { dt: 30.0 }, &mut cluster, &mut model, &mut now);
            let vc = cluster.shed_least_recently_used(n + 5);
            let vm = model.shed_lru(n + 5);
            prop_assert_eq!(vc.len(), n);
            prop_assert_eq!(vc, vm);
            prop_assert_eq!(cluster.running_count(), 0);
            prop_assert!(cluster.least_recently_used_running().is_none());
            cluster.restore_all();
            for s in &mut model.servers {
                s.power_on();
            }
        }
        check_aggregates(&mut cluster, &model);
        prop_assert_eq!(cluster.total_restarts(), (n * cycles) as u64);
    }
}
