//! Power-delivery substrate for the HEB datacenter simulator.
//!
//! This crate replaces the prototype's electrical plumbing (Figure 11 of
//! the paper): the server rack, the intelligent power distribution unit
//! (IPDU) that meters every server once per second, the two-way relays
//! that steer each server between utility power and an energy buffer,
//! the AC/DC conversion stages whose losses distinguish the three
//! architectures of Figure 7, and the utility / renewable feeds.
//!
//! The pieces compose into a [`Cluster`] of [`Server`]s metered by an
//! [`Ipdu`], wired through a [`SwitchFabric`] to power sources, and
//! supplied by a [`UtilityFeed`] with an (under-)provisioned budget.
//!
//! # Examples
//!
//! ```
//! use heb_powersys::{Cluster, PowerSource, SwitchFabric};
//!
//! let cluster = Cluster::prototype(6); // six 30–70 W servers
//! let mut fabric = SwitchFabric::new(cluster.len());
//! fabric.assign(0, PowerSource::SuperCap);
//! assert_eq!(fabric.source_of(0), PowerSource::SuperCap);
//! assert_eq!(fabric.count_on(PowerSource::Utility), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
mod cluster;
mod converter;
mod error;
mod feed;
mod metering;
mod server;
pub mod soa;
mod switch;
mod topology;

pub use agg::{AggTree, RACK_FANOUT};
pub use cluster::Cluster;
pub use converter::{Converter, ConverterChain};
pub use error::PowerSysError;
pub use feed::{RenewableFeed, UtilityFeed};
pub use metering::{Ipdu, MeterFault, MeterReading};
pub use server::{FrequencyLevel, PowerState, Server, ServerParams};
pub use soa::ServerArrays;
pub use switch::{PowerSource, SwitchFabric};
pub use topology::{DeliveryPath, Topology};
