//! Typed construction errors for power-system components.

/// Why a power-system component could not be constructed.
///
/// The panicking constructors (`UtilityFeed::new`, `Ipdu::new`, …)
/// remain as thin wrappers over the `try_*` variants; embedders that
/// build components from untrusted configuration should use the
/// fallible forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerSysError {
    /// A utility budget below zero watts.
    NegativeBudget,
    /// A metering history window of zero samples.
    EmptyMeterWindow,
    /// A negative metering noise standard deviation.
    NegativeNoise,
}

impl core::fmt::Display for PowerSysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The strings double as the panic messages of the infallible
        // constructors, so tests matching on them keep working.
        let msg = match self {
            PowerSysError::NegativeBudget => "budget must be non-negative",
            PowerSysError::EmptyMeterWindow => "history window must be non-empty",
            PowerSysError::NegativeNoise => "noise must be non-negative",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for PowerSysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_panic_messages() {
        assert_eq!(
            PowerSysError::NegativeBudget.to_string(),
            "budget must be non-negative"
        );
        assert_eq!(
            PowerSysError::EmptyMeterWindow.to_string(),
            "history window must be non-empty"
        );
        assert_eq!(
            PowerSysError::NegativeNoise.to_string(),
            "noise must be non-negative"
        );
    }
}
