//! Struct-of-arrays server state — the fleet-scale hot path.
//!
//! At O(10) servers the object-per-server [`Server`] layout is fine; at
//! 100 k–1 M servers the per-tick loops (workload drive, metering,
//! energy accounting) dominate wall-clock, and walking a `Vec<Server>`
//! drags nine fields through cache for every one field touched.
//! [`ServerArrays`] stores each field in its own parallel array so the
//! sweeps (set utilizations, sum draws, tick energies) stream exactly
//! the bytes they need. The relay positions are *not* duplicated here:
//! [`crate::SwitchFabric`] already keeps them as a parallel array.
//!
//! Every per-index operation routes through the same raw kernels
//! (`prospective_draw_raw`, `tick_raw`) as [`Server`], so a
//! [`ServerArrays`] sweep is bit-for-bit the sequence of operations the
//! legacy `Vec<Server>` loop performed in the same index order.
//! [`crate::Cluster`] wraps this module (plus the
//! [`crate::agg::AggTree`] sum cache) behind the historical cluster
//! API.

use crate::server::{
    prospective_draw_raw, tick_raw, FrequencyLevel, PowerState, Server, ServerParams,
};
use heb_units::{Joules, Ratio, Seconds, Watts};

/// Parallel per-server state arrays. Index `i` across every array is
/// server `i` — the same id the [`crate::SwitchFabric`] relay array
/// uses.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerArrays {
    params: Vec<ServerParams>,
    state: Vec<PowerState>,
    frequency: Vec<FrequencyLevel>,
    utilization: Vec<Ratio>,
    downtime: Vec<Seconds>,
    restarts: Vec<u64>,
    last_active: Vec<Seconds>,
    pending_restart: Vec<Joules>,
    /// Count of servers currently `On`, maintained incrementally so
    /// `running_count` is O(1) instead of an O(n) scan per tick.
    on_count: usize,
}

impl ServerArrays {
    /// Decomposes pre-built servers into parallel arrays. Server ids
    /// are positional: element `i` becomes server `i`.
    #[must_use]
    pub fn from_servers(servers: &[Server]) -> Self {
        let n = servers.len();
        let mut arrays = Self {
            params: Vec::with_capacity(n),
            state: Vec::with_capacity(n),
            frequency: Vec::with_capacity(n),
            utilization: Vec::with_capacity(n),
            downtime: Vec::with_capacity(n),
            restarts: Vec::with_capacity(n),
            last_active: Vec::with_capacity(n),
            pending_restart: Vec::with_capacity(n),
            on_count: 0,
        };
        for s in servers {
            arrays.params.push(*s.params());
            arrays.state.push(s.state());
            arrays.frequency.push(s.frequency());
            arrays.utilization.push(s.utilization());
            arrays.downtime.push(s.downtime());
            arrays.restarts.push(s.restarts());
            arrays.last_active.push(s.last_active());
            arrays.pending_restart.push(s.pending_restart_energy());
            if s.state() == PowerState::On {
                arrays.on_count += 1;
            }
        }
        arrays
    }

    /// `n` running, idle prototype-spec servers.
    #[must_use]
    pub fn prototype(n: usize) -> Self {
        let params = ServerParams::prototype();
        Self {
            params: vec![params; n],
            state: vec![PowerState::On; n],
            frequency: vec![FrequencyLevel::High; n],
            utilization: vec![Ratio::ZERO; n],
            downtime: vec![Seconds::zero(); n],
            restarts: vec![0; n],
            last_active: vec![Seconds::zero(); n],
            pending_restart: vec![Joules::zero(); n],
            on_count: n,
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether there are no servers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Number of servers currently running (O(1)).
    #[must_use]
    pub fn running_count(&self) -> usize {
        self.on_count
    }

    /// Power state of server `i`.
    #[must_use]
    pub fn state(&self, i: usize) -> PowerState {
        self.state[i]
    }

    /// Frequency level of server `i`.
    #[must_use]
    pub fn frequency(&self, i: usize) -> FrequencyLevel {
        self.frequency[i]
    }

    /// Utilization of server `i`.
    #[must_use]
    pub fn utilization(&self, i: usize) -> Ratio {
        self.utilization[i]
    }

    /// Last-active stamp of server `i`.
    #[must_use]
    pub fn last_active(&self, i: usize) -> Seconds {
        self.last_active[i]
    }

    /// Whether server `i` still owes boot-surcharge energy.
    #[must_use]
    pub fn has_pending_restart(&self, i: usize) -> bool {
        self.pending_restart[i].get() > 0.0
    }

    /// Instantaneous draw of server `i`: zero when off, otherwise the
    /// shared prospective-draw kernel.
    #[must_use]
    pub fn power_draw(&self, i: usize) -> Watts {
        match self.state[i] {
            PowerState::Off => Watts::zero(),
            PowerState::On => self.prospective_draw(i),
        }
    }

    /// What server `i` would draw if running.
    #[must_use]
    pub fn prospective_draw(&self, i: usize) -> Watts {
        prospective_draw_raw(&self.params[i], self.utilization[i], self.frequency[i])
    }

    /// Sets server `i`'s utilization (clamped to the unit interval).
    /// Returns `true` when the stored value actually changed bitwise —
    /// the aggregation tree uses this to skip invalidation for steady
    /// workloads.
    pub fn set_utilization(&mut self, i: usize, utilization: Ratio) -> bool {
        let clamped = utilization.clamp_unit();
        let changed = clamped.get().to_bits() != self.utilization[i].get().to_bits();
        self.utilization[i] = clamped;
        changed
    }

    /// Sets server `i`'s frequency level, reporting whether it changed.
    pub fn set_frequency(&mut self, i: usize, frequency: FrequencyLevel) -> bool {
        let changed = self.frequency[i] != frequency;
        self.frequency[i] = frequency;
        changed
    }

    /// Shuts server `i` down. Returns `true` if it was running.
    pub fn power_off(&mut self, i: usize) -> bool {
        if self.state[i] == PowerState::On {
            self.state[i] = PowerState::Off;
            self.on_count -= 1;
            true
        } else {
            false
        }
    }

    /// Powers server `i` back on, charging the restart surcharge.
    /// Returns `true` if it was off.
    pub fn power_on(&mut self, i: usize) -> bool {
        if self.state[i] == PowerState::Off {
            self.state[i] = PowerState::On;
            self.on_count += 1;
            self.restarts[i] += 1;
            self.pending_restart[i] = self.params[i].restart_energy;
            true
        } else {
            false
        }
    }

    /// Stamps server `i` active at `now` without a tick.
    pub fn mark_active(&mut self, i: usize, now: Seconds) {
        self.last_active[i] = now;
    }

    /// Advances server `i` one tick through the shared tick kernel.
    pub fn tick_one(&mut self, i: usize, now: Seconds, dt: Seconds) -> Joules {
        tick_raw(
            &self.params[i],
            self.state[i],
            self.utilization[i],
            self.frequency[i],
            &mut self.downtime[i],
            &mut self.last_active[i],
            &mut self.pending_restart[i],
            now,
            dt,
        )
    }

    /// Advances every server one tick in index order, summing energies
    /// left to right — the exact reduction order of the historical
    /// `servers.iter_mut().map(tick).sum()`.
    pub fn tick_all(&mut self, now: Seconds, dt: Seconds) -> Joules {
        let mut total = 0.0_f64;
        for i in 0..self.len() {
            total += self.tick_one(i, now, dt).get();
        }
        Joules::new(total)
    }

    /// Whether every server is running with no pending restart
    /// surcharge (the event core's quiet-span predicate).
    #[must_use]
    pub fn all_running_steady(&self) -> bool {
        self.on_count == self.len() && self.pending_restart.iter().all(|p| p.get() <= 0.0)
    }

    /// Aggregate downtime, summed in index order.
    #[must_use]
    pub fn total_downtime(&self) -> Seconds {
        self.downtime.iter().sum()
    }

    /// Total off→on cycles.
    #[must_use]
    pub fn total_restarts(&self) -> u64 {
        self.restarts.iter().sum()
    }

    /// Boot energy charged across every restart so far, summed in index
    /// order exactly as the legacy per-server report fold did.
    #[must_use]
    pub fn total_restart_waste(&self) -> Joules {
        (0..self.len())
            .map(|i| self.params[i].restart_energy * self.restarts[i] as f64)
            .sum()
    }

    /// Flat prospective-demand sum in index order (the restore-check
    /// headroom quantity).
    #[must_use]
    pub fn prospective_total(&self) -> Watts {
        (0..self.len()).map(|i| self.prospective_draw(i)).sum()
    }

    /// Materialises server `i` back into the object layout (tests,
    /// debugging, thin-view accessors).
    #[must_use]
    pub fn materialize(&self, i: usize) -> Server {
        Server::from_parts(
            i,
            self.params[i],
            self.state[i],
            self.frequency[i],
            self.utilization[i],
            self.downtime[i],
            self.restarts[i],
            self.last_active[i],
            self.pending_restart[i],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive an object-layout server and the SoA layout through the
    /// same history; every observable must match bitwise.
    #[test]
    fn soa_matches_server_object_bitwise() {
        let mut obj = Server::prototype(0);
        let mut soa = ServerArrays::prototype(1);
        let dt = Seconds::new(1.0);
        let script: &[(f64, bool)] = &[
            (0.3, true),
            (0.7, true),
            (1.4, false), // clamped
            (0.0, true),
            (0.5, true),
        ];
        let mut t = 0.0;
        for &(util, on) in script {
            obj.set_utilization(Ratio::new_clamped(util));
            let _ = soa.set_utilization(0, Ratio::new_unclamped(util));
            if on {
                obj.power_on();
                let _ = soa.power_on(0);
            } else {
                obj.power_off();
                let _ = soa.power_off(0);
            }
            assert_eq!(obj.power_draw(), soa.power_draw(0));
            let ea = obj.tick(Seconds::new(t), dt);
            let eb = soa.tick_one(0, Seconds::new(t), dt);
            assert_eq!(ea.get().to_bits(), eb.get().to_bits());
            t += 1.0;
        }
        assert_eq!(obj, soa.materialize(0));
        assert_eq!(soa.total_downtime(), obj.downtime());
        assert_eq!(soa.total_restarts(), obj.restarts());
    }

    #[test]
    fn running_count_tracks_state_changes() {
        let mut soa = ServerArrays::prototype(4);
        assert_eq!(soa.running_count(), 4);
        assert!(soa.power_off(2));
        assert!(!soa.power_off(2), "double off is a no-op");
        assert_eq!(soa.running_count(), 3);
        assert!(soa.power_on(2));
        assert!(!soa.power_on(2), "double on is a no-op");
        assert_eq!(soa.running_count(), 4);
        assert_eq!(soa.total_restarts(), 1);
        assert!(soa.has_pending_restart(2));
        assert!(!soa.all_running_steady());
    }

    #[test]
    fn set_utilization_reports_bitwise_change() {
        let mut soa = ServerArrays::prototype(1);
        assert!(soa.set_utilization(0, Ratio::new_clamped(0.5)));
        assert!(!soa.set_utilization(0, Ratio::new_clamped(0.5)));
        // Out-of-range values clamp to the same stored bits: no change.
        assert!(soa.set_utilization(0, Ratio::new_unclamped(2.0)));
        assert!(!soa.set_utilization(0, Ratio::new_unclamped(3.0)));
    }

    #[test]
    fn tick_all_sums_in_index_order() {
        let mut soa = ServerArrays::prototype(3);
        let _ = soa.set_utilization(1, Ratio::ONE);
        let via_all = soa.clone().tick_all(Seconds::new(1.0), Seconds::new(1.0));
        let mut manual = 0.0;
        for i in 0..3 {
            manual += soa.tick_one(i, Seconds::new(1.0), Seconds::new(1.0)).get();
        }
        assert_eq!(via_all.get().to_bits(), manual.to_bits());
    }
}
