//! The three energy-storage architectures of Figure 7.
//!
//! What distinguishes them, for the simulator, is *where conversion
//! losses sit on each delivery path*:
//!
//! * **Centralized** (Figure 7(a)) — a double-converting online UPS on
//!   the critical path: every watt, utility or stored, pays AC→DC→AC.
//! * **Distributed** (Figure 7(b), the Facebook/Google style) — DC
//!   batteries behind the PSU: utility power is clean, stored power pays
//!   only a DC regulation stage, but buffers are homogeneous batteries.
//! * **Hybrid HEB** (Figure 7(c)) — the paper's proposal: a switch
//!   fabric steers servers between utility, a battery pool, and an SC
//!   pool. Cluster-level deployment pays one DC/AC inversion on the
//!   buffer path; rack-level deployment delivers DC directly.

use crate::converter::{Converter, ConverterChain};

/// A delivery path from one kind of source to the servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryPath {
    /// Utility feed to servers.
    UtilityToLoad,
    /// Energy buffer (battery or SC pool) to servers.
    BufferToLoad,
    /// Utility/renewable surplus into the energy buffer.
    SourceToBuffer,
}

/// An energy-storage system architecture, defined by the converter chain
/// on each delivery path.
///
/// # Examples
///
/// ```
/// use heb_powersys::{DeliveryPath, Topology};
/// use heb_units::Watts;
///
/// let central = Topology::centralized();
/// let heb = Topology::heb_cluster_level();
/// let path = DeliveryPath::UtilityToLoad;
/// // The centralized UPS taxes utility power; HEB does not.
/// assert!(central.chain(path).loss(Watts::new(100.0)) > heb.chain(path).loss(Watts::new(100.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    name: &'static str,
    utility_to_load: ConverterChain,
    buffer_to_load: ConverterChain,
    source_to_buffer: ConverterChain,
}

impl Topology {
    /// Centralized online UPS (Figure 7(a)): double conversion on every
    /// path.
    #[must_use]
    pub fn centralized() -> Self {
        let double = || ConverterChain::new(vec![Converter::rectifier(), Converter::inverter()]);
        Self {
            name: "centralized",
            utility_to_load: double(),
            buffer_to_load: ConverterChain::new(vec![Converter::inverter()]),
            source_to_buffer: ConverterChain::new(vec![Converter::rectifier()]),
        }
    }

    /// Distributed per-rack/per-server batteries (Figure 7(b)): utility
    /// power flows untaxed; the buffer path pays DC regulation.
    #[must_use]
    pub fn distributed() -> Self {
        Self {
            name: "distributed",
            utility_to_load: ConverterChain::direct(),
            buffer_to_load: ConverterChain::new(vec![Converter::dc_regulator()]),
            source_to_buffer: ConverterChain::new(vec![Converter::rectifier()]),
        }
    }

    /// HEB deployed at cluster level (Figure 8(b)): one hControl and one
    /// buffer group; long-haul delivery needs a DC/AC inversion.
    #[must_use]
    pub fn heb_cluster_level() -> Self {
        Self {
            name: "heb-cluster",
            utility_to_load: ConverterChain::direct(),
            buffer_to_load: ConverterChain::new(vec![Converter::inverter()]),
            source_to_buffer: ConverterChain::new(vec![Converter::rectifier()]),
        }
    }

    /// HEB deployed at rack level (Figure 8(c)): buffers feed servers DC
    /// directly, avoiding the inversion; buffer groups cannot share.
    #[must_use]
    pub fn heb_rack_level() -> Self {
        Self {
            name: "heb-rack",
            utility_to_load: ConverterChain::direct(),
            buffer_to_load: ConverterChain::new(vec![Converter::dc_regulator()]),
            source_to_buffer: ConverterChain::new(vec![Converter::rectifier()]),
        }
    }

    /// Architecture name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The converter chain on a given delivery path.
    #[must_use]
    pub fn chain(&self, path: DeliveryPath) -> &ConverterChain {
        match path {
            DeliveryPath::UtilityToLoad => &self.utility_to_load,
            DeliveryPath::BufferToLoad => &self.buffer_to_load,
            DeliveryPath::SourceToBuffer => &self.source_to_buffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_units::Watts;

    #[test]
    fn centralized_double_conversion_taxes_utility_path() {
        let t = Topology::centralized();
        let eff = t.chain(DeliveryPath::UtilityToLoad).efficiency().get();
        assert!(
            (0.90..=0.96).contains(&eff),
            "double conversion 4–10 % loss"
        );
    }

    #[test]
    fn distributed_utility_path_is_free() {
        let t = Topology::distributed();
        assert_eq!(
            t.chain(DeliveryPath::UtilityToLoad)
                .forward(Watts::new(100.0)),
            Watts::new(100.0)
        );
    }

    #[test]
    fn rack_level_buffer_path_beats_cluster_level() {
        let rack = Topology::heb_rack_level();
        let cluster = Topology::heb_cluster_level();
        assert!(
            rack.chain(DeliveryPath::BufferToLoad).efficiency()
                > cluster.chain(DeliveryPath::BufferToLoad).efficiency()
        );
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Topology::centralized().name(),
            Topology::distributed().name(),
            Topology::heb_cluster_level().name(),
            Topology::heb_rack_level().name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
