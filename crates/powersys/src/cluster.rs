//! A rack of servers addressed as one load.
//!
//! Since the fleet-scale rework the cluster stores its servers as
//! struct-of-arrays ([`crate::soa::ServerArrays`]) with a hierarchical
//! sum cache ([`crate::agg::AggTree`]) on top; the historical
//! object-per-server surface survives as thin views ([`Cluster::server`]
//! materialises one [`Server`]) and targeted per-index mutators. All
//! per-tick aggregate queries are O(dirty racks), not O(servers).

use crate::agg::AggTree;
use crate::server::{FrequencyLevel, PowerState, Server};
use crate::soa::ServerArrays;
use heb_units::{Joules, Ratio, Seconds, Watts};

/// The server rack: the unit of load the HEB controller manages.
///
/// # Examples
///
/// ```
/// use heb_powersys::Cluster;
/// use heb_units::Ratio;
///
/// let mut cluster = Cluster::prototype(6);
/// cluster.set_all_utilization(Ratio::ONE);
/// assert_eq!(cluster.total_demand().get(), 6.0 * 70.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    fleet: ServerArrays,
    agg: AggTree,
}

/// Equality is over simulated state only; the aggregation tree is an
/// acceleration cache whose dirtiness depends on query history.
impl PartialEq for Cluster {
    fn eq(&self, other: &Self) -> bool {
        self.fleet == other.fleet
    }
}

impl Cluster {
    /// Creates a cluster from pre-built servers (ids are positional).
    #[must_use]
    pub fn new(servers: Vec<Server>) -> Self {
        let fleet = ServerArrays::from_servers(&servers);
        let agg = AggTree::new(fleet.len());
        Self { fleet, agg }
    }

    /// A cluster of `n` prototype-spec servers with ids `0..n`.
    #[must_use]
    pub fn prototype(n: usize) -> Self {
        Self {
            fleet: ServerArrays::prototype(n),
            agg: AggTree::new(n),
        }
    }

    /// Number of servers (running or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.fleet.len()
    }

    /// Whether the cluster has no servers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fleet.is_empty()
    }

    /// The underlying struct-of-arrays state (read-only).
    #[must_use]
    pub fn fleet(&self) -> &ServerArrays {
        &self.fleet
    }

    /// Materialises server `idx` as an owned [`Server`] view — the
    /// object-layout window onto the parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn server(&self, idx: usize) -> Server {
        self.fleet.materialize(idx)
    }

    /// Number of running servers (O(1): maintained incrementally).
    #[must_use]
    pub fn running_count(&self) -> usize {
        self.fleet.running_count()
    }

    /// Whether server `idx` is running.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn is_running(&self, idx: usize) -> bool {
        self.fleet.state(idx) == PowerState::On
    }

    /// Instantaneous draw of server `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn power_draw(&self, idx: usize) -> Watts {
        self.fleet.power_draw(idx)
    }

    /// Per-server draws in index order (the metering sweep).
    pub fn power_draws(&self) -> impl Iterator<Item = Watts> + '_ {
        (0..self.fleet.len()).map(|i| self.fleet.power_draw(i))
    }

    /// Sets every server's utilization for the next tick.
    pub fn set_all_utilization(&mut self, utilization: Ratio) {
        for i in 0..self.fleet.len() {
            if self.fleet.set_utilization(i, utilization) {
                self.agg.touch_demand(i);
            }
        }
    }

    /// Sets per-server utilizations; extra values are ignored, missing
    /// values leave the server unchanged.
    pub fn set_utilizations(&mut self, utilizations: &[Ratio]) {
        for (i, &u) in utilizations.iter().enumerate().take(self.fleet.len()) {
            if self.fleet.set_utilization(i, u) {
                self.agg.touch_demand(i);
            }
        }
    }

    /// Sets utilizations from a stream, applied in index order — the
    /// allocation-free form of the per-tick workload drive.
    pub fn set_utilizations_with(&mut self, utilizations: impl Iterator<Item = Ratio>) {
        for (i, u) in utilizations.enumerate().take(self.fleet.len()) {
            if self.fleet.set_utilization(i, u) {
                self.agg.touch_demand(i);
            }
        }
    }

    /// Sets server `idx`'s utilization.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_utilization(&mut self, idx: usize, utilization: Ratio) {
        if self.fleet.set_utilization(idx, utilization) {
            self.agg.touch_demand(idx);
        }
    }

    /// Sets server `idx`'s frequency-governor level.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_frequency(&mut self, idx: usize, frequency: FrequencyLevel) {
        if self.fleet.set_frequency(idx, frequency) {
            self.agg.touch_demand(idx);
        }
    }

    /// Splits the rack into a low-frequency group (first `low_count`
    /// servers) and a high-frequency group — the paper's method for
    /// constructing small-peak and large-peak demand shapes.
    pub fn split_frequency_groups(&mut self, low_count: usize) {
        for idx in 0..self.fleet.len() {
            self.set_frequency(
                idx,
                if idx < low_count {
                    FrequencyLevel::Low
                } else {
                    FrequencyLevel::High
                },
            );
        }
    }

    /// Aggregate instantaneous demand of all running servers, served
    /// from the hierarchical sum cache (O(dirty racks), bit-identical
    /// to the flat sum for single-rack fleets — see [`crate::agg`]).
    #[must_use]
    pub fn total_demand(&mut self) -> Watts {
        self.agg.total_demand(&self.fleet)
    }

    /// Advances every server one tick, returning total energy consumed.
    pub fn tick(&mut self, now: Seconds, dt: Seconds) -> Joules {
        // Ticking restamps every running server's LRU clock but leaves
        // draws untouched (state, utilization, frequency unchanged).
        self.agg.touch_all_lru();
        self.fleet.tick_all(now, dt)
    }

    /// Whether every server is running with no pending restart
    /// surcharge. In this state a tick changes nothing but each
    /// server's last-active stamp, so the event core can fast-forward
    /// the rack across a quiet span and back-fill the stamps with
    /// [`Cluster::mark_all_active`].
    #[must_use]
    pub fn all_running_steady(&self) -> bool {
        self.fleet.all_running_steady()
    }

    /// Stamps every server as active at `now` without running a tick —
    /// the bulk form of the per-server stamp for quiet-span
    /// fast-forwarding.
    pub fn mark_all_active(&mut self, now: Seconds) {
        self.agg.touch_all_lru();
        for i in 0..self.fleet.len() {
            self.fleet.mark_active(i, now);
        }
    }

    /// Aggregate downtime across all servers (the paper's *server
    /// downtime* metric, Figure 12(b)).
    #[must_use]
    pub fn total_downtime(&self) -> Seconds {
        self.fleet.total_downtime()
    }

    /// Total off→on cycles across all servers.
    #[must_use]
    pub fn total_restarts(&self) -> u64 {
        self.fleet.total_restarts()
    }

    /// Boot energy charged across all restarts (the report's
    /// restart-waste metric), summed in index order.
    #[must_use]
    pub fn total_restart_waste(&self) -> Joules {
        self.fleet.total_restart_waste()
    }

    /// Aggregate prospective demand if every server ran (the restore
    /// check's headroom quantity), summed flat in index order.
    #[must_use]
    pub fn prospective_total(&self) -> Watts {
        self.fleet.prospective_total()
    }

    /// The id of the least-recently-used *running* server — the victim
    /// the paper shuts down first when buffers cannot cover a peak.
    /// Served from the per-rack LRU cache.
    #[must_use]
    pub fn least_recently_used_running(&mut self) -> Option<usize> {
        self.agg.least_recently_used_running(&self.fleet)
    }

    /// Powers off the `count` least-recently-used running servers,
    /// returning how many actually shut down. Each victim invalidates
    /// only its own rack, so repeated shedding is O(racks + fanout) per
    /// victim instead of a full fleet scan.
    pub fn shed_least_recently_used_count(&mut self, count: usize) -> usize {
        let mut shed = 0;
        for _ in 0..count {
            match self.least_recently_used_running() {
                Some(id) => {
                    self.power_off(id);
                    shed += 1;
                }
                None => break,
            }
        }
        shed
    }

    /// Powers off the `count` least-recently-used running servers,
    /// returning the ids actually shut down (the allocating twin of
    /// [`Cluster::shed_least_recently_used_count`], kept for tests and
    /// post-hoc analyses that need the victim list).
    pub fn shed_least_recently_used(&mut self, count: usize) -> Vec<usize> {
        let mut shed = Vec::with_capacity(count);
        for _ in 0..count {
            match self.least_recently_used_running() {
                Some(id) => {
                    self.power_off(id);
                    shed.push(id);
                }
                None => break,
            }
        }
        shed
    }

    /// Shuts server `idx` down (power capping). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn power_off(&mut self, idx: usize) {
        if self.fleet.power_off(idx) {
            self.agg.touch_demand(idx);
            self.agg.touch_lru(idx);
        }
    }

    /// Powers server `idx` back on, charging the restart energy to the
    /// next tick. Idempotent for already-running servers.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn power_on(&mut self, idx: usize) {
        if self.fleet.power_on(idx) {
            self.agg.touch_demand(idx);
            self.agg.touch_lru(idx);
        }
    }

    /// Powers on every off server.
    pub fn restore_all(&mut self) {
        for i in 0..self.fleet.len() {
            self.power_on(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_cluster_demand_band() {
        let mut c = Cluster::prototype(6);
        assert_eq!(c.len(), 6);
        assert_eq!(c.total_demand().get(), 180.0); // all idle
        c.set_all_utilization(Ratio::ONE);
        assert_eq!(c.total_demand().get(), 420.0); // all peak
    }

    #[test]
    fn frequency_split_reduces_group_power() {
        let mut c = Cluster::prototype(6);
        c.set_all_utilization(Ratio::ONE);
        c.split_frequency_groups(3);
        // 3 low (54 W) + 3 high (70 W)
        assert_eq!(c.total_demand().get(), 3.0 * 54.0 + 3.0 * 70.0);
    }

    #[test]
    fn lru_victim_selection() {
        let mut c = Cluster::prototype(3);
        let _ = c.tick(Seconds::new(1.0), Seconds::new(1.0));
        // Make server 1 the least recently used by powering it off
        // before a later tick refreshes the others.
        c.power_off(1);
        let _ = c.tick(Seconds::new(2.0), Seconds::new(1.0));
        c.power_on(1);
        // Servers 0 and 2 were active at t=2; server 1 at t=1.
        assert_eq!(c.least_recently_used_running(), Some(1));
    }

    #[test]
    fn shedding_and_restoring() {
        let mut c = Cluster::prototype(4);
        let _ = c.tick(Seconds::new(1.0), Seconds::new(1.0));
        let shed = c.shed_least_recently_used(2);
        assert_eq!(shed.len(), 2);
        assert_eq!(c.running_count(), 2);
        c.restore_all();
        assert_eq!(c.running_count(), 4);
        assert_eq!(c.total_restarts(), 2);
    }

    #[test]
    fn shedding_more_than_running_stops_early() {
        let mut c = Cluster::prototype(2);
        let shed = c.shed_least_recently_used(5);
        assert_eq!(shed.len(), 2);
        assert_eq!(c.running_count(), 0);
        assert_eq!(c.least_recently_used_running(), None);
    }

    #[test]
    fn shed_count_twin_matches_victim_list() {
        let mut a = Cluster::prototype(5);
        let mut b = Cluster::prototype(5);
        let _ = a.tick(Seconds::new(1.0), Seconds::new(1.0));
        let _ = b.tick(Seconds::new(1.0), Seconds::new(1.0));
        assert_eq!(a.shed_least_recently_used(3).len(), 3);
        assert_eq!(b.shed_least_recently_used_count(3), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn downtime_aggregates() {
        let mut c = Cluster::prototype(2);
        c.power_off(0);
        let _ = c.tick(Seconds::new(0.0), Seconds::new(5.0));
        assert_eq!(c.total_downtime(), Seconds::new(5.0));
    }

    #[test]
    fn set_utilizations_partial() {
        let mut c = Cluster::prototype(3);
        c.set_utilizations(&[Ratio::ONE]);
        assert_eq!(c.server(0).utilization(), Ratio::ONE);
        assert_eq!(c.server(1).utilization(), Ratio::ZERO);
    }

    #[test]
    fn materialized_view_round_trips() {
        let mut c = Cluster::prototype(2);
        c.set_utilization(1, Ratio::HALF);
        c.set_frequency(1, FrequencyLevel::Low);
        let servers: Vec<Server> = (0..c.len()).map(|i| c.server(i)).collect();
        let mut rebuilt = Cluster::new(servers);
        assert_eq!(rebuilt, c);
        assert_eq!(
            rebuilt.total_demand().get().to_bits(),
            c.total_demand().get().to_bits()
        );
    }

    #[test]
    fn restart_waste_and_prospective_totals() {
        let mut c = Cluster::prototype(3);
        c.power_off(0);
        c.power_off(1);
        c.power_on(0);
        c.power_on(1);
        let per = ServerParams::prototype().restart_energy;
        assert_eq!(c.total_restart_waste(), per * 2.0);
        assert_eq!(c.prospective_total(), Watts::new(90.0));
    }

    use crate::server::ServerParams;
}
