//! A rack of servers addressed as one load.

use crate::server::{FrequencyLevel, PowerState, Server};
use heb_units::{Joules, Ratio, Seconds, Watts};

/// The server rack: the unit of load the HEB controller manages.
///
/// # Examples
///
/// ```
/// use heb_powersys::Cluster;
/// use heb_units::Ratio;
///
/// let mut cluster = Cluster::prototype(6);
/// cluster.set_all_utilization(Ratio::ONE);
/// assert_eq!(cluster.total_demand().get(), 6.0 * 70.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    servers: Vec<Server>,
}

impl Cluster {
    /// Creates a cluster from pre-built servers.
    #[must_use]
    pub fn new(servers: Vec<Server>) -> Self {
        Self { servers }
    }

    /// A cluster of `n` prototype-spec servers with ids `0..n`.
    #[must_use]
    pub fn prototype(n: usize) -> Self {
        Self {
            servers: (0..n).map(Server::prototype).collect(),
        }
    }

    /// Number of servers (running or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster has no servers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Immutable access to the servers.
    #[must_use]
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Mutable access to the servers.
    pub fn servers_mut(&mut self) -> &mut [Server] {
        &mut self.servers
    }

    /// Iterator over running servers.
    pub fn running(&self) -> impl Iterator<Item = &Server> {
        self.servers.iter().filter(|s| s.state() == PowerState::On)
    }

    /// Number of running servers.
    #[must_use]
    pub fn running_count(&self) -> usize {
        self.running().count()
    }

    /// Sets every server's utilization for the next tick.
    pub fn set_all_utilization(&mut self, utilization: Ratio) {
        for s in &mut self.servers {
            s.set_utilization(utilization);
        }
    }

    /// Sets per-server utilizations; extra values are ignored, missing
    /// values leave the server unchanged.
    pub fn set_utilizations(&mut self, utilizations: &[Ratio]) {
        for (s, &u) in self.servers.iter_mut().zip(utilizations) {
            s.set_utilization(u);
        }
    }

    /// Splits the rack into a low-frequency group (first `low_count`
    /// servers) and a high-frequency group — the paper's method for
    /// constructing small-peak and large-peak demand shapes.
    pub fn split_frequency_groups(&mut self, low_count: usize) {
        for (idx, s) in self.servers.iter_mut().enumerate() {
            s.set_frequency(if idx < low_count {
                FrequencyLevel::Low
            } else {
                FrequencyLevel::High
            });
        }
    }

    /// Aggregate instantaneous demand of all running servers.
    #[must_use]
    pub fn total_demand(&self) -> Watts {
        self.servers.iter().map(Server::power_draw).sum()
    }

    /// Advances every server one tick, returning total energy consumed.
    pub fn tick(&mut self, now: Seconds, dt: Seconds) -> Joules {
        self.servers.iter_mut().map(|s| s.tick(now, dt)).sum()
    }

    /// Whether every server is running with no pending restart
    /// surcharge. In this state a tick changes nothing but each
    /// server's last-active stamp, so the event core can fast-forward
    /// the rack across a quiet span and back-fill the stamps with
    /// [`Cluster::mark_all_active`].
    #[must_use]
    pub fn all_running_steady(&self) -> bool {
        self.servers
            .iter()
            .all(|s| s.state() == PowerState::On && !s.has_pending_restart())
    }

    /// Stamps every server as active at `now` without running a tick —
    /// the bulk form of [`Server::mark_active`] for quiet-span
    /// fast-forwarding.
    pub fn mark_all_active(&mut self, now: Seconds) {
        for s in &mut self.servers {
            s.mark_active(now);
        }
    }

    /// Aggregate downtime across all servers (the paper's *server
    /// downtime* metric, Figure 12(b)).
    #[must_use]
    pub fn total_downtime(&self) -> Seconds {
        self.servers.iter().map(Server::downtime).sum()
    }

    /// Total off→on cycles across all servers.
    #[must_use]
    pub fn total_restarts(&self) -> u64 {
        self.servers.iter().map(Server::restarts).sum()
    }

    /// The id of the least-recently-used *running* server — the victim
    /// the paper shuts down first when buffers cannot cover a peak.
    #[must_use]
    pub fn least_recently_used_running(&self) -> Option<usize> {
        self.running()
            .min_by(|a, b| {
                a.last_active()
                    .get()
                    .partial_cmp(&b.last_active().get())
                    .unwrap_or(core::cmp::Ordering::Equal)
            })
            .map(Server::id)
    }

    /// Powers off the `count` least-recently-used running servers,
    /// returning the ids actually shut down.
    pub fn shed_least_recently_used(&mut self, count: usize) -> Vec<usize> {
        let mut shed = Vec::with_capacity(count);
        for _ in 0..count {
            match self.least_recently_used_running() {
                Some(id) => {
                    self.servers[id].power_off();
                    shed.push(id);
                }
                None => break,
            }
        }
        shed
    }

    /// Powers on every off server.
    pub fn restore_all(&mut self) {
        for s in &mut self.servers {
            s.power_on();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_cluster_demand_band() {
        let mut c = Cluster::prototype(6);
        assert_eq!(c.len(), 6);
        assert_eq!(c.total_demand().get(), 180.0); // all idle
        c.set_all_utilization(Ratio::ONE);
        assert_eq!(c.total_demand().get(), 420.0); // all peak
    }

    #[test]
    fn frequency_split_reduces_group_power() {
        let mut c = Cluster::prototype(6);
        c.set_all_utilization(Ratio::ONE);
        c.split_frequency_groups(3);
        // 3 low (54 W) + 3 high (70 W)
        assert_eq!(c.total_demand().get(), 3.0 * 54.0 + 3.0 * 70.0);
    }

    #[test]
    fn lru_victim_selection() {
        let mut c = Cluster::prototype(3);
        let _ = c.tick(Seconds::new(1.0), Seconds::new(1.0));
        // Make server 1 the least recently used by powering it off
        // before a later tick refreshes the others.
        c.servers_mut()[1].power_off();
        let _ = c.tick(Seconds::new(2.0), Seconds::new(1.0));
        c.servers_mut()[1].power_on();
        // Servers 0 and 2 were active at t=2; server 1 at t=1.
        assert_eq!(c.least_recently_used_running(), Some(1));
    }

    #[test]
    fn shedding_and_restoring() {
        let mut c = Cluster::prototype(4);
        let _ = c.tick(Seconds::new(1.0), Seconds::new(1.0));
        let shed = c.shed_least_recently_used(2);
        assert_eq!(shed.len(), 2);
        assert_eq!(c.running_count(), 2);
        c.restore_all();
        assert_eq!(c.running_count(), 4);
        assert_eq!(c.total_restarts(), 2);
    }

    #[test]
    fn shedding_more_than_running_stops_early() {
        let mut c = Cluster::prototype(2);
        let shed = c.shed_least_recently_used(5);
        assert_eq!(shed.len(), 2);
        assert_eq!(c.running_count(), 0);
        assert_eq!(c.least_recently_used_running(), None);
    }

    #[test]
    fn downtime_aggregates() {
        let mut c = Cluster::prototype(2);
        c.servers_mut()[0].power_off();
        let _ = c.tick(Seconds::new(0.0), Seconds::new(5.0));
        assert_eq!(c.total_downtime(), Seconds::new(5.0));
    }

    #[test]
    fn set_utilizations_partial() {
        let mut c = Cluster::prototype(3);
        c.set_utilizations(&[Ratio::ONE]);
        assert_eq!(c.servers()[0].utilization(), Ratio::ONE);
        assert_eq!(c.servers()[1].utilization(), Ratio::ZERO);
    }
}
