//! The server power model.
//!
//! The prototype's computing nodes (Intel i7-2720QM, 30 W idle / 70 W
//! peak) only matter to HEB as controllable power sinks: their draw
//! tracks utilization, scales with the on-demand frequency governor
//! (1.3 GHz vs 1.8 GHz — how the paper constructs its small-peak and
//! large-peak workload groups), and costs extra energy across off/on
//! cycles (the waste Figure 3 attributes to power-capping via shutdown).

use heb_units::{Joules, Ratio, Seconds, Watts};

/// The two operating points of the on-demand frequency governor used in
/// the paper's evaluation (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrequencyLevel {
    /// 1.3 GHz — the low-power group, producing *small* demand peaks.
    Low,
    /// 1.8 GHz — the high-power group, producing *large* demand peaks.
    #[default]
    High,
}

impl FrequencyLevel {
    /// Multiplier applied to the dynamic (utilization-driven) power
    /// component. Low frequency trims dynamic power roughly with `f·V²`;
    /// the 0.6 factor matches the prototype's measured band.
    #[must_use]
    pub fn dynamic_scale(self) -> f64 {
        match self {
            FrequencyLevel::Low => 0.6,
            FrequencyLevel::High => 1.0,
        }
    }
}

/// Whether a server is running or has been shut down by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerState {
    /// Serving load.
    #[default]
    On,
    /// Shut down (by power capping); contributes downtime.
    Off,
}

/// Static parameters of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerParams {
    /// Power at zero utilization.
    pub idle_power: Watts,
    /// Power at full utilization and high frequency.
    pub peak_power: Watts,
    /// Extra energy burned by one off→on cycle (BIOS/OS boot at high
    /// draw). Figure 3 shows this waste eats about half the battery
    /// energy "recovered" by capping, so it must be accounted.
    pub restart_energy: Joules,
}

impl ServerParams {
    /// The prototype's 30 W idle / 70 W peak node, with a restart cost
    /// of 60 s at peak draw.
    #[must_use]
    pub fn prototype() -> Self {
        Self {
            idle_power: Watts::new(30.0),
            peak_power: Watts::new(70.0),
            restart_energy: Watts::new(70.0) * Seconds::new(60.0),
        }
    }
}

/// The single authoritative prospective-draw expression. Both the
/// object-per-server [`Server`] and the struct-of-arrays
/// [`crate::soa::ServerArrays`] evaluate power through this one
/// function, so the two layouts cannot drift apart bitwise.
#[inline]
pub(crate) fn prospective_draw_raw(
    params: &ServerParams,
    utilization: Ratio,
    frequency: FrequencyLevel,
) -> Watts {
    let dynamic =
        (params.peak_power - params.idle_power) * (utilization.get() * frequency.dynamic_scale());
    params.idle_power + dynamic
}

/// One metering tick of the server power model over exploded state —
/// the shared kernel behind [`Server::tick`] and the SoA batch sweep.
/// Field-for-field identical to the historical per-object tick.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn tick_raw(
    params: &ServerParams,
    state: PowerState,
    utilization: Ratio,
    frequency: FrequencyLevel,
    downtime: &mut Seconds,
    last_active: &mut Seconds,
    pending_restart_energy: &mut Joules,
    now: Seconds,
    dt: Seconds,
) -> Joules {
    match state {
        PowerState::Off => {
            *downtime += dt;
            Joules::zero()
        }
        PowerState::On => {
            *last_active = now;
            let mut energy = prospective_draw_raw(params, utilization, frequency) * dt;
            if pending_restart_energy.get() > 0.0 {
                // Spread the boot-energy surcharge over the first
                // post-restart ticks at up to peak draw.
                let surcharge = (params.peak_power * dt).min(*pending_restart_energy);
                *pending_restart_energy -= surcharge;
                energy += surcharge;
            }
            energy
        }
    }
}

/// One simulated server.
///
/// # Examples
///
/// ```
/// use heb_powersys::{FrequencyLevel, Server};
/// use heb_units::Ratio;
///
/// let mut s = Server::prototype(0);
/// s.set_utilization(Ratio::ONE);
/// assert_eq!(s.power_draw().get(), 70.0);
/// s.set_frequency(FrequencyLevel::Low);
/// assert!(s.power_draw().get() < 70.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    id: usize,
    params: ServerParams,
    state: PowerState,
    frequency: FrequencyLevel,
    utilization: Ratio,
    downtime: Seconds,
    restarts: u64,
    last_active: Seconds,
    pending_restart_energy: Joules,
}

impl Server {
    /// Creates a running, idle server with the given id.
    #[must_use]
    pub fn new(id: usize, params: ServerParams) -> Self {
        Self {
            id,
            params,
            state: PowerState::On,
            frequency: FrequencyLevel::High,
            utilization: Ratio::ZERO,
            downtime: Seconds::zero(),
            restarts: 0,
            last_active: Seconds::zero(),
            pending_restart_energy: Joules::zero(),
        }
    }

    /// Creates a prototype-spec server.
    #[must_use]
    pub fn prototype(id: usize) -> Self {
        Self::new(id, ServerParams::prototype())
    }

    /// The server's identifier (its relay index in the switch fabric).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The static parameters.
    #[must_use]
    pub fn params(&self) -> &ServerParams {
        &self.params
    }

    /// Current power state.
    #[must_use]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Current frequency level.
    #[must_use]
    pub fn frequency(&self) -> FrequencyLevel {
        self.frequency
    }

    /// Current utilization.
    #[must_use]
    pub fn utilization(&self) -> Ratio {
        self.utilization
    }

    /// Total time spent shut down by power capping.
    #[must_use]
    pub fn downtime(&self) -> Seconds {
        self.downtime
    }

    /// Number of off→on cycles.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Simulation time at which this server last served load, for the
    /// controller's least-recently-used shutdown victim selection.
    #[must_use]
    pub fn last_active(&self) -> Seconds {
        self.last_active
    }

    /// Sets the workload utilization for the next tick.
    pub fn set_utilization(&mut self, utilization: Ratio) {
        self.utilization = utilization.clamp_unit();
    }

    /// Sets the frequency-governor level.
    pub fn set_frequency(&mut self, frequency: FrequencyLevel) {
        self.frequency = frequency;
    }

    /// Shuts the server down (power capping). Idempotent.
    pub fn power_off(&mut self) {
        self.state = PowerState::Off;
    }

    /// Powers the server back on, charging the restart energy to the
    /// next tick. Idempotent for already-running servers.
    pub fn power_on(&mut self) {
        if self.state == PowerState::Off {
            self.state = PowerState::On;
            self.restarts += 1;
            self.pending_restart_energy = self.params.restart_energy;
        }
    }

    /// Instantaneous electrical draw: zero when off, otherwise idle plus
    /// the frequency-scaled dynamic component.
    #[must_use]
    pub fn power_draw(&self) -> Watts {
        match self.state {
            PowerState::Off => Watts::zero(),
            PowerState::On => self.prospective_draw(),
        }
    }

    /// What the server *would* draw if running — used by the controller
    /// to decide whether shed servers can be restored under the current
    /// budget. Equals [`Server::power_draw`] for running servers.
    #[must_use]
    pub fn prospective_draw(&self) -> Watts {
        prospective_draw_raw(&self.params, self.utilization, self.frequency)
    }

    /// Whether part of the boot-energy surcharge from the last restart
    /// is still waiting to be drained by upcoming ticks. A running
    /// server with no pending surcharge has a tick that reduces to
    /// stamping [`Server::last_active`] — the property the event core's
    /// quiet-span fast path relies on.
    #[must_use]
    pub fn has_pending_restart(&self) -> bool {
        self.pending_restart_energy.get() > 0.0
    }

    /// Stamps the last-active time without running a tick. The event
    /// core uses this to fast-forward a running, surcharge-free server
    /// across a quiet span: `n` ticks of [`Server::tick`] in the `On`
    /// state touch nothing but this timestamp.
    pub fn mark_active(&mut self, now: Seconds) {
        self.last_active = now;
    }

    /// Advances one metering tick of length `dt` at simulation time
    /// `now`, returning the energy consumed this tick (including any
    /// amortised restart energy).
    pub fn tick(&mut self, now: Seconds, dt: Seconds) -> Joules {
        tick_raw(
            &self.params,
            self.state,
            self.utilization,
            self.frequency,
            &mut self.downtime,
            &mut self.last_active,
            &mut self.pending_restart_energy,
            now,
            dt,
        )
    }

    /// The undrained portion of the boot-energy surcharge (SoA
    /// materialisation hook).
    pub(crate) fn pending_restart_energy(&self) -> Joules {
        self.pending_restart_energy
    }

    /// Reassembles a server from exploded state — the inverse of the
    /// struct-of-arrays decomposition in [`crate::soa::ServerArrays`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        id: usize,
        params: ServerParams,
        state: PowerState,
        frequency: FrequencyLevel,
        utilization: Ratio,
        downtime: Seconds,
        restarts: u64,
        last_active: Seconds,
        pending_restart_energy: Joules,
    ) -> Self {
        Self {
            id,
            params,
            state,
            frequency,
            utilization,
            downtime,
            restarts,
            last_active,
            pending_restart_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_and_peak_power() {
        let mut s = Server::prototype(3);
        assert_eq!(s.id(), 3);
        assert_eq!(s.power_draw(), Watts::new(30.0));
        s.set_utilization(Ratio::ONE);
        assert_eq!(s.power_draw(), Watts::new(70.0));
    }

    #[test]
    fn low_frequency_trims_dynamic_power() {
        let mut s = Server::prototype(0);
        s.set_utilization(Ratio::ONE);
        s.set_frequency(FrequencyLevel::Low);
        // 30 + 40 * 0.6 = 54 W
        assert_eq!(s.power_draw(), Watts::new(54.0));
        // Idle power is unaffected by frequency.
        s.set_utilization(Ratio::ZERO);
        assert_eq!(s.power_draw(), Watts::new(30.0));
    }

    #[test]
    fn utilization_is_clamped() {
        let mut s = Server::prototype(0);
        s.set_utilization(Ratio::new_unclamped(2.0).clamp_unit());
        assert_eq!(s.power_draw(), Watts::new(70.0));
    }

    #[test]
    fn off_servers_draw_nothing_and_accrue_downtime() {
        let mut s = Server::prototype(0);
        s.power_off();
        assert_eq!(s.power_draw(), Watts::zero());
        let e = s.tick(Seconds::new(10.0), Seconds::new(1.0));
        assert!(e.is_zero());
        assert_eq!(s.downtime(), Seconds::new(1.0));
    }

    #[test]
    fn restart_charges_boot_energy() {
        let mut s = Server::prototype(0);
        s.power_off();
        let _ = s.tick(Seconds::new(0.0), Seconds::new(1.0));
        s.power_on();
        assert_eq!(s.restarts(), 1);
        // First tick after restart: idle (30 J) + surcharge (70 J).
        let e = s.tick(Seconds::new(1.0), Seconds::new(1.0));
        assert_eq!(e, Joules::new(100.0));
        // The full 4200 J surcharge drains over 60 ticks.
        let mut total = e;
        for t in 2..62 {
            total += s.tick(Seconds::new(t as f64), Seconds::new(1.0));
        }
        assert!((total.get() - (61.0 * 30.0 + 4200.0)).abs() < 1e-9);
    }

    #[test]
    fn power_on_is_idempotent() {
        let mut s = Server::prototype(0);
        s.power_on();
        assert_eq!(s.restarts(), 0, "already-on server should not restart");
        s.power_off();
        s.power_off();
        s.power_on();
        s.power_on();
        assert_eq!(s.restarts(), 1);
    }

    #[test]
    fn last_active_tracks_running_ticks() {
        let mut s = Server::prototype(0);
        let _ = s.tick(Seconds::new(5.0), Seconds::new(1.0));
        assert_eq!(s.last_active(), Seconds::new(5.0));
        s.power_off();
        let _ = s.tick(Seconds::new(6.0), Seconds::new(1.0));
        assert_eq!(s.last_active(), Seconds::new(5.0));
    }
}
