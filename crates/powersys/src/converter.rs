//! Power-conversion stages and their losses.
//!
//! Conversion loss is what separates the three architectures of
//! Figure 7: a centralized double-converting UPS burns 4–10 % of every
//! watt it forwards, rack-level DC distribution avoids the inverter, and
//! HEB's cluster-level deployment pays one DC/AC stage. Converters are
//! value types; chain them with [`ConverterChain`].

use heb_units::{Ratio, Watts};

/// A single conversion stage with a fixed efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Converter {
    label: &'static str,
    efficiency: Ratio,
}

impl Converter {
    /// Creates a converter with the given one-way efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is zero (a converter that delivers nothing
    /// is a configuration error, not a model state).
    #[must_use]
    pub fn new(label: &'static str, efficiency: Ratio) -> Self {
        assert!(
            efficiency.get() > 0.0,
            "converter efficiency must be positive"
        );
        Self { label, efficiency }
    }

    /// An AC→DC rectifier stage (95 % efficient).
    #[must_use]
    pub fn rectifier() -> Self {
        Self::new("AC/DC", Ratio::new_clamped(0.95))
    }

    /// A DC→AC inverter stage (95 % efficient).
    #[must_use]
    pub fn inverter() -> Self {
        Self::new("DC/AC", Ratio::new_clamped(0.95))
    }

    /// A DC→DC regulation stage (98 % efficient).
    #[must_use]
    pub fn dc_regulator() -> Self {
        Self::new("DC/DC", Ratio::new_clamped(0.98))
    }

    /// Human-readable stage label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The stage's one-way efficiency.
    #[must_use]
    pub fn efficiency(&self) -> Ratio {
        self.efficiency
    }

    /// Power appearing at the output for `input` at the input.
    #[must_use]
    pub fn forward(&self, input: Watts) -> Watts {
        input * self.efficiency.get()
    }

    /// Power that must enter the stage for `output` to appear at the
    /// output.
    #[must_use]
    pub fn required_input(&self, output: Watts) -> Watts {
        output / self.efficiency.get()
    }

    /// Power dissipated when forwarding `input`.
    #[must_use]
    pub fn loss(&self, input: Watts) -> Watts {
        input - self.forward(input)
    }
}

/// An ordered chain of conversion stages.
///
/// # Examples
///
/// ```
/// use heb_powersys::{Converter, ConverterChain};
/// use heb_units::Watts;
///
/// // The centralized UPS double conversion of Figure 7(a):
/// let chain = ConverterChain::new(vec![Converter::rectifier(), Converter::inverter()]);
/// let out = chain.forward(Watts::new(100.0));
/// assert!((out.get() - 90.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConverterChain {
    stages: Vec<Converter>,
}

impl ConverterChain {
    /// Creates a chain from ordered stages. An empty chain is lossless.
    #[must_use]
    pub fn new(stages: Vec<Converter>) -> Self {
        Self { stages }
    }

    /// A lossless pass-through.
    #[must_use]
    pub fn direct() -> Self {
        Self::default()
    }

    /// The stages in order.
    #[must_use]
    pub fn stages(&self) -> &[Converter] {
        &self.stages
    }

    /// End-to-end efficiency of the chain.
    #[must_use]
    pub fn efficiency(&self) -> Ratio {
        self.stages
            .iter()
            .fold(Ratio::ONE, |acc, s| acc * s.efficiency())
    }

    /// Power delivered at the end of the chain for `input`.
    #[must_use]
    pub fn forward(&self, input: Watts) -> Watts {
        input * self.efficiency().get()
    }

    /// Power that must enter the chain for `output` to emerge.
    #[must_use]
    pub fn required_input(&self, output: Watts) -> Watts {
        output / self.efficiency().get()
    }

    /// Total power dissipated across all stages for `input`.
    #[must_use]
    pub fn loss(&self, input: Watts) -> Watts {
        input - self.forward(input)
    }
}

impl FromIterator<Converter> for ConverterChain {
    fn from_iter<I: IntoIterator<Item = Converter>>(iter: I) -> Self {
        Self {
            stages: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_back() {
        let c = Converter::rectifier();
        let out = c.forward(Watts::new(100.0));
        assert_eq!(out, Watts::new(95.0));
        let needed = c.required_input(out);
        assert!((needed.get() - 100.0).abs() < 1e-9);
        assert_eq!(c.loss(Watts::new(100.0)), Watts::new(5.0));
    }

    #[test]
    fn double_conversion_band() {
        // Double conversion should land in the paper's 4–10 % loss band.
        let chain = ConverterChain::new(vec![Converter::rectifier(), Converter::inverter()]);
        let loss_fraction = chain.loss(Watts::new(100.0)).get() / 100.0;
        assert!((0.04..=0.10).contains(&loss_fraction));
    }

    #[test]
    fn empty_chain_is_lossless() {
        let chain = ConverterChain::direct();
        assert_eq!(chain.forward(Watts::new(42.0)), Watts::new(42.0));
        assert_eq!(chain.efficiency(), Ratio::ONE);
    }

    #[test]
    fn chain_from_iterator() {
        let chain: ConverterChain = [Converter::dc_regulator(), Converter::inverter()]
            .into_iter()
            .collect();
        assert_eq!(chain.stages().len(), 2);
        assert!((chain.efficiency().get() - 0.98 * 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "efficiency must be positive")]
    fn zero_efficiency_panics() {
        let _ = Converter::new("broken", Ratio::ZERO);
    }
}
