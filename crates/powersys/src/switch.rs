//! The two-way relay fabric steering servers between power sources.
//!
//! The prototype wires every server through a two-way relay so the
//! hControl can place it on utility power, the battery pool, or the SC
//! pool within one control action (Figure 8). The fabric tracks relay
//! wear (actuation counts) because mechanical relays are a real
//! maintenance item at datacenter scale.

use heb_units::Ratio;

/// Where a server's relay currently points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerSource {
    /// The (budget-limited) utility feed — the default position.
    #[default]
    Utility,
    /// The lead-acid battery pool.
    Battery,
    /// The super-capacitor pool.
    SuperCap,
}

impl PowerSource {
    /// All source kinds, for iteration in reports.
    pub const ALL: [PowerSource; 3] = [
        PowerSource::Utility,
        PowerSource::Battery,
        PowerSource::SuperCap,
    ];
}

impl core::fmt::Display for PowerSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PowerSource::Utility => "utility",
            PowerSource::Battery => "battery",
            PowerSource::SuperCap => "supercap",
        };
        f.write_str(s)
    }
}

/// The bank of per-server relays.
///
/// # Examples
///
/// ```
/// use heb_powersys::{PowerSource, SwitchFabric};
///
/// let mut fabric = SwitchFabric::new(6);
/// // Put 30 % of servers (here: the first two) on the SC pool:
/// fabric.assign_ratio_to(PowerSource::SuperCap, 2);
/// assert_eq!(fabric.count_on(PowerSource::SuperCap), 2);
/// assert_eq!(fabric.count_on(PowerSource::Utility), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchFabric {
    positions: Vec<PowerSource>,
    /// Relays mechanically stuck in the open (utility) position: the
    /// server cannot be switched onto either buffer pool until the
    /// relay is repaired.
    stuck_open: Vec<bool>,
    actuations: u64,
}

impl SwitchFabric {
    /// Creates a fabric of `n` relays, all pointing at utility power.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            positions: vec![PowerSource::Utility; n],
            stuck_open: vec![false; n],
            actuations: 0,
        }
    }

    /// Number of relays.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the fabric has no relays.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current position of relay `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    #[must_use]
    pub fn source_of(&self, server: usize) -> PowerSource {
        self.positions[server]
    }

    /// Points relay `server` at `source`, counting an actuation only on
    /// actual change. A stuck-open relay refuses to move off utility:
    /// the assignment is silently dropped (the field failure mode — the
    /// coil energises, the contact never closes).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn assign(&mut self, server: usize, source: PowerSource) {
        if self.stuck_open[server] && source != PowerSource::Utility {
            return;
        }
        if self.positions[server] != source {
            self.positions[server] = source;
            self.actuations += 1;
        }
    }

    /// Marks relay `server` as stuck open (or repaired, with `false`).
    /// Sticking a relay forces its position back to utility without
    /// counting an actuation — the contact dropped out, nothing was
    /// commanded.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn set_stuck_open(&mut self, server: usize, stuck: bool) {
        self.stuck_open[server] = stuck;
        if stuck {
            self.positions[server] = PowerSource::Utility;
        }
    }

    /// Whether relay `server` is stuck open.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    #[must_use]
    pub fn is_stuck_open(&self, server: usize) -> bool {
        self.stuck_open[server]
    }

    /// Number of relays currently stuck open.
    #[must_use]
    pub fn stuck_open_count(&self) -> usize {
        self.stuck_open.iter().filter(|&&s| s).count()
    }

    /// Indices of relays currently stuck open, without allocating — the
    /// hot-path form used once per tick by the fault layer.
    pub fn stuck_open_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.stuck_open
            .iter()
            .enumerate()
            .filter_map(|(idx, &s)| s.then_some(idx))
    }

    /// Indices of relays currently stuck open.
    #[must_use]
    pub fn stuck_open_servers(&self) -> Vec<usize> {
        self.stuck_open_iter().collect()
    }

    /// Points every relay at `source`.
    pub fn assign_all(&mut self, source: PowerSource) {
        for idx in 0..self.positions.len() {
            self.assign(idx, source);
        }
    }

    /// Points the first `count` relays at `source` and the rest at the
    /// other buffer-or-utility default. Used to realise a coarse `R_λ`
    /// split: `count = round(R_λ · N)` servers on the SC pool.
    pub fn assign_ratio_to(&mut self, source: PowerSource, count: usize) {
        let count = count.min(self.positions.len());
        for idx in 0..count {
            self.assign(idx, source);
        }
    }

    /// Realises a full HEB split: `sc_count` relays on the SC pool, the
    /// next `battery_count` on the battery pool, the rest on utility.
    pub fn assign_split(&mut self, sc_count: usize, battery_count: usize) {
        let n = self.positions.len();
        let sc_end = sc_count.min(n);
        let ba_end = (sc_count + battery_count).min(n);
        for idx in 0..n {
            let source = if idx < sc_end {
                PowerSource::SuperCap
            } else if idx < ba_end {
                PowerSource::Battery
            } else {
                PowerSource::Utility
            };
            self.assign(idx, source);
        }
    }

    /// Number of relays currently on `source`.
    #[must_use]
    pub fn count_on(&self, source: PowerSource) -> usize {
        self.positions.iter().filter(|&&p| p == source).count()
    }

    /// Relay indices currently on `source`, without allocating — the
    /// hot-path form for per-tick scans over a fleet-sized fabric.
    pub fn servers_on_iter(&self, source: PowerSource) -> impl Iterator<Item = usize> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(move |(idx, &p)| (p == source).then_some(idx))
    }

    /// Relay indices currently on `source`.
    #[must_use]
    pub fn servers_on(&self, source: PowerSource) -> Vec<usize> {
        self.servers_on_iter(source).collect()
    }

    /// The realised SC share of servers (an `R_λ` readback).
    #[must_use]
    pub fn sc_share(&self) -> Ratio {
        if self.positions.is_empty() {
            Ratio::ZERO
        } else {
            Ratio::new_clamped(
                self.count_on(PowerSource::SuperCap) as f64 / self.positions.len() as f64,
            )
        }
    }

    /// Total relay actuations so far (a wear metric).
    #[must_use]
    pub fn actuations(&self) -> u64 {
        self.actuations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_utility() {
        let fabric = SwitchFabric::new(4);
        assert_eq!(fabric.count_on(PowerSource::Utility), 4);
        assert_eq!(fabric.sc_share(), Ratio::ZERO);
        assert_eq!(fabric.actuations(), 0);
    }

    #[test]
    fn assign_counts_actuations_only_on_change() {
        let mut fabric = SwitchFabric::new(2);
        fabric.assign(0, PowerSource::Battery);
        fabric.assign(0, PowerSource::Battery);
        assert_eq!(fabric.actuations(), 1);
        fabric.assign(0, PowerSource::SuperCap);
        assert_eq!(fabric.actuations(), 2);
    }

    #[test]
    fn split_assignment() {
        let mut fabric = SwitchFabric::new(6);
        fabric.assign_split(2, 4);
        assert_eq!(fabric.count_on(PowerSource::SuperCap), 2);
        assert_eq!(fabric.count_on(PowerSource::Battery), 4);
        assert_eq!(fabric.count_on(PowerSource::Utility), 0);
        assert_eq!(fabric.servers_on(PowerSource::SuperCap), vec![0, 1]);
        assert!((fabric.sc_share().get() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn split_saturates_at_fabric_size() {
        let mut fabric = SwitchFabric::new(3);
        fabric.assign_split(2, 5);
        assert_eq!(fabric.count_on(PowerSource::SuperCap), 2);
        assert_eq!(fabric.count_on(PowerSource::Battery), 1);
    }

    #[test]
    fn assign_all() {
        let mut fabric = SwitchFabric::new(3);
        fabric.assign_all(PowerSource::Battery);
        assert_eq!(fabric.count_on(PowerSource::Battery), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(PowerSource::SuperCap.to_string(), "supercap");
        assert_eq!(PowerSource::ALL.len(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let fabric = SwitchFabric::new(1);
        let _ = fabric.source_of(5);
    }

    #[test]
    fn stuck_open_relay_refuses_buffer_assignment() {
        let mut fabric = SwitchFabric::new(3);
        fabric.assign(1, PowerSource::Battery);
        let worn = fabric.actuations();
        fabric.set_stuck_open(1, true);
        // Sticking forced the relay back to utility without an actuation.
        assert_eq!(fabric.source_of(1), PowerSource::Utility);
        assert_eq!(fabric.actuations(), worn);
        // Buffer assignments are dropped while stuck...
        fabric.assign(1, PowerSource::SuperCap);
        assert_eq!(fabric.source_of(1), PowerSource::Utility);
        fabric.assign_all(PowerSource::Battery);
        assert_eq!(fabric.count_on(PowerSource::Battery), 2);
        assert_eq!(fabric.stuck_open_servers(), vec![1]);
        assert_eq!(fabric.stuck_open_count(), 1);
        // ...and honoured again after repair.
        fabric.set_stuck_open(1, false);
        fabric.assign(1, PowerSource::Battery);
        assert_eq!(fabric.source_of(1), PowerSource::Battery);
    }
}
