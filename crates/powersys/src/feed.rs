//! Utility and renewable power feeds.

use crate::error::PowerSysError;
use heb_units::{Joules, Ratio, Seconds, Watts};

/// The (possibly under-provisioned) utility feed.
///
/// The feed supplies at most its provisioned `budget`; demand above the
/// budget is the *peak power mismatch* the energy buffers must shave,
/// and headroom below it is the charging opportunity (Section 2.1).
///
/// # Examples
///
/// ```
/// use heb_powersys::UtilityFeed;
/// use heb_units::{Seconds, Watts};
///
/// let mut feed = UtilityFeed::new(Watts::new(260.0));
/// let (granted, shortfall) = feed.draw(Watts::new(300.0), Seconds::new(1.0));
/// assert_eq!(granted.get(), 260.0);
/// assert_eq!(shortfall.get(), 40.0);
/// assert_eq!(feed.headroom(Watts::new(300.0)).get(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityFeed {
    budget: Watts,
    /// Brownout derating factor: 1 = healthy grid, 0 = blackout.
    derate: Ratio,
    energy_supplied: Joules,
    peak_drawn: Watts,
}

impl UtilityFeed {
    /// Creates a feed with a provisioned power budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is negative.
    #[must_use]
    pub fn new(budget: Watts) -> Self {
        // heb-analyze: allow(HEB003, documented panicking twin of try_new)
        Self::try_new(budget).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects a negative budget instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PowerSysError::NegativeBudget`] if `budget` is below
    /// zero watts.
    pub fn try_new(budget: Watts) -> Result<Self, PowerSysError> {
        if budget.get() < 0.0 {
            return Err(PowerSysError::NegativeBudget);
        }
        Ok(Self {
            budget,
            derate: Ratio::ONE,
            energy_supplied: Joules::zero(),
            peak_drawn: Watts::zero(),
        })
    }

    /// The provisioned budget (nameplate, before any derating).
    #[must_use]
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Re-provisions the budget (for sweep experiments).
    pub fn set_budget(&mut self, budget: Watts) {
        self.budget = budget;
    }

    /// Derates the feed for a grid fault: `Ratio::ONE` restores full
    /// capacity, `Ratio::ZERO` models a blackout, anything between is a
    /// brownout. The nameplate budget is untouched so recovery is exact.
    pub fn derate(&mut self, factor: Ratio) {
        self.derate = factor;
    }

    /// The current derating factor (1 when the grid is healthy).
    #[must_use]
    pub fn derate_factor(&self) -> Ratio {
        self.derate
    }

    /// The budget actually deliverable right now: nameplate × derate.
    #[must_use]
    pub fn effective_budget(&self) -> Watts {
        self.budget * self.derate.get()
    }

    /// Draws up to `demand` for `dt`: returns `(granted, shortfall)`
    /// powers, accounting supplied energy and the running peak. Grants
    /// are capped at the *effective* (possibly derated) budget.
    pub fn draw(&mut self, demand: Watts, dt: Seconds) -> (Watts, Watts) {
        let granted = demand.min(self.effective_budget()).max(Watts::zero());
        let shortfall = (demand - granted).max(Watts::zero());
        self.energy_supplied += granted * dt;
        self.peak_drawn = self.peak_drawn.max(granted);
        (granted, shortfall)
    }

    /// Charging headroom left under the effective budget at a given
    /// demand.
    #[must_use]
    pub fn headroom(&self, demand: Watts) -> Watts {
        (self.effective_budget() - demand).max(Watts::zero())
    }

    /// Total energy supplied so far.
    #[must_use]
    pub fn energy_supplied(&self) -> Joules {
        self.energy_supplied
    }

    /// Highest power actually drawn so far (the quantity a peak tariff
    /// bills on).
    #[must_use]
    pub fn peak_drawn(&self) -> Watts {
        self.peak_drawn
    }
}

/// A renewable (solar) feed: a power supply that varies tick to tick and
/// cannot be dispatched — only used or lost.
///
/// # Examples
///
/// ```
/// use heb_powersys::RenewableFeed;
/// use heb_units::{Seconds, Watts};
///
/// let mut feed = RenewableFeed::new();
/// feed.set_supply(Watts::new(300.0));
/// let (used, surplus) = feed.draw(Watts::new(220.0), Seconds::new(1.0));
/// assert_eq!(used.get(), 220.0);
/// assert_eq!(surplus.get(), 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RenewableFeed {
    supply: Watts,
    /// A tripped feed (inverter trip, disconnect fault): insolation
    /// still accrues as generated energy, but none of it is deliverable
    /// — it is all curtailed, so REU drops for the outage's duration.
    offline: bool,
    energy_generated: Joules,
    energy_used: Joules,
}

impl RenewableFeed {
    /// Creates a feed with zero current supply.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the generation level for the coming tick (driven by the
    /// solar trace).
    pub fn set_supply(&mut self, supply: Watts) {
        self.supply = supply.max(Watts::zero());
    }

    /// Current generation level (raw insolation, ignoring trips).
    #[must_use]
    pub fn supply(&self) -> Watts {
        self.supply
    }

    /// Trips the feed offline or brings it back. While offline the
    /// array keeps producing (the sun does not care) but nothing is
    /// deliverable.
    pub fn set_online(&mut self, online: bool) {
        self.offline = !online;
    }

    /// Whether the feed is currently deliverable.
    #[must_use]
    pub fn is_online(&self) -> bool {
        !self.offline
    }

    /// The power actually deliverable this tick: the raw supply, or
    /// zero while tripped offline.
    #[must_use]
    pub fn available(&self) -> Watts {
        if self.offline {
            Watts::zero()
        } else {
            self.supply
        }
    }

    /// Draws up to `demand` for `dt`: returns `(used, surplus)`. The
    /// surplus is available for charging buffers; whatever the caller
    /// does not absorb is lost (curtailed) — the REU metric charges for
    /// exactly that loss. While tripped offline, everything generated
    /// this tick is curtailed.
    pub fn draw(&mut self, demand: Watts, dt: Seconds) -> (Watts, Watts) {
        let available = self.available();
        let used = demand.min(available).max(Watts::zero());
        let surplus = (available - used).max(Watts::zero());
        self.energy_generated += self.supply * dt;
        self.energy_used += used * dt;
        (used, surplus)
    }

    /// Records additional supply absorbed into storage (counts toward
    /// utilisation, not curtailment).
    pub fn absorb_into_storage(&mut self, power: Watts, dt: Seconds) {
        self.energy_used += power.max(Watts::zero()) * dt;
    }

    /// Total energy generated so far (`ΣS_RE`).
    #[must_use]
    pub fn energy_generated(&self) -> Joules {
        self.energy_generated
    }

    /// Total energy put to use so far (`ΣL_RE + ΣB_RE`).
    #[must_use]
    pub fn energy_used(&self) -> Joules {
        self.energy_used
    }

    /// Renewable energy utilisation so far — the paper's REU metric.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.energy_generated.is_zero() {
            1.0
        } else {
            (self.energy_used / self.energy_generated).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Seconds = Seconds::new(1.0);

    #[test]
    fn utility_grants_within_budget() {
        let mut feed = UtilityFeed::new(Watts::new(260.0));
        let (granted, shortfall) = feed.draw(Watts::new(200.0), TICK);
        assert_eq!(granted.get(), 200.0);
        assert_eq!(shortfall.get(), 0.0);
        assert_eq!(feed.energy_supplied().get(), 200.0);
        assert_eq!(feed.headroom(Watts::new(200.0)).get(), 60.0);
    }

    #[test]
    fn utility_caps_at_budget() {
        let mut feed = UtilityFeed::new(Watts::new(260.0));
        let (granted, shortfall) = feed.draw(Watts::new(420.0), TICK);
        assert_eq!(granted.get(), 260.0);
        assert_eq!(shortfall.get(), 160.0);
        assert_eq!(feed.peak_drawn().get(), 260.0);
    }

    #[test]
    fn negative_demand_grants_nothing() {
        let mut feed = UtilityFeed::new(Watts::new(100.0));
        let (granted, shortfall) = feed.draw(Watts::new(-5.0), TICK);
        assert_eq!(granted, Watts::zero());
        assert_eq!(shortfall, Watts::zero());
    }

    #[test]
    fn renewable_surplus_and_reu() {
        let mut feed = RenewableFeed::new();
        feed.set_supply(Watts::new(100.0));
        let (_, surplus) = feed.draw(Watts::new(60.0), TICK);
        assert_eq!(surplus.get(), 40.0);
        // Absorb half the surplus into storage; the rest is curtailed.
        feed.absorb_into_storage(Watts::new(20.0), TICK);
        assert!((feed.utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn renewable_deficit_uses_everything() {
        let mut feed = RenewableFeed::new();
        feed.set_supply(Watts::new(50.0));
        let (used, surplus) = feed.draw(Watts::new(200.0), TICK);
        assert_eq!(used.get(), 50.0);
        assert_eq!(surplus.get(), 0.0);
        assert!((feed.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_renewable_feed_reports_full_utilization() {
        assert_eq!(RenewableFeed::new().utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_panics() {
        let _ = UtilityFeed::new(Watts::new(-1.0));
    }

    #[test]
    fn try_new_rejects_negative_budget() {
        assert_eq!(
            UtilityFeed::try_new(Watts::new(-1.0)),
            Err(PowerSysError::NegativeBudget)
        );
        assert!(UtilityFeed::try_new(Watts::zero()).is_ok());
    }

    #[test]
    fn brownout_derates_grants_and_recovers_exactly() {
        let mut feed = UtilityFeed::new(Watts::new(260.0));
        feed.derate(Ratio::new_clamped(0.5));
        assert_eq!(feed.effective_budget().get(), 130.0);
        let (granted, shortfall) = feed.draw(Watts::new(200.0), TICK);
        assert_eq!(granted.get(), 130.0);
        assert_eq!(shortfall.get(), 70.0);
        assert_eq!(feed.headroom(Watts::new(100.0)).get(), 30.0);
        // Blackout: nothing deliverable.
        feed.derate(Ratio::ZERO);
        let (granted, shortfall) = feed.draw(Watts::new(50.0), TICK);
        assert_eq!(granted, Watts::zero());
        assert_eq!(shortfall.get(), 50.0);
        // Recovery restores the exact nameplate.
        feed.derate(Ratio::ONE);
        assert_eq!(feed.effective_budget().get(), 260.0);
    }

    #[test]
    fn renewable_trip_curtails_everything() {
        let mut feed = RenewableFeed::new();
        feed.set_supply(Watts::new(100.0));
        feed.set_online(false);
        assert!(!feed.is_online());
        assert_eq!(feed.available(), Watts::zero());
        let (used, surplus) = feed.draw(Watts::new(60.0), TICK);
        assert_eq!(used, Watts::zero());
        assert_eq!(surplus, Watts::zero());
        // Generation still accrued, so utilisation drops below 1.
        assert_eq!(feed.energy_generated().get(), 100.0);
        assert!((feed.utilization() - 0.0).abs() < 1e-12);
        // Back online the feed behaves exactly as before the trip.
        feed.set_online(true);
        let (used, _) = feed.draw(Watts::new(60.0), TICK);
        assert_eq!(used.get(), 60.0);
    }
}
