//! The intelligent PDU: per-second, per-server power metering.
//!
//! The prototype's IPDU reports every server's draw once per second over
//! SNMP; the hControl bases all decisions on these readings rather than
//! on ground truth. Keeping metering as an explicit layer preserves that
//! structure (and gives experiments a place to inject metering noise).

use crate::cluster::Cluster;
use heb_units::{Seconds, Watts};
use std::collections::VecDeque;

/// One metering sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterReading {
    /// Simulation time of the sample.
    pub at: Seconds,
    /// Per-server draws, indexed by server id.
    pub per_server: Vec<Watts>,
    /// Aggregate draw.
    pub total: Watts,
}

/// The metering unit, retaining a bounded history window, with
/// optional multiplicative Gaussian-ish noise on every per-server
/// sample — real IPDUs are 1–3 % instruments, and the controller only
/// ever sees their readings.
///
/// # Examples
///
/// ```
/// use heb_powersys::{Cluster, Ipdu};
/// use heb_units::{Ratio, Seconds};
///
/// let mut cluster = Cluster::prototype(2);
/// cluster.set_all_utilization(Ratio::ONE);
/// let mut ipdu = Ipdu::new(60);
/// let reading = ipdu.sample(&cluster, Seconds::new(1.0));
/// assert_eq!(reading.total.get(), 140.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ipdu {
    history: VecDeque<MeterReading>,
    window: usize,
    /// Relative (1-sigma) measurement noise; 0 = ideal instrument.
    noise_std: f64,
    /// Internal xorshift state for deterministic noise.
    rng_state: u64,
}

impl Ipdu {
    /// Creates a meter retaining the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "history window must be non-empty");
        Self {
            history: VecDeque::with_capacity(window),
            window,
            noise_std: 0.0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Same meter with multiplicative measurement noise of the given
    /// relative standard deviation, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std` is negative.
    #[must_use]
    pub fn with_noise(mut self, noise_std: f64, seed: u64) -> Self {
        assert!(noise_std >= 0.0, "noise must be non-negative");
        self.noise_std = noise_std;
        self.rng_state = seed | 1;
        self
    }

    /// One xorshift64* step mapped to a zero-mean, unit-ish-variance
    /// sample (sum of two uniforms, Irwin–Hall of 2, scaled).
    fn noise_sample(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        let u1 = (x >> 11) as f64 / (1u64 << 53) as f64;
        let mut y = self.rng_state;
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        self.rng_state = y;
        let u2 = (y >> 11) as f64 / (1u64 << 53) as f64;
        // Irwin-Hall(2) has variance 1/6; scale to unit variance.
        (u1 + u2 - 1.0) * (6.0_f64).sqrt()
    }

    /// Samples the cluster at time `at`, appends to history, and returns
    /// the reading.
    pub fn sample(&mut self, cluster: &Cluster, at: Seconds) -> MeterReading {
        let noise_std = self.noise_std;
        let per_server: Vec<Watts> = cluster
            .servers()
            .iter()
            .map(|s| {
                let truth = s.power_draw();
                if noise_std > 0.0 {
                    (truth * (1.0 + noise_std * self.noise_sample())).max(Watts::zero())
                } else {
                    truth
                }
            })
            .collect();
        let total = per_server.iter().copied().sum();
        let reading = MeterReading {
            at,
            per_server,
            total,
        };
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(reading.clone());
        reading
    }

    /// The retained samples, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &MeterReading> {
        self.history.iter()
    }

    /// The most recent sample.
    #[must_use]
    pub fn latest(&self) -> Option<&MeterReading> {
        self.history.back()
    }

    /// Mean aggregate draw over the retained window.
    #[must_use]
    pub fn mean_total(&self) -> Watts {
        if self.history.is_empty() {
            return Watts::zero();
        }
        let sum: Watts = self.history.iter().map(|r| r.total).sum();
        sum / self.history.len() as f64
    }

    /// Peak aggregate draw over the retained window.
    #[must_use]
    pub fn peak_total(&self) -> Watts {
        self.history
            .iter()
            .map(|r| r.total)
            .fold(Watts::zero(), Watts::max)
    }

    /// Minimum aggregate draw over the retained window (the valley).
    #[must_use]
    pub fn valley_total(&self) -> Watts {
        self.history
            .iter()
            .map(|r| r.total)
            .fold(Watts::new(f64::INFINITY), Watts::min)
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no samples have been taken yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_units::Ratio;

    #[test]
    fn sampling_and_stats() {
        let mut cluster = Cluster::prototype(2);
        let mut ipdu = Ipdu::new(10);
        cluster.set_all_utilization(Ratio::ZERO);
        ipdu.sample(&cluster, Seconds::new(0.0)); // 60 W
        cluster.set_all_utilization(Ratio::ONE);
        ipdu.sample(&cluster, Seconds::new(1.0)); // 140 W
        assert_eq!(ipdu.len(), 2);
        assert_eq!(ipdu.mean_total().get(), 100.0);
        assert_eq!(ipdu.peak_total().get(), 140.0);
        assert_eq!(ipdu.valley_total().get(), 60.0);
        assert_eq!(ipdu.latest().unwrap().total.get(), 140.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let cluster = Cluster::prototype(1);
        let mut ipdu = Ipdu::new(3);
        for t in 0..5 {
            ipdu.sample(&cluster, Seconds::new(t as f64));
        }
        assert_eq!(ipdu.len(), 3);
        let oldest = ipdu.history().next().unwrap();
        assert_eq!(oldest.at, Seconds::new(2.0));
    }

    #[test]
    fn per_server_readings_indexed_by_id() {
        let mut cluster = Cluster::prototype(3);
        cluster.servers_mut()[1].set_utilization(Ratio::ONE);
        let mut ipdu = Ipdu::new(1);
        let r = ipdu.sample(&cluster, Seconds::zero());
        assert_eq!(r.per_server[0].get(), 30.0);
        assert_eq!(r.per_server[1].get(), 70.0);
        assert_eq!(r.per_server[2].get(), 30.0);
    }

    #[test]
    fn empty_meter_stats() {
        let ipdu = Ipdu::new(5);
        assert!(ipdu.is_empty());
        assert_eq!(ipdu.mean_total(), Watts::zero());
        assert!(ipdu.latest().is_none());
    }

    #[test]
    #[should_panic(expected = "history window")]
    fn zero_window_panics() {
        let _ = Ipdu::new(0);
    }

    #[test]
    fn noise_perturbs_but_stays_unbiased() {
        let mut cluster = Cluster::prototype(1);
        cluster.set_all_utilization(Ratio::ONE); // 70 W truth
        let mut ipdu = Ipdu::new(1).with_noise(0.02, 7);
        let mut sum = 0.0;
        let mut any_off = false;
        let n = 5000;
        for t in 0..n {
            let r = ipdu.sample(&cluster, Seconds::new(f64::from(t)));
            sum += r.total.get();
            if (r.total.get() - 70.0).abs() > 1e-9 {
                any_off = true;
            }
        }
        assert!(any_off, "noise must actually perturb readings");
        let mean = sum / f64::from(n);
        assert!((mean - 70.0).abs() < 0.5, "biased meter: mean {mean}");
    }

    #[test]
    fn noise_is_deterministic_under_seed() {
        let cluster = Cluster::prototype(2);
        let mut a = Ipdu::new(4).with_noise(0.05, 99);
        let mut b = Ipdu::new(4).with_noise(0.05, 99);
        for t in 0..50 {
            let ra = a.sample(&cluster, Seconds::new(f64::from(t)));
            let rb = b.sample(&cluster, Seconds::new(f64::from(t)));
            assert_eq!(ra.total, rb.total);
        }
    }

    #[test]
    #[should_panic(expected = "noise must be non-negative")]
    fn negative_noise_panics() {
        let _ = Ipdu::new(1).with_noise(-0.1, 1);
    }
}
