//! The intelligent PDU: per-second, per-server power metering.
//!
//! The prototype's IPDU reports every server's draw once per second over
//! SNMP; the hControl bases all decisions on these readings rather than
//! on ground truth. Keeping metering as an explicit layer preserves that
//! structure (and gives experiments a place to inject metering noise).

use crate::cluster::Cluster;
use crate::error::PowerSysError;
use heb_units::{Seconds, Watts};
use std::collections::VecDeque;

/// The health of the metering path for one sampling instant.
///
/// Real SNMP metering fails in three characteristic ways: the poll
/// times out (dropout), the agent keeps answering with a stale cached
/// reading (freeze), or a transducer glitch returns a wildly scaled
/// value (spike). The fault-injection layer drives this enum; the
/// controller must survive all three.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MeterFault {
    /// The meter answers truthfully.
    #[default]
    Healthy,
    /// The poll is lost: no reading at all this tick.
    Dropout,
    /// The meter repeats its last reading instead of sampling.
    Freeze,
    /// The reading is scaled by the given factor (e.g. 3.0 for a 3×
    /// over-read).
    Spike(f64),
}

/// One metering sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterReading {
    /// Simulation time of the sample.
    pub at: Seconds,
    /// Per-server draws, indexed by server id.
    pub per_server: Vec<Watts>,
    /// Aggregate draw.
    pub total: Watts,
}

/// The metering unit, retaining a bounded history window, with
/// optional multiplicative Gaussian-ish noise on every per-server
/// sample — real IPDUs are 1–3 % instruments, and the controller only
/// ever sees their readings.
///
/// # Examples
///
/// ```
/// use heb_powersys::{Cluster, Ipdu};
/// use heb_units::{Ratio, Seconds};
///
/// let mut cluster = Cluster::prototype(2);
/// cluster.set_all_utilization(Ratio::ONE);
/// let mut ipdu = Ipdu::new(60);
/// let reading = ipdu.sample(&cluster, Seconds::new(1.0));
/// assert_eq!(reading.total.get(), 140.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ipdu {
    history: VecDeque<MeterReading>,
    window: usize,
    /// Relative (1-sigma) measurement noise; 0 = ideal instrument.
    noise_std: f64,
    /// Internal xorshift state for deterministic noise.
    rng_state: u64,
}

impl Ipdu {
    /// Creates a meter retaining the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        // heb-analyze: allow(HEB003, documented panicking twin of try_new)
        Self::try_new(window).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects a zero-length window instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PowerSysError::EmptyMeterWindow`] if `window` is zero.
    pub fn try_new(window: usize) -> Result<Self, PowerSysError> {
        if window == 0 {
            return Err(PowerSysError::EmptyMeterWindow);
        }
        Ok(Self {
            history: VecDeque::with_capacity(window),
            window,
            noise_std: 0.0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// Same meter with multiplicative measurement noise of the given
    /// relative standard deviation, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std` is negative.
    #[must_use]
    pub fn with_noise(mut self, noise_std: f64, seed: u64) -> Self {
        assert!(noise_std >= 0.0, "noise must be non-negative");
        self.noise_std = noise_std;
        self.rng_state = seed | 1;
        self
    }

    /// One xorshift64* step mapped to a zero-mean, unit-ish-variance
    /// sample (sum of two uniforms, Irwin–Hall of 2, scaled).
    fn noise_sample(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        let u1 = (x >> 11) as f64 / (1u64 << 53) as f64;
        let mut y = self.rng_state;
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        self.rng_state = y;
        let u2 = (y >> 11) as f64 / (1u64 << 53) as f64;
        // Irwin-Hall(2) has variance 1/6; scale to unit variance.
        (u1 + u2 - 1.0) * (6.0_f64).sqrt()
    }

    /// Samples the cluster at time `at`, appends to history, and returns
    /// a reference to the retained reading.
    ///
    /// Once the window is full the evicted reading's `per_server` buffer
    /// is recycled for the new sample, so steady-state metering does no
    /// per-tick allocation regardless of fleet size.
    pub fn sample(&mut self, cluster: &Cluster, at: Seconds) -> &MeterReading {
        let mut reading = if self.history.len() == self.window {
            // heb-analyze: allow(HEB003, pop is guarded by the length check above)
            let mut recycled = self.history.pop_front().unwrap();
            recycled.per_server.clear();
            recycled
        } else {
            MeterReading {
                at,
                per_server: Vec::with_capacity(cluster.len()),
                total: Watts::zero(),
            }
        };
        reading.at = at;
        let noise_std = self.noise_std;
        for i in 0..cluster.len() {
            let truth = cluster.power_draw(i);
            let sampled = if noise_std > 0.0 {
                (truth * (1.0 + noise_std * self.noise_sample())).max(Watts::zero())
            } else {
                truth
            };
            reading.per_server.push(sampled);
        }
        reading.total = reading.per_server.iter().copied().sum();
        self.history.push_back(reading);
        // heb-analyze: allow(HEB003, the reading was pushed on the line above)
        self.history.back().unwrap()
    }

    /// Whether this meter adds measurement noise to its samples.
    ///
    /// A noiseless meter draws nothing from its RNG, so repeated samples
    /// of an unchanged cluster are bitwise-identical — the property the
    /// event-driven simulation core relies on to fast-forward quiet
    /// spans.
    #[must_use]
    pub fn is_noiseless(&self) -> bool {
        self.noise_std == 0.0
    }

    /// Records one noiseless steady-state sample and returns its total,
    /// leaving history identical to what [`Ipdu::sample`] would have
    /// produced. Since [`Ipdu::sample`] now recycles evicted buffers
    /// itself this is a thin wrapper, retained because the event core's
    /// quiet-span fast path wants the noiseless-only contract enforced.
    ///
    /// # Panics
    ///
    /// Panics if the meter was configured with noise
    /// (see [`Ipdu::is_noiseless`]); noisy sampling must go through
    /// [`Ipdu::sample`] so the RNG stream stays aligned.
    pub fn record_steady(&mut self, cluster: &Cluster, at: Seconds) -> Watts {
        assert!(
            self.is_noiseless(),
            "record_steady requires a noiseless meter"
        );
        self.sample(cluster, at).total
    }

    /// Samples the cluster through a possibly faulty metering path.
    ///
    /// - [`MeterFault::Healthy`] behaves exactly like [`Ipdu::sample`].
    /// - [`MeterFault::Dropout`] returns `None` and records nothing —
    ///   the poll was simply lost.
    /// - [`MeterFault::Freeze`] returns the latest retained reading (or
    ///   `None` if there is none) without touching history: the agent
    ///   keeps serving stale data.
    /// - [`MeterFault::Spike(f)`] takes a real sample, scales every
    ///   channel by `f` in place, and *does* retain the corrupted
    ///   reading — bad data enters the history window just as it would
    ///   in the field.
    pub fn try_sample(
        &mut self,
        cluster: &Cluster,
        at: Seconds,
        fault: MeterFault,
    ) -> Option<&MeterReading> {
        match fault {
            MeterFault::Healthy => Some(self.sample(cluster, at)),
            MeterFault::Dropout => None,
            MeterFault::Freeze => self.latest(),
            MeterFault::Spike(factor) => {
                let factor = factor.max(0.0);
                let _ = self.sample(cluster, at);
                // Corrupt the just-appended entry in place so history
                // and the returned reference agree on the bad data.
                let back = self.history.back_mut()?;
                for w in &mut back.per_server {
                    *w = *w * factor;
                }
                back.total = back.per_server.iter().copied().sum();
                self.history.back()
            }
        }
    }

    /// The retained samples, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &MeterReading> {
        self.history.iter()
    }

    /// The most recent sample.
    #[must_use]
    pub fn latest(&self) -> Option<&MeterReading> {
        self.history.back()
    }

    /// Mean aggregate draw over the retained window.
    #[must_use]
    pub fn mean_total(&self) -> Watts {
        if self.history.is_empty() {
            return Watts::zero();
        }
        let sum: Watts = self.history.iter().map(|r| r.total).sum();
        sum / self.history.len() as f64
    }

    /// Peak aggregate draw over the retained window.
    #[must_use]
    pub fn peak_total(&self) -> Watts {
        self.history
            .iter()
            .map(|r| r.total)
            .fold(Watts::zero(), Watts::max)
    }

    /// Minimum aggregate draw over the retained window (the valley).
    #[must_use]
    pub fn valley_total(&self) -> Watts {
        self.history
            .iter()
            .map(|r| r.total)
            .fold(Watts::new(f64::INFINITY), Watts::min)
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no samples have been taken yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_units::Ratio;

    #[test]
    fn sampling_and_stats() {
        let mut cluster = Cluster::prototype(2);
        let mut ipdu = Ipdu::new(10);
        cluster.set_all_utilization(Ratio::ZERO);
        ipdu.sample(&cluster, Seconds::new(0.0)); // 60 W
        cluster.set_all_utilization(Ratio::ONE);
        ipdu.sample(&cluster, Seconds::new(1.0)); // 140 W
        assert_eq!(ipdu.len(), 2);
        assert_eq!(ipdu.mean_total().get(), 100.0);
        assert_eq!(ipdu.peak_total().get(), 140.0);
        assert_eq!(ipdu.valley_total().get(), 60.0);
        assert_eq!(ipdu.latest().unwrap().total.get(), 140.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let cluster = Cluster::prototype(1);
        let mut ipdu = Ipdu::new(3);
        for t in 0..5 {
            ipdu.sample(&cluster, Seconds::new(t as f64));
        }
        assert_eq!(ipdu.len(), 3);
        let oldest = ipdu.history().next().unwrap();
        assert_eq!(oldest.at, Seconds::new(2.0));
    }

    #[test]
    fn per_server_readings_indexed_by_id() {
        let mut cluster = Cluster::prototype(3);
        cluster.set_utilization(1, Ratio::ONE);
        let mut ipdu = Ipdu::new(1);
        let r = ipdu.sample(&cluster, Seconds::zero());
        assert_eq!(r.per_server[0].get(), 30.0);
        assert_eq!(r.per_server[1].get(), 70.0);
        assert_eq!(r.per_server[2].get(), 30.0);
    }

    #[test]
    fn record_steady_matches_sample_bitwise() {
        let mut cluster = Cluster::prototype(3);
        cluster.set_utilization(1, Ratio::ONE);
        let mut sampled = Ipdu::new(4);
        let mut steady = Ipdu::new(4);
        // Cover both the filling phase and the recycling (window-full)
        // phase; the two meters must agree bitwise throughout.
        for t in 0..10 {
            let at = Seconds::new(t as f64);
            let a = sampled.sample(&cluster, at).total;
            let b = steady.record_steady(&cluster, at);
            assert_eq!(a.get().to_bits(), b.get().to_bits());
        }
        assert_eq!(sampled.len(), steady.len());
        for (a, b) in sampled.history().zip(steady.history()) {
            assert_eq!(a, b);
        }
        assert_eq!(sampled.peak_total(), steady.peak_total());
        assert_eq!(sampled.valley_total(), steady.valley_total());
    }

    #[test]
    #[should_panic(expected = "noiseless")]
    fn record_steady_rejects_noisy_meter() {
        let cluster = Cluster::prototype(1);
        let mut ipdu = Ipdu::new(4).with_noise(0.01, 7);
        let _ = ipdu.record_steady(&cluster, Seconds::zero());
    }

    #[test]
    fn empty_meter_stats() {
        let ipdu = Ipdu::new(5);
        assert!(ipdu.is_empty());
        assert_eq!(ipdu.mean_total(), Watts::zero());
        assert!(ipdu.latest().is_none());
    }

    #[test]
    #[should_panic(expected = "history window")]
    fn zero_window_panics() {
        let _ = Ipdu::new(0);
    }

    #[test]
    fn noise_perturbs_but_stays_unbiased() {
        let mut cluster = Cluster::prototype(1);
        cluster.set_all_utilization(Ratio::ONE); // 70 W truth
        let mut ipdu = Ipdu::new(1).with_noise(0.02, 7);
        let mut sum = 0.0;
        let mut any_off = false;
        let n = 5000;
        for t in 0..n {
            let r = ipdu.sample(&cluster, Seconds::new(f64::from(t)));
            sum += r.total.get();
            if (r.total.get() - 70.0).abs() > 1e-9 {
                any_off = true;
            }
        }
        assert!(any_off, "noise must actually perturb readings");
        let mean = sum / f64::from(n);
        assert!((mean - 70.0).abs() < 0.5, "biased meter: mean {mean}");
    }

    #[test]
    fn noise_is_deterministic_under_seed() {
        let cluster = Cluster::prototype(2);
        let mut a = Ipdu::new(4).with_noise(0.05, 99);
        let mut b = Ipdu::new(4).with_noise(0.05, 99);
        for t in 0..50 {
            let ra = a.sample(&cluster, Seconds::new(f64::from(t)));
            let rb = b.sample(&cluster, Seconds::new(f64::from(t)));
            assert_eq!(ra.total, rb.total);
        }
    }

    #[test]
    #[should_panic(expected = "noise must be non-negative")]
    fn negative_noise_panics() {
        let _ = Ipdu::new(1).with_noise(-0.1, 1);
    }

    #[test]
    fn try_new_rejects_zero_window() {
        assert_eq!(Ipdu::try_new(0), Err(PowerSysError::EmptyMeterWindow));
        assert!(Ipdu::try_new(1).is_ok());
    }

    #[test]
    fn dropout_returns_none_and_records_nothing() {
        let cluster = Cluster::prototype(2);
        let mut ipdu = Ipdu::new(4);
        assert!(ipdu
            .try_sample(&cluster, Seconds::zero(), MeterFault::Dropout)
            .is_none());
        assert!(ipdu.is_empty());
    }

    #[test]
    fn freeze_serves_stale_reading_without_appending() {
        let mut cluster = Cluster::prototype(2);
        let mut ipdu = Ipdu::new(4);
        // No history yet: a frozen meter has nothing to serve.
        assert!(ipdu
            .try_sample(&cluster, Seconds::zero(), MeterFault::Freeze)
            .is_none());
        cluster.set_all_utilization(Ratio::ONE);
        ipdu.sample(&cluster, Seconds::new(1.0)); // 140 W truth
        cluster.set_all_utilization(Ratio::ZERO); // truth drops to 60 W
        let stale = ipdu
            .try_sample(&cluster, Seconds::new(2.0), MeterFault::Freeze)
            .unwrap()
            .clone();
        assert_eq!(stale.total.get(), 140.0, "freeze must serve stale data");
        assert_eq!(stale.at, Seconds::new(1.0));
        assert_eq!(ipdu.len(), 1, "freeze must not grow history");
    }

    #[test]
    fn spike_scales_reading_and_corrupts_history() {
        let mut cluster = Cluster::prototype(2);
        cluster.set_all_utilization(Ratio::ONE); // 140 W truth
        let mut ipdu = Ipdu::new(4);
        let spiked = ipdu
            .try_sample(&cluster, Seconds::zero(), MeterFault::Spike(3.0))
            .unwrap()
            .total;
        assert_eq!(spiked.get(), 420.0);
        assert_eq!(ipdu.latest().unwrap().total.get(), 420.0);
        assert_eq!(ipdu.peak_total().get(), 420.0);
    }

    #[test]
    fn healthy_try_sample_matches_sample() {
        let cluster = Cluster::prototype(2);
        let mut a = Ipdu::new(4);
        let mut b = Ipdu::new(4);
        let ra = a
            .try_sample(&cluster, Seconds::zero(), MeterFault::Healthy)
            .unwrap();
        let rb = b.sample(&cluster, Seconds::zero());
        assert_eq!(ra, rb);
    }
}
