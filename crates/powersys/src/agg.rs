//! Hierarchical power aggregation: rack → datacenter cached sums.
//!
//! `Cluster::total_demand` and the LRU shed-victim search were flat
//! O(servers) scans, re-run several times per tick. At fleet scale that
//! dominates everything. [`AggTree`] groups servers into racks of
//! [`RACK_FANOUT`] and caches, per rack, the demand sum and the
//! least-recently-used running member; mutations invalidate only the
//! touched rack, so refreshing costs O(dirty racks · fanout + racks)
//! instead of O(servers) — and with a steady workload (the megafleet
//! regime) a tick dirties nothing at all and the cached total is
//! returned as-is.
//!
//! # Bit-identity
//!
//! The cached total is the fold, in rack order, of per-rack sums taken
//! in index order. Every historical scenario (and every golden trace)
//! runs well under [`RACK_FANOUT`] servers, so it occupies exactly one
//! rack and the tree total degenerates to the legacy flat left-to-right
//! sum: `0.0 + rack₀` where `rack₀ = 0.0 + s₀ + s₁ + …`, and adding a
//! non-negative f64 to `+0.0` is exact. Scenarios larger than one rack
//! have no legacy traces to match; their tree-order total is
//! deterministic and differs from the flat sum only by summation order.
//!
//! The LRU cache reproduces `Iterator::min_by` semantics exactly: ties
//! resolve to the *first* (lowest-index) minimal running server, both
//! within a rack and across racks.

use crate::soa::ServerArrays;
use heb_units::Watts;

/// Servers per rack node. Must stay above the largest legacy scenario
/// (prototype experiments top out at 6–18 servers) so historical runs
/// stay single-rack and therefore bit-identical to the flat sum.
pub const RACK_FANOUT: usize = 64;

/// Cached per-rack least-recently-used running member.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RackLru {
    /// Needs recomputation.
    Stale,
    /// No running member in this rack.
    NoneRunning,
    /// First running member with the minimal last-active stamp.
    Min {
        /// The minimal last-active value, in seconds.
        last_active: f64,
        /// Index of the first server achieving it.
        index: usize,
    },
}

/// The aggregation tree over a [`ServerArrays`] fleet.
///
/// The tree is an acceleration cache, not state: two trees over equal
/// fleets may differ in which entries are dirty, so `Cluster` equality
/// deliberately ignores it.
#[derive(Debug, Clone)]
pub struct AggTree {
    /// Cached demand sum per rack, valid where `!demand_dirty`.
    rack_demand: Vec<f64>,
    demand_dirty: Vec<bool>,
    /// Cached datacenter total; valid only when `total_valid`.
    total: f64,
    total_valid: bool,
    rack_lru: Vec<RackLru>,
}

impl AggTree {
    /// A tree over `n` servers with every cache cold.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let racks = n.div_ceil(RACK_FANOUT);
        Self {
            rack_demand: vec![0.0; racks],
            demand_dirty: vec![true; racks],
            total: 0.0,
            total_valid: false,
            rack_lru: vec![RackLru::Stale; racks],
        }
    }

    /// Number of rack nodes.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.rack_demand.len()
    }

    /// Invalidates the demand sum covering server `i`.
    pub fn touch_demand(&mut self, i: usize) {
        self.demand_dirty[i / RACK_FANOUT] = true;
        self.total_valid = false;
    }

    /// Invalidates the LRU cache covering server `i`.
    pub fn touch_lru(&mut self, i: usize) {
        self.rack_lru[i / RACK_FANOUT] = RackLru::Stale;
    }

    /// Invalidates every LRU cache (a cluster tick restamps every
    /// running server).
    pub fn touch_all_lru(&mut self) {
        self.rack_lru.fill(RackLru::Stale);
    }

    /// Invalidates everything (bulk state changes).
    pub fn touch_all(&mut self) {
        self.demand_dirty.fill(true);
        self.total_valid = false;
        self.rack_lru.fill(RackLru::Stale);
    }

    /// The datacenter demand total, refreshing only dirty racks.
    pub fn total_demand(&mut self, fleet: &ServerArrays) -> Watts {
        if !self.total_valid {
            let n = fleet.len();
            for rack in 0..self.rack_demand.len() {
                if self.demand_dirty[rack] {
                    let start = rack * RACK_FANOUT;
                    let end = (start + RACK_FANOUT).min(n);
                    let mut sum = 0.0_f64;
                    for i in start..end {
                        sum += fleet.power_draw(i).get();
                    }
                    self.rack_demand[rack] = sum;
                    self.demand_dirty[rack] = false;
                }
            }
            self.total = self.rack_demand.iter().sum();
            self.total_valid = true;
        }
        Watts::new(self.total)
    }

    /// The first (lowest-index) running server with the minimal
    /// last-active stamp, refreshing only dirty racks — the legacy
    /// `running().min_by(last_active)` victim with `min_by`'s
    /// first-on-tie semantics.
    pub fn least_recently_used_running(&mut self, fleet: &ServerArrays) -> Option<usize> {
        let n = fleet.len();
        let mut best: Option<(f64, usize)> = None;
        for rack in 0..self.rack_lru.len() {
            if self.rack_lru[rack] == RackLru::Stale {
                self.rack_lru[rack] = Self::scan_rack(fleet, rack, n);
            }
            if let RackLru::Min { last_active, index } = self.rack_lru[rack] {
                // Strict `<` keeps the first minimal across racks, and
                // racks are visited in index order.
                if best.is_none_or(|(b, _)| last_active < b) {
                    best = Some((last_active, index));
                }
            }
        }
        best.map(|(_, index)| index)
    }

    fn scan_rack(fleet: &ServerArrays, rack: usize, n: usize) -> RackLru {
        let start = rack * RACK_FANOUT;
        let end = (start + RACK_FANOUT).min(n);
        let mut min: Option<(f64, usize)> = None;
        for i in start..end {
            if fleet.state(i) != crate::PowerState::On {
                continue;
            }
            let stamp = fleet.last_active(i).get();
            // Strict `<` keeps the first minimal within the rack.
            if min.is_none_or(|(b, _)| stamp < b) {
                min = Some((stamp, i));
            }
        }
        match min {
            None => RackLru::NoneRunning,
            Some((last_active, index)) => RackLru::Min { last_active, index },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_units::{Ratio, Seconds};

    #[test]
    fn single_rack_total_matches_flat_sum_bitwise() {
        let mut fleet = ServerArrays::prototype(7);
        let mut tree = AggTree::new(7);
        for i in 0..7 {
            let _ = fleet.set_utilization(i, Ratio::new_clamped(0.1 + 0.13 * i as f64));
            tree.touch_demand(i);
        }
        let flat: f64 = (0..7).map(|i| fleet.power_draw(i).get()).sum();
        assert_eq!(tree.total_demand(&fleet).get().to_bits(), flat.to_bits());
        // A cached re-read returns the same bits.
        assert_eq!(tree.total_demand(&fleet).get().to_bits(), flat.to_bits());
    }

    #[test]
    fn partial_invalidation_refreshes_only_touched_rack() {
        let n = RACK_FANOUT + 5;
        let mut fleet = ServerArrays::prototype(n);
        let mut tree = AggTree::new(n);
        assert_eq!(tree.racks(), 2);
        let before = tree.total_demand(&fleet);
        // Change one server in the second rack.
        let i = RACK_FANOUT + 2;
        let _ = fleet.set_utilization(i, Ratio::ONE);
        tree.touch_demand(i);
        let after = tree.total_demand(&fleet);
        assert!(after > before);
        // The delta equals the one changed draw (both racks re-folded).
        let expect: f64 = {
            let r0: f64 = (0..RACK_FANOUT).map(|j| fleet.power_draw(j).get()).sum();
            let r1: f64 = (RACK_FANOUT..n).map(|j| fleet.power_draw(j).get()).sum();
            r0 + r1
        };
        assert_eq!(after.get().to_bits(), expect.to_bits());
    }

    #[test]
    fn lru_matches_min_by_first_on_tie() {
        let n = RACK_FANOUT * 2;
        let mut fleet = ServerArrays::prototype(n);
        let mut tree = AggTree::new(n);
        // Everyone at stamp 5.0, two servers tied at stamp 2.0 — one in
        // each rack. min_by keeps the first.
        for i in 0..n {
            fleet.mark_active(i, Seconds::new(5.0));
        }
        fleet.mark_active(3, Seconds::new(2.0));
        fleet.mark_active(RACK_FANOUT + 1, Seconds::new(2.0));
        tree.touch_all_lru();
        assert_eq!(tree.least_recently_used_running(&fleet), Some(3));
        // Shutting the winner down and touching its rack moves the
        // victim to the other rack's minimum.
        let _ = fleet.power_off(3);
        tree.touch_lru(3);
        assert_eq!(
            tree.least_recently_used_running(&fleet),
            Some(RACK_FANOUT + 1)
        );
        // All off → no victim.
        for i in 0..n {
            let _ = fleet.power_off(i);
        }
        tree.touch_all_lru();
        assert_eq!(tree.least_recently_used_running(&fleet), None);
    }
}
