//! Counters, gauges, and histograms with a deterministic [`Snapshot`]
//! export, plus [`ScopedTimer`] for wall-clock phase timings.
//!
//! The registry is name-keyed and lazily populated; names are plain
//! strings so call sites can build `sim.scenario.<label>` style keys.
//! Export ordering is alphabetical (`BTreeMap`), so two snapshots of
//! identical state render identically.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    /// f64 stored by bit pattern; gauges are last-write-wins so a
    /// relaxed u64 swap is exactly the semantics we need.
    bits: AtomicU64,
    set: AtomicI64,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
        self.set.store(1, Ordering::Relaxed);
    }

    /// Current value (0.0 until first set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Running distribution summary: count, sum, min, max. Bucketless —
/// enough for phase timings and per-scenario latencies without a
/// fixed bucket layout baked into the public API.
#[derive(Debug, Default)]
pub struct Histogram {
    inner: Mutex<HistogramState>,
}

#[derive(Debug, Clone, Copy, Default)]
struct HistogramState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let Ok(mut state) = self.inner.lock() else {
            return;
        };
        if state.count == 0 {
            state.min = value;
            state.max = value;
        } else {
            state.min = state.min.min(value);
            state.max = state.max.max(value);
        }
        state.count += 1;
        state.sum += value;
    }

    fn state(&self) -> HistogramState {
        self.inner.lock().map(|s| *s).unwrap_or_default()
    }
}

/// Immutable histogram summary inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
}

impl HistogramSummary {
    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A name-keyed registry of counters, gauges, and histograms.
///
/// Cheap to share (`Arc<Metrics>`); instrument lookup takes a short
/// registry lock, after which the returned handle updates lock-free
/// (counters/gauges) or under its own lock (histograms).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let Ok(mut counters) = self.counters.lock() else {
            return Arc::new(Counter::default());
        };
        Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let Ok(mut gauges) = self.gauges.lock() else {
            return Arc::new(Gauge::default());
        };
        Arc::clone(
            gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let Ok(mut histograms) = self.histograms.lock() else {
            return Arc::new(Histogram::default());
        };
        Arc::clone(
            histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Starts a wall-clock timer that records elapsed seconds into
    /// the histogram named `name` when dropped.
    #[must_use]
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer {
            histogram: self.histogram(name),
            start: Instant::now(),
        }
    }

    /// A point-in-time copy of every instrument, alphabetically
    /// keyed.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .map(|c| c.iter().map(|(k, v)| (k.clone(), v.get())).collect())
            .unwrap_or_default();
        let gauges = self
            .gauges
            .lock()
            .map(|g| {
                g.iter()
                    .filter(|(_, v)| v.set.load(Ordering::Relaxed) != 0)
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect()
            })
            .unwrap_or_default();
        let histograms = self
            .histograms
            .lock()
            .map(|h| {
                h.iter()
                    .map(|(k, v)| {
                        let s = v.state();
                        (
                            k.clone(),
                            HistogramSummary {
                                count: s.count,
                                sum: s.sum,
                                min: s.min,
                                max: s.max,
                            },
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Records elapsed wall-clock seconds into a histogram on drop.
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl ScopedTimer {
    /// Seconds elapsed so far (the timer keeps running).
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed().as_secs_f64());
    }
}

/// A point-in-time, deterministically ordered export of a
/// [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Counter value by name, if it exists.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value by name, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary by name, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms.get(name).copied()
    }

    /// All counters, alphabetical.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All set gauges, alphabetical.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, alphabetical.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Whether the snapshot holds no instruments at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a single JSON object with fixed field
    /// order (`counters`, `gauges`, `histograms`; keys alphabetical).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count, h.sum, h.min, h.max
            );
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "counter    {name:<40} {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "gauge      {name:<40} {value:.6}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "histogram  {name:<40} n={} mean={:.6} min={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.min,
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let metrics = Metrics::new();
        metrics.counter("a").add(3);
        metrics.counter("a").increment();
        metrics.counter("b").increment();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("a"), Some(4));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins_and_unset_until_written() {
        let metrics = Metrics::new();
        let gauge = metrics.gauge("soc");
        assert_eq!(metrics.snapshot().gauge("soc"), None);
        gauge.set(0.4);
        gauge.set(0.9);
        assert_eq!(metrics.snapshot().gauge("soc"), Some(0.9));
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let metrics = Metrics::new();
        let hist = metrics.histogram("latency");
        hist.observe(2.0);
        hist.observe(0.5);
        hist.observe(1.5);
        let summary = metrics.snapshot().histogram("latency").unwrap();
        assert_eq!(summary.count, 3);
        assert!((summary.sum - 4.0).abs() < 1e-12);
        assert!((summary.min - 0.5).abs() < 1e-12);
        assert!((summary.max - 2.0).abs() < 1e-12);
        assert!((summary.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let metrics = Metrics::new();
        {
            let timer = metrics.timer("phase.simulate");
            assert!(timer.elapsed_seconds() >= 0.0);
        }
        let summary = metrics.snapshot().histogram("phase.simulate").unwrap();
        assert_eq!(summary.count, 1);
        assert!(summary.sum >= 0.0);
    }

    #[test]
    fn snapshot_export_is_deterministic_and_ordered() {
        let metrics = Metrics::new();
        metrics.counter("z").increment();
        metrics.counter("a").increment();
        metrics.gauge("g").set(1.5);
        metrics.histogram("h").observe(2.0);
        let snap = metrics.snapshot();
        assert_eq!(snap.to_json(), snap.to_json());
        let names: Vec<&str> = snap.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "z"]);
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"a\":1,\"z\":1},\"gauges\":{\"g\":1.5},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":2,\"min\":2,\"max\":2}}}"
        );
        let rendered = snap.to_string();
        assert!(rendered.contains("counter    a"));
        assert!(rendered.contains("histogram  h"));
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        assert!(Metrics::new().snapshot().is_empty());
    }
}
