//! Typed simulator events and their canonical JSONL encoding.
//!
//! Every observable state change in the stack maps to one [`Event`]
//! variant: slot-level controller decisions, buffer-pool state, power
//! delivery transitions, and fault-injection edges. The JSON encoding
//! is hand-rolled (the build environment is offline, so serde is
//! unavailable) and **deterministic**: field order is fixed and floats
//! use Rust's shortest-round-trip formatting, so a fixed-seed run
//! produces a bit-identical event stream every time.

use heb_units::{Joules, Ratio, Seconds, Watts};

/// Which buffer pool an ESD event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolId {
    /// The super-capacitor pool.
    SuperCap,
    /// The battery pool.
    Battery,
}

impl PoolId {
    /// Short stable name used in the JSON encoding (`"sc"` / `"ba"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PoolId::SuperCap => "sc",
            PoolId::Battery => "ba",
        }
    }
}

/// Slot-level decisions of the hControl controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerEvent {
    /// A control slot opened with this plan.
    SlotPlanned {
        /// Slot index (completed-slot count when the slot opened).
        slot: u64,
        /// Predicted net mismatch for the slot.
        predicted_mismatch: Watts,
        /// Small/large classification (`"small"` / `"large"`).
        peak_size: &'static str,
        /// Load-assignment ratio chosen for the slot.
        r_lambda: f64,
        /// Discharge routing name.
        discharge: &'static str,
        /// Charge routing name.
        charge: &'static str,
    },
    /// The slot decision was re-run mid-slot (budget changed).
    Replanned {
        /// Simulated time of the re-plan.
        time: Seconds,
        /// What forced it (e.g. `"budget-change"`).
        reason: &'static str,
    },
    /// A cold PAT key was populated at slot end.
    PatInserted {
        /// Slot index that produced the entry.
        slot: u64,
        /// The `R_λ` stored.
        r_lambda: f64,
    },
    /// An existing PAT entry went through the `Δr` update.
    PatUpdated {
        /// Slot index that drove the update.
        slot: u64,
    },
    /// Degraded forecasting switched on or off.
    ForecastDegraded {
        /// Slot index at the transition.
        slot: u64,
        /// Whether the controller now plans from last-good values.
        degraded: bool,
    },
}

/// Energy-storage state and structural changes.
#[derive(Debug, Clone, PartialEq)]
pub enum EsdEvent {
    /// Per-pool state sampled at a slot boundary (the Figure 5/12 SoC
    /// curves are drawn from these).
    PoolState {
        /// Simulated time of the sample.
        time: Seconds,
        /// Which pool.
        pool: PoolId,
        /// State of charge of the usable window.
        soc: Ratio,
        /// Mean member open-circuit voltage.
        voltage: f64,
        /// Dispatchable energy right now.
        available: Joules,
        /// Cumulative amp-hour throughput (battery pools; 0 for SCs).
        throughput_ah: f64,
    },
    /// A member (string/module) was quarantined out of the pool.
    MemberQuarantined {
        /// Which pool.
        pool: PoolId,
        /// Member index.
        member: usize,
    },
    /// A quarantined member returned to service.
    MemberRestored {
        /// Which pool.
        pool: PoolId,
        /// Member index.
        member: usize,
    },
    /// A permanent ageing step was applied to the pool.
    Degraded {
        /// Which pool.
        pool: PoolId,
        /// Fraction of nameplate capacity lost.
        capacity_fade: Ratio,
        /// Relative internal-resistance growth.
        resistance_growth: f64,
    },
}

/// Power-delivery transitions: feed health, shedding, and relay moves.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerEvent {
    /// The deliverable utility budget was derated (1.0 = nameplate,
    /// 0.0 = blackout).
    BudgetDerated {
        /// Simulated time of the edge.
        time: Seconds,
        /// Fraction of nameplate still deliverable.
        factor: Ratio,
    },
    /// The renewable feed went offline or came back.
    SolarAvailability {
        /// Simulated time of the edge.
        time: Seconds,
        /// Whether the feed is online.
        online: bool,
    },
    /// Servers were shed (capped) after a shortfall.
    Shed {
        /// Simulated time of the shed.
        time: Seconds,
        /// How many servers dropped.
        servers: usize,
    },
    /// All shed servers were restored.
    Restored {
        /// Simulated time of the restore.
        time: Seconds,
    },
    /// The relay fabric was reassigned to mirror a new slot plan.
    RelayAssignment {
        /// Slot index the assignment mirrors.
        slot: u64,
        /// Servers pointed at the SC pool.
        sc_servers: usize,
        /// Servers pointed at the battery pool.
        ba_servers: usize,
    },
}

/// Fault-injection edges, as applied by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A scheduled fault took effect.
    Injected {
        /// Simulated time of the onset.
        time: Seconds,
        /// The fault's stable spec name (e.g. `"blackout"`).
        kind: &'static str,
    },
    /// A fault's duration elapsed and it was rolled back.
    Recovered {
        /// Simulated time of the recovery.
        time: Seconds,
        /// The fault's stable spec name.
        kind: &'static str,
    },
}

/// Execution-robustness edges of the fleet engine (the `heb-harden`
/// layer): retries, quarantines, cache degradation, and resumption.
///
/// Unlike the simulator events these carry owned `String` fields
/// (scenario hashes, run ids, failure reasons), which are JSON-escaped
/// on encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// A failed scenario attempt was scheduled for a deterministic
    /// backoff-then-retry.
    RetryScheduled {
        /// The scenario's content hash (32 hex digits).
        scenario: String,
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// Backoff before the next attempt, in milliseconds.
        backoff_ms: u64,
        /// What the failed attempt died of.
        reason: String,
    },
    /// A scenario exhausted every attempt and was quarantined: the run
    /// continues without it instead of being poisoned.
    ScenarioQuarantined {
        /// The scenario's content hash (32 hex digits).
        scenario: String,
        /// Total attempts consumed.
        attempts: u32,
        /// The terminal failure.
        reason: String,
    },
    /// The result cache dropped to a lower service level
    /// (`read-write` → `read-only` → `disabled`).
    CacheDegraded {
        /// The mode the cache degraded *to* (`"read-only"` /
        /// `"disabled"`).
        mode: &'static str,
        /// The classified I/O failure that forced the drop.
        reason: String,
    },
    /// A journaled run was resumed and completed scenarios were
    /// settled from the run store instead of re-executing.
    RunResumed {
        /// The run id (the journal directory name).
        run_id: String,
        /// Scenarios replayed from the run store.
        completed: usize,
        /// Scenarios still to execute.
        remaining: usize,
    },
}

/// Request-lifecycle edges of the capacity-advisor service
/// (`heb_serve`): query arrival, how each answer was produced, and
/// shutdown draining.
///
/// Like [`FleetEvent`] these carry owned `String` fields (scenario
/// hashes, rejection reasons) that are JSON-escaped on encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEvent {
    /// A well-formed provisioning query was accepted for answering.
    QueryReceived {
        /// The scenario's content hash (32 hex digits).
        scenario: String,
    },
    /// A query was answered.
    QueryServed {
        /// The scenario's content hash (32 hex digits).
        scenario: String,
        /// How the report was obtained: `"cache"`, `"simulated"`, or
        /// `"coalesced"` (joined an identical in-flight simulation).
        source: &'static str,
    },
    /// A query was refused before reaching the engine (parse or
    /// validation failure).
    QueryRejected {
        /// Why the query was refused.
        reason: String,
    },
    /// Graceful shutdown began; the server stops accepting and drains.
    Draining {
        /// Requests still in flight when draining started.
        in_flight: usize,
    },
}

/// Execution edges of the simulation driver itself (the event core's
/// fast path), clock-stamped like the simulator events. These describe
/// how the run was *executed*, not what the simulated plant did, so
/// they only appear in event-mode traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriverEvent {
    /// The event-mode driver fast-forwarded a provably quiet span
    /// instead of stepping it tick by tick.
    Leaped {
        /// Simulated time at the start of the span.
        time: Seconds,
        /// Metering ticks the span covered.
        ticks: u64,
    },
}

/// One observable state change anywhere in the simulated stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// hControl decision.
    Controller(ControllerEvent),
    /// Buffer-pool state or structure.
    Esd(EsdEvent),
    /// Power-delivery transition.
    Power(PowerEvent),
    /// Fault-injection edge.
    Fault(FaultEvent),
    /// Fleet-engine robustness edge.
    Fleet(FleetEvent),
    /// Capacity-advisor service request edge.
    Serve(ServeEvent),
    /// Simulation-driver execution edge.
    Driver(DriverEvent),
}

impl Event {
    /// The event's stable dotted type name (the JSON `type` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Controller(e) => match e {
                ControllerEvent::SlotPlanned { .. } => "controller.slot_planned",
                ControllerEvent::Replanned { .. } => "controller.replanned",
                ControllerEvent::PatInserted { .. } => "controller.pat_inserted",
                ControllerEvent::PatUpdated { .. } => "controller.pat_updated",
                ControllerEvent::ForecastDegraded { .. } => "controller.forecast_degraded",
            },
            Event::Esd(e) => match e {
                EsdEvent::PoolState { .. } => "esd.pool_state",
                EsdEvent::MemberQuarantined { .. } => "esd.member_quarantined",
                EsdEvent::MemberRestored { .. } => "esd.member_restored",
                EsdEvent::Degraded { .. } => "esd.degraded",
            },
            Event::Power(e) => match e {
                PowerEvent::BudgetDerated { .. } => "power.budget_derated",
                PowerEvent::SolarAvailability { .. } => "power.solar_availability",
                PowerEvent::Shed { .. } => "power.shed",
                PowerEvent::Restored { .. } => "power.restored",
                PowerEvent::RelayAssignment { .. } => "power.relay_assignment",
            },
            Event::Fault(e) => match e {
                FaultEvent::Injected { .. } => "fault.injected",
                FaultEvent::Recovered { .. } => "fault.recovered",
            },
            Event::Fleet(e) => match e {
                FleetEvent::RetryScheduled { .. } => "fleet.retry_scheduled",
                FleetEvent::ScenarioQuarantined { .. } => "fleet.scenario_quarantined",
                FleetEvent::CacheDegraded { .. } => "fleet.cache_degraded",
                FleetEvent::RunResumed { .. } => "fleet.run_resumed",
            },
            Event::Serve(e) => match e {
                ServeEvent::QueryReceived { .. } => "serve.query_received",
                ServeEvent::QueryServed { .. } => "serve.query_served",
                ServeEvent::QueryRejected { .. } => "serve.query_rejected",
                ServeEvent::Draining { .. } => "serve.draining",
            },
            Event::Driver(e) => match e {
                DriverEvent::Leaped { .. } => "driver.leaped",
            },
        }
    }

    /// The top-level category (`"controller"`, `"esd"`, `"power"`,
    /// `"fault"`) — the metrics recorder counts events per category.
    #[must_use]
    pub fn category(&self) -> &'static str {
        match self {
            Event::Controller(_) => "controller",
            Event::Esd(_) => "esd",
            Event::Power(_) => "power",
            Event::Fault(_) => "fault",
            Event::Fleet(_) => "fleet",
            Event::Serve(_) => "serve",
            Event::Driver(_) => "driver",
        }
    }

    /// Appends the canonical one-line JSON encoding (no trailing
    /// newline). Field order is fixed, so the encoding is
    /// byte-deterministic for a given event.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        let kind = self.kind();
        let _ = write!(out, "{{\"type\":\"{kind}\"");
        match self {
            Event::Controller(e) => match e {
                ControllerEvent::SlotPlanned {
                    slot,
                    predicted_mismatch,
                    peak_size,
                    r_lambda,
                    discharge,
                    charge,
                } => {
                    let _ = write!(
                        out,
                        ",\"slot\":{slot},\"predicted_w\":{},\"peak\":\"{peak_size}\",\
                         \"r_lambda\":{r_lambda},\"discharge\":\"{discharge}\",\
                         \"charge\":\"{charge}\"",
                        predicted_mismatch.get()
                    );
                }
                ControllerEvent::Replanned { time, reason } => {
                    let _ = write!(out, ",\"t\":{},\"reason\":\"{reason}\"", time.get());
                }
                ControllerEvent::PatInserted { slot, r_lambda } => {
                    let _ = write!(out, ",\"slot\":{slot},\"r_lambda\":{r_lambda}");
                }
                ControllerEvent::PatUpdated { slot } => {
                    let _ = write!(out, ",\"slot\":{slot}");
                }
                ControllerEvent::ForecastDegraded { slot, degraded } => {
                    let _ = write!(out, ",\"slot\":{slot},\"degraded\":{degraded}");
                }
            },
            Event::Esd(e) => match e {
                EsdEvent::PoolState {
                    time,
                    pool,
                    soc,
                    voltage,
                    available,
                    throughput_ah,
                } => {
                    let _ = write!(
                        out,
                        ",\"t\":{},\"pool\":\"{}\",\"soc\":{},\"volts\":{voltage},\
                         \"available_wh\":{},\"throughput_ah\":{throughput_ah}",
                        time.get(),
                        pool.name(),
                        soc.get(),
                        available.as_watt_hours().get()
                    );
                }
                EsdEvent::MemberQuarantined { pool, member } => {
                    let _ = write!(out, ",\"pool\":\"{}\",\"member\":{member}", pool.name());
                }
                EsdEvent::MemberRestored { pool, member } => {
                    let _ = write!(out, ",\"pool\":\"{}\",\"member\":{member}", pool.name());
                }
                EsdEvent::Degraded {
                    pool,
                    capacity_fade,
                    resistance_growth,
                } => {
                    let _ = write!(
                        out,
                        ",\"pool\":\"{}\",\"capacity_fade\":{},\"resistance_growth\":{resistance_growth}",
                        pool.name(),
                        capacity_fade.get()
                    );
                }
            },
            Event::Power(e) => match e {
                PowerEvent::BudgetDerated { time, factor } => {
                    let _ = write!(out, ",\"t\":{},\"factor\":{}", time.get(), factor.get());
                }
                PowerEvent::SolarAvailability { time, online } => {
                    let _ = write!(out, ",\"t\":{},\"online\":{online}", time.get());
                }
                PowerEvent::Shed { time, servers } => {
                    let _ = write!(out, ",\"t\":{},\"servers\":{servers}", time.get());
                }
                PowerEvent::Restored { time } => {
                    let _ = write!(out, ",\"t\":{}", time.get());
                }
                PowerEvent::RelayAssignment {
                    slot,
                    sc_servers,
                    ba_servers,
                } => {
                    let _ = write!(
                        out,
                        ",\"slot\":{slot},\"sc_servers\":{sc_servers},\"ba_servers\":{ba_servers}"
                    );
                }
            },
            Event::Fault(e) => match e {
                FaultEvent::Injected { time, kind } | FaultEvent::Recovered { time, kind } => {
                    let _ = write!(out, ",\"t\":{},\"kind\":\"{kind}\"", time.get());
                }
            },
            Event::Fleet(e) => match e {
                FleetEvent::RetryScheduled {
                    scenario,
                    attempt,
                    backoff_ms,
                    reason,
                } => {
                    out.push_str(",\"scenario\":\"");
                    write_escaped(out, scenario);
                    let _ = write!(out, "\",\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}");
                    out.push_str(",\"reason\":\"");
                    write_escaped(out, reason);
                    out.push('"');
                }
                FleetEvent::ScenarioQuarantined {
                    scenario,
                    attempts,
                    reason,
                } => {
                    out.push_str(",\"scenario\":\"");
                    write_escaped(out, scenario);
                    let _ = write!(out, "\",\"attempts\":{attempts}");
                    out.push_str(",\"reason\":\"");
                    write_escaped(out, reason);
                    out.push('"');
                }
                FleetEvent::CacheDegraded { mode, reason } => {
                    let _ = write!(out, ",\"mode\":\"{mode}\"");
                    out.push_str(",\"reason\":\"");
                    write_escaped(out, reason);
                    out.push('"');
                }
                FleetEvent::RunResumed {
                    run_id,
                    completed,
                    remaining,
                } => {
                    out.push_str(",\"run_id\":\"");
                    write_escaped(out, run_id);
                    let _ = write!(
                        out,
                        "\",\"completed\":{completed},\"remaining\":{remaining}"
                    );
                }
            },
            Event::Serve(e) => match e {
                ServeEvent::QueryReceived { scenario } => {
                    out.push_str(",\"scenario\":\"");
                    write_escaped(out, scenario);
                    out.push('"');
                }
                ServeEvent::QueryServed { scenario, source } => {
                    out.push_str(",\"scenario\":\"");
                    write_escaped(out, scenario);
                    let _ = write!(out, "\",\"source\":\"{source}\"");
                }
                ServeEvent::QueryRejected { reason } => {
                    out.push_str(",\"reason\":\"");
                    write_escaped(out, reason);
                    out.push('"');
                }
                ServeEvent::Draining { in_flight } => {
                    let _ = write!(out, ",\"in_flight\":{in_flight}");
                }
            },
            Event::Driver(e) => match e {
                DriverEvent::Leaped { time, ticks } => {
                    let _ = write!(out, ",\"t\":{},\"ticks\":{ticks}", time.get());
                }
            },
        }
        out.push('}');
    }

    /// The canonical one-line JSON encoding as an owned string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out);
        out
    }
}

/// Appends `value` to `out` with JSON string escaping (`"` `\` and
/// control characters). The simulator events only carry values from a
/// fixed vocabulary, but [`FleetEvent`] fields embed arbitrary failure
/// messages and labels, which must not be able to break the line
/// format.
fn write_escaped(out: &mut String, value: &str) {
    use std::fmt::Write;
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Extracts the raw value of `key` from a single-line JSON object
/// produced by [`Event::write_json`] — enough of a parser for trace
/// post-processing (the `exp_trace` renderer, tests) without a JSON
/// dependency. String values are returned without their quotes.
///
/// This is *not* a general JSON parser: it relies on the canonical
/// encoding's guarantees (no nested objects, no escapes inside the
/// fixed key/value vocabulary).
#[must_use]
pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_field_ordered() {
        let e = Event::Controller(ControllerEvent::SlotPlanned {
            slot: 3,
            predicted_mismatch: Watts::new(160.5),
            peak_size: "large",
            r_lambda: 0.3,
            discharge: "split",
            charge: "sc-then-ba",
        });
        let expected = "{\"type\":\"controller.slot_planned\",\"slot\":3,\
                        \"predicted_w\":160.5,\"peak\":\"large\",\"r_lambda\":0.3,\
                        \"discharge\":\"split\",\"charge\":\"sc-then-ba\"}";
        assert_eq!(e.to_json(), expected);
        assert_eq!(e.to_json(), e.to_json());
    }

    #[test]
    fn kind_matches_category_prefix() {
        let events = [
            Event::Controller(ControllerEvent::PatUpdated { slot: 1 }),
            Event::Esd(EsdEvent::MemberQuarantined {
                pool: PoolId::Battery,
                member: 0,
            }),
            Event::Power(PowerEvent::Restored {
                time: Seconds::new(30.0),
            }),
            Event::Fault(FaultEvent::Injected {
                time: Seconds::new(60.0),
                kind: "blackout",
            }),
        ];
        for e in &events {
            assert!(e.kind().starts_with(e.category()), "{}", e.kind());
        }
    }

    #[test]
    fn json_field_extracts_numbers_strings_and_bools() {
        let e = Event::Esd(EsdEvent::PoolState {
            time: Seconds::new(600.0),
            pool: PoolId::SuperCap,
            soc: Ratio::new_clamped(0.75),
            voltage: 2.5,
            available: Joules::from_watt_hours(33.75),
            throughput_ah: 0.0,
        });
        let line = e.to_json();
        assert_eq!(json_field(&line, "type"), Some("esd.pool_state"));
        assert_eq!(json_field(&line, "pool"), Some("sc"));
        assert_eq!(json_field(&line, "soc"), Some("0.75"));
        assert_eq!(json_field(&line, "t"), Some("600"));
        assert_eq!(json_field(&line, "throughput_ah"), Some("0"));
        assert_eq!(json_field(&line, "missing"), None);

        let d = Event::Controller(ControllerEvent::ForecastDegraded {
            slot: 2,
            degraded: true,
        });
        assert_eq!(json_field(&d.to_json(), "degraded"), Some("true"));
    }

    #[test]
    fn pool_names_are_stable() {
        assert_eq!(PoolId::SuperCap.name(), "sc");
        assert_eq!(PoolId::Battery.name(), "ba");
    }

    #[test]
    fn driver_events_encode_deterministically() {
        let e = Event::Driver(DriverEvent::Leaped {
            time: Seconds::new(1200.0),
            ticks: 599,
        });
        assert_eq!(
            e.to_json(),
            "{\"type\":\"driver.leaped\",\"t\":1200,\"ticks\":599}"
        );
        assert_eq!(e.category(), "driver");
        assert!(e.kind().starts_with("driver."));
        assert_eq!(json_field(&e.to_json(), "ticks"), Some("599"));
    }

    #[test]
    fn fleet_events_encode_deterministically() {
        let e = Event::Fleet(FleetEvent::RetryScheduled {
            scenario: "00ab".to_string(),
            attempt: 2,
            backoff_ms: 40,
            reason: "injected worker panic".to_string(),
        });
        assert_eq!(
            e.to_json(),
            "{\"type\":\"fleet.retry_scheduled\",\"scenario\":\"00ab\",\
             \"attempt\":2,\"backoff_ms\":40,\"reason\":\"injected worker panic\"}"
        );
        assert_eq!(e.category(), "fleet");
        assert!(e.kind().starts_with("fleet."));

        let r = Event::Fleet(FleetEvent::RunResumed {
            run_id: "abcd1234".to_string(),
            completed: 7,
            remaining: 3,
        });
        assert_eq!(json_field(&r.to_json(), "run_id"), Some("abcd1234"));
        assert_eq!(json_field(&r.to_json(), "completed"), Some("7"));
    }

    #[test]
    fn serve_events_encode_deterministically_and_escape() {
        let served = Event::Serve(ServeEvent::QueryServed {
            scenario: "00ab".to_string(),
            source: "cache",
        });
        assert_eq!(
            served.to_json(),
            "{\"type\":\"serve.query_served\",\"scenario\":\"00ab\",\"source\":\"cache\"}"
        );
        assert_eq!(served.category(), "serve");
        assert!(served.kind().starts_with("serve."));

        let received = Event::Serve(ServeEvent::QueryReceived {
            scenario: "ff01".to_string(),
        });
        assert_eq!(json_field(&received.to_json(), "scenario"), Some("ff01"));

        let rejected = Event::Serve(ServeEvent::QueryRejected {
            reason: "bad \"json\"\nbody".to_string(),
        });
        let line = rejected.to_json();
        assert!(line.contains("\\\"json\\\"\\n"));
        assert_eq!(line.lines().count(), 1, "escaping must keep one line");

        let draining = Event::Serve(ServeEvent::Draining { in_flight: 3 });
        assert_eq!(json_field(&draining.to_json(), "in_flight"), Some("3"));
    }

    #[test]
    fn fleet_event_strings_are_escaped() {
        let e = Event::Fleet(FleetEvent::CacheDegraded {
            mode: "read-only",
            reason: "disk \"full\"\nand a tab\there".to_string(),
        });
        let line = e.to_json();
        assert_eq!(
            line,
            "{\"type\":\"fleet.cache_degraded\",\"mode\":\"read-only\",\
             \"reason\":\"disk \\\"full\\\"\\nand a tab\\there\"}"
        );
        assert_eq!(line.lines().count(), 1, "escaping must keep one line");

        let q = Event::Fleet(FleetEvent::ScenarioQuarantined {
            scenario: "ff".to_string(),
            attempts: 3,
            reason: "control char \u{1} and backslash \\".to_string(),
        });
        let line = q.to_json();
        assert!(line.contains("\\u0001"));
        assert!(line.contains("backslash \\\\"));
    }
}
