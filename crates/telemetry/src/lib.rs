//! Zero-cost observability for the HEB simulator.
//!
//! Three pieces:
//!
//! * **Events** ([`Event`] and friends) — typed descriptions of every
//!   observable state change: controller slot plans and PAT updates,
//!   per-pool ESD state, power-delivery transitions, fault edges.
//!   Each has a canonical, deterministic one-line JSON encoding.
//! * **Recorders** ([`Recorder`]) — pluggable sinks. The default
//!   [`NullRecorder`] reports `is_enabled() == false`, so call sites
//!   never construct events and the layer costs one cached bool per
//!   instrumented scope. [`RingRecorder`] keeps a bounded in-memory
//!   tail, [`JsonlRecorder`] streams to disk, [`MetricsRecorder`]
//!   counts per event type, and [`TeeRecorder`] fans out.
//! * **Metrics** ([`Metrics`]) — name-keyed counters, gauges, and
//!   histograms with a deterministic [`Snapshot`] export and
//!   [`ScopedTimer`] wall-clock phase timers.
//!
//! The overhead contract — instrumented code with a `NullRecorder`
//! stays within noise of uninstrumented code — is enforced by the
//! `--telemetry-guard` mode of the engine microbench (wired into
//! `scripts/verify.sh`), plus a deterministic test proving `record()`
//! is never reached when recording is disabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod recorder;

pub use event::{
    json_field, ControllerEvent, DriverEvent, EsdEvent, Event, FaultEvent, FleetEvent, PoolId,
    PowerEvent, ServeEvent,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, Metrics, ScopedTimer, Snapshot};
pub use recorder::{
    null_recorder, JsonlRecorder, MetricsRecorder, NullRecorder, Recorder, RecorderHandle,
    RingRecorder, TeeRecorder,
};
