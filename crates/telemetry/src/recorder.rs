//! The [`Recorder`] trait and its stock implementations.
//!
//! The contract that makes the layer zero-cost when disabled: hot
//! paths call [`Recorder::is_enabled`] *before* constructing an
//! [`Event`], so with the default [`NullRecorder`] no event is ever
//! built, no branch beyond one non-virtual bool load is taken (call
//! sites cache the flag), and no allocation happens.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::metrics::Metrics;

/// A sink for simulator events.
///
/// Implementations must be cheap to query via [`Recorder::is_enabled`]
/// and tolerant of concurrent [`Recorder::record`] calls (the fleet
/// engine runs scenarios on worker threads).
pub trait Recorder: fmt::Debug + Send + Sync {
    /// Whether events should be constructed at all. Call sites check
    /// this first and skip event construction when it returns `false`.
    fn is_enabled(&self) -> bool;

    /// Accepts one event. Must not panic on a poisoned downstream —
    /// observability failures never take the simulation down.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op for in-memory recorders).
    fn flush(&self) {}
}

/// Shared, clonable handle to a recorder.
pub type RecorderHandle = Arc<dyn Recorder>;

/// The shared default handle: a [`NullRecorder`].
#[must_use]
pub fn null_recorder() -> RecorderHandle {
    Arc::new(NullRecorder)
}

/// Discards everything; [`Recorder::is_enabled`] is `false`, so call
/// sites never even build the event. This is the default everywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Bounded in-memory recorder: keeps the most recent `capacity`
/// events. Good for tests and post-mortem inspection without
/// unbounded growth on long runs.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: Mutex<u64>,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: Mutex::new(0),
        }
    }

    /// The retention limit.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(events) => events.iter().cloned().collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.lock().map(|d| *d).unwrap_or(0)
    }

    /// Retained count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the retained events as JSONL, one event per line
    /// (trailing newline included when non-empty).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Ok(events) = self.events.lock() {
            for event in events.iter() {
                event.write_json(&mut out);
                out.push('\n');
            }
        }
        out
    }
}

impl Recorder for RingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        let Ok(mut events) = self.events.lock() else {
            return;
        };
        if events.len() == self.capacity {
            events.pop_front();
            if let Ok(mut dropped) = self.dropped.lock() {
                *dropped += 1;
            }
        }
        events.push_back(event.clone());
    }
}

/// Streams events as JSONL to any writer (typically a buffered file).
/// Output is flushed on [`Recorder::flush`] and on drop.
pub struct JsonlRecorder {
    writer: Mutex<Box<dyn Write + Send>>,
    written: Mutex<u64>,
}

impl fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("events_written", &self.events_written())
            .finish()
    }
}

impl JsonlRecorder {
    /// Wraps an arbitrary writer.
    #[must_use]
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            writer: Mutex::new(writer),
            written: Mutex::new(0),
        }
    }

    /// Creates (truncating) `path` and streams events into it through
    /// a buffer.
    ///
    /// # Errors
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Events successfully serialised so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.written.lock().map(|w| *w).unwrap_or(0)
    }
}

impl Recorder for JsonlRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(96);
        event.write_json(&mut line);
        line.push('\n');
        let Ok(mut writer) = self.writer.lock() else {
            return;
        };
        if writer.write_all(line.as_bytes()).is_ok() {
            if let Ok(mut written) = self.written.lock() {
                *written += 1;
            }
        }
    }

    fn flush(&self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Counts events per category/type into a [`Metrics`] registry
/// without retaining the events themselves.
#[derive(Debug)]
pub struct MetricsRecorder {
    metrics: Arc<Metrics>,
}

impl MetricsRecorder {
    /// Counts into `metrics` under `events.<category>` and
    /// `events.<type>` counters.
    #[must_use]
    pub fn new(metrics: Arc<Metrics>) -> Self {
        MetricsRecorder { metrics }
    }

    /// The backing registry.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }
}

impl Recorder for MetricsRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        self.metrics
            .counter(&format!("events.{}", event.category()))
            .add(1);
        self.metrics.counter(event.kind()).add(1);
    }
}

/// Fans events out to several recorders (e.g. JSONL to disk *and*
/// metrics counting). Enabled iff any branch is enabled.
#[derive(Debug)]
pub struct TeeRecorder {
    branches: Vec<RecorderHandle>,
}

impl TeeRecorder {
    /// Builds a tee over `branches`.
    #[must_use]
    pub fn new(branches: Vec<RecorderHandle>) -> Self {
        TeeRecorder { branches }
    }
}

impl Recorder for TeeRecorder {
    fn is_enabled(&self) -> bool {
        self.branches.iter().any(|b| b.is_enabled())
    }

    fn record(&self, event: &Event) {
        for branch in &self.branches {
            if branch.is_enabled() {
                branch.record(event);
            }
        }
    }

    fn flush(&self) {
        for branch in &self.branches {
            branch.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FaultEvent, PowerEvent};
    use heb_units::Seconds;

    fn fault(t: f64) -> Event {
        Event::Fault(FaultEvent::Injected {
            time: Seconds::new(t),
            kind: "blackout",
        })
    }

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.is_enabled());
        r.record(&fault(0.0));
        r.flush();
    }

    #[test]
    fn ring_recorder_keeps_most_recent_and_counts_drops() {
        let ring = RingRecorder::new(2);
        assert!(ring.is_empty());
        for t in 0..4 {
            ring.record(&fault(f64::from(t)));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        let events = ring.events();
        assert_eq!(events[0], fault(2.0));
        assert_eq!(events[1], fault(3.0));
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn jsonl_recorder_streams_lines() {
        let recorder = JsonlRecorder::new(Box::new(Vec::new()));
        recorder.record(&fault(0.0));
        recorder.record(&Event::Power(PowerEvent::Restored {
            time: Seconds::new(9.0),
        }));
        assert_eq!(recorder.events_written(), 2);
    }

    #[test]
    fn jsonl_recorder_writes_to_file() {
        let path = std::env::temp_dir().join("heb_telemetry_recorder_test.jsonl");
        {
            let recorder = JsonlRecorder::create(&path).expect("create");
            recorder.record(&fault(1.0));
            recorder.flush();
        }
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body, format!("{}\n", fault(1.0).to_json()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_recorder_counts_categories_and_kinds() {
        let metrics = Arc::new(Metrics::new());
        let recorder = MetricsRecorder::new(Arc::clone(&metrics));
        recorder.record(&fault(0.0));
        recorder.record(&fault(1.0));
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counter("events.fault"), Some(2));
        assert_eq!(snapshot.counter("fault.injected"), Some(2));
    }

    #[test]
    fn tee_fans_out_and_reports_enabled() {
        let ring_a = Arc::new(RingRecorder::new(8));
        let ring_b = Arc::new(RingRecorder::new(8));
        let tee = TeeRecorder::new(vec![
            Arc::clone(&ring_a) as RecorderHandle,
            Arc::clone(&ring_b) as RecorderHandle,
        ]);
        assert!(tee.is_enabled());
        tee.record(&fault(5.0));
        assert_eq!(ring_a.len(), 1);
        assert_eq!(ring_b.len(), 1);

        let all_null = TeeRecorder::new(vec![null_recorder(), null_recorder()]);
        assert!(!all_null.is_enabled());
    }
}
