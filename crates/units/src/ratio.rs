//! Dimensionless fractions: efficiencies, state-of-charge, `R_λ`.

/// A dimensionless fraction, conventionally in `[0, 1]`.
///
/// Used for round-trip efficiencies, state-of-charge (SoC),
/// depth-of-discharge (DoD), renewable-energy utilisation (REU), and the
/// HEB load-assignment ratio `R_λ` (the fraction of servers powered by
/// super-capacitors).
///
/// Construction via [`Ratio::new`] checks the unit interval; use
/// [`Ratio::new_unclamped`] for quantities that legitimately exceed 1
/// (e.g. improvement factors).
///
/// # Examples
///
/// ```
/// use heb_units::Ratio;
///
/// let r_lambda = Ratio::new(0.3).unwrap();
/// assert_eq!(r_lambda.complement().get(), 0.7);
/// assert_eq!(r_lambda.as_percent(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio(f64);

/// Error returned when a [`Ratio`] is constructed outside `[0, 1]` or from
/// a non-finite value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioOutOfRange;

impl core::fmt::Display for RatioOutOfRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ratio must be a finite value in [0, 1]")
    }
}

impl std::error::Error for RatioOutOfRange {}

impl Ratio {
    /// The zero fraction.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The unit fraction.
    pub const ONE: Ratio = Ratio(1.0);
    /// One half.
    pub const HALF: Ratio = Ratio(0.5);

    /// Creates a ratio, validating that it is finite and within `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioOutOfRange`] when `value` is NaN, infinite, or
    /// outside the unit interval.
    pub fn new(value: f64) -> Result<Self, RatioOutOfRange> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Self(value))
        } else {
            Err(RatioOutOfRange)
        }
    }

    /// Creates a ratio without range validation, for improvement factors
    /// and other fractions that may exceed 1.
    #[must_use]
    pub const fn new_unclamped(value: f64) -> Self {
        Self(value)
    }

    /// Creates a ratio by clamping `value` into `[0, 1]` (NaN becomes 0).
    #[must_use]
    pub fn new_clamped(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Creates a ratio from a percentage (e.g. `from_percent(30.0)` is 0.3).
    ///
    /// # Errors
    ///
    /// Returns [`RatioOutOfRange`] when the percentage is outside
    /// `[0, 100]` or non-finite.
    pub fn from_percent(percent: f64) -> Result<Self, RatioOutOfRange> {
        Self::new(percent / 100.0)
    }

    /// The raw fraction.
    #[inline]
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The fraction as a percentage.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// `1 − self`, clamped at zero — e.g. the battery share when `self`
    /// is the super-capacitor share `R_λ`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self((1.0 - self.0).max(0.0))
    }

    /// Whether the fraction lies within the closed unit interval.
    #[must_use]
    pub fn in_unit_interval(self) -> bool {
        self.0.is_finite() && (0.0..=1.0).contains(&self.0)
    }

    /// Clamps into `[0, 1]`.
    #[must_use]
    pub fn clamp_unit(self) -> Self {
        Self::new_clamped(self.0)
    }

    /// The smaller of two ratios.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// The larger of two ratios.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl core::ops::Mul for Ratio {
    type Output = Ratio;
    /// Composes two fractions (e.g. chained converter efficiencies).
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl core::ops::Mul<Ratio> for f64 {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Ratio) -> f64 {
        self * rhs.0
    }
}

impl core::ops::Add for Ratio {
    type Output = Ratio;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Ratio {
    type Output = Ratio;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}%", precision, self.as_percent())
        } else {
            write!(f, "{}%", self.as_percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Ratio::new(0.0).is_ok());
        assert!(Ratio::new(1.0).is_ok());
        assert!(Ratio::new(-0.01).is_err());
        assert!(Ratio::new(1.01).is_err());
        assert!(Ratio::new(f64::NAN).is_err());
        assert!(Ratio::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_constructor() {
        assert_eq!(Ratio::new_clamped(1.5).get(), 1.0);
        assert_eq!(Ratio::new_clamped(-1.5).get(), 0.0);
        assert_eq!(Ratio::new_clamped(f64::NAN).get(), 0.0);
    }

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(39.7).unwrap();
        assert!((r.as_percent() - 39.7).abs() < 1e-12);
    }

    #[test]
    fn complement_of_r_lambda() {
        let r = Ratio::new(0.3).unwrap();
        assert!((r.complement().get() - 0.7).abs() < 1e-12);
        assert_eq!(Ratio::ONE.complement(), Ratio::ZERO);
    }

    #[test]
    fn efficiency_composition() {
        let charge = Ratio::new(0.9).unwrap();
        let discharge = Ratio::new(0.9).unwrap();
        assert!(((charge * discharge).get() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn display_as_percent() {
        assert_eq!(format!("{:.1}", Ratio::new(0.25).unwrap()), "25.0%");
    }
}
