//! Simulated time.

/// Seconds per hour, used by the watt-hour/amp-hour conversions.
pub const SECONDS_PER_HOUR: f64 = 3600.0;

quantity!(
    /// A span of simulated time in seconds.
    ///
    /// The simulator advances in 1-second metering ticks (the IPDU in the
    /// prototype reports power once per second) grouped into 10-minute
    /// control slots.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Seconds, MINUTE};
    ///
    /// let slot = MINUTE * 10.0;
    /// assert_eq!(slot, Seconds::new(600.0));
    /// assert_eq!(slot.as_hours(), 1.0 / 6.0);
    /// ```
    Seconds,
    "s"
);

/// One minute.
pub const MINUTE: Seconds = Seconds::new(60.0);

/// One hour.
pub const HOUR: Seconds = Seconds::new(3600.0);

impl Seconds {
    /// Constructs from a value expressed in hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * SECONDS_PER_HOUR)
    }

    /// Constructs from a value expressed in minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// The value expressed in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.get() / SECONDS_PER_HOUR
    }

    /// The value expressed in minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.get() / 60.0
    }

    /// The number of whole 1-second ticks this span covers, saturating at
    /// zero for negative spans.
    #[must_use]
    pub fn whole_ticks(self) -> u64 {
        if self.get() <= 0.0 {
            0
        } else {
            self.get().floor() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_and_minute_constants() {
        assert_eq!(HOUR.get(), 3600.0);
        assert_eq!(MINUTE.get(), 60.0);
        assert_eq!(Seconds::from_hours(2.0), HOUR * 2.0);
        assert_eq!(Seconds::from_minutes(10.0).get(), 600.0);
    }

    #[test]
    fn unit_views() {
        assert_eq!(Seconds::new(5400.0).as_hours(), 1.5);
        assert_eq!(Seconds::new(90.0).as_minutes(), 1.5);
    }

    #[test]
    fn whole_ticks_saturates() {
        assert_eq!(Seconds::new(-3.0).whole_ticks(), 0);
        assert_eq!(Seconds::new(0.0).whole_ticks(), 0);
        assert_eq!(Seconds::new(2.9).whole_ticks(), 2);
    }
}
