//! Electrical energy.

use crate::{Seconds, Watts, SECONDS_PER_HOUR};

quantity!(
    /// Energy in joules (watt-seconds) — the simulator's base energy unit.
    ///
    /// The 1-second metering tick makes joules the natural bookkeeping
    /// unit; storage capacities quoted in the paper (kWh, Ah) convert via
    /// [`Joules::from_watt_hours`] and the electrical types.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Joules, Seconds};
    ///
    /// let stored = Joules::from_watt_hours(100.0);
    /// assert_eq!(stored.get(), 360_000.0);
    /// // Draining it over an hour is a 100 W discharge:
    /// assert_eq!((stored / Seconds::new(3600.0)).get(), 100.0);
    /// ```
    Joules,
    "J"
);

quantity!(
    /// Energy expressed in watt-hours; a convenience view over [`Joules`].
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Joules, WattHours};
    ///
    /// let wh = WattHours::new(20_000.0); // the paper's 20 kWh buffer
    /// assert_eq!(wh.as_kilowatt_hours(), 20.0);
    /// assert_eq!(Joules::from(wh).get(), 72_000_000.0);
    /// ```
    WattHours,
    "Wh"
);

impl Joules {
    /// Constructs from watt-hours.
    #[must_use]
    pub fn from_watt_hours(wh: f64) -> Self {
        Self::new(wh * SECONDS_PER_HOUR)
    }

    /// Constructs from kilowatt-hours.
    #[must_use]
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Self::from_watt_hours(kwh * 1e3)
    }

    /// The equivalent watt-hour quantity.
    #[must_use]
    pub fn as_watt_hours(self) -> WattHours {
        WattHours::new(self.get() / SECONDS_PER_HOUR)
    }

    /// The value expressed in kilowatt-hours.
    #[must_use]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.as_watt_hours().get() / 1e3
    }
}

impl WattHours {
    /// Constructs from kilowatt-hours.
    #[must_use]
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Self::new(kwh * 1e3)
    }

    /// The value expressed in kilowatt-hours.
    #[must_use]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.get() / 1e3
    }
}

impl From<WattHours> for Joules {
    fn from(wh: WattHours) -> Self {
        Joules::from_watt_hours(wh.get())
    }
}

impl From<Joules> for WattHours {
    fn from(j: Joules) -> Self {
        j.as_watt_hours()
    }
}

impl core::ops::Div<Seconds> for Joules {
    type Output = Watts;

    /// Average power when this energy is spread over `rhs`.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.get() / rhs.get())
    }
}

impl core::ops::Div<Watts> for Joules {
    type Output = Seconds;

    /// How long this energy lasts at a constant power draw of `rhs`.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.get() / rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_hour_conversions() {
        let j = Joules::from_watt_hours(1.0);
        assert_eq!(j.get(), 3600.0);
        assert_eq!(j.as_watt_hours(), WattHours::new(1.0));
        assert_eq!(Joules::from_kilowatt_hours(2.0).get(), 7_200_000.0);
        assert_eq!(Joules::from_kilowatt_hours(2.0).as_kilowatt_hours(), 2.0);
    }

    #[test]
    fn from_impls_round_trip() {
        let wh = WattHours::from_kilowatt_hours(20.0);
        let j: Joules = wh.into();
        let back: WattHours = j.into();
        assert_eq!(back, wh);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules::new(6000.0) / Seconds::new(60.0);
        assert_eq!(p, Watts::new(100.0));
    }

    #[test]
    fn energy_over_power_is_duration() {
        let t = Joules::new(6000.0) / Watts::new(100.0);
        assert_eq!(t, Seconds::new(60.0));
    }
}
