//! Voltage, current, resistance, capacitance, and charge.

use crate::{Joules, Seconds, Watts, SECONDS_PER_HOUR};

quantity!(
    /// Electrical potential in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Volts, Amps};
    ///
    /// // A 24 V lead-acid string sourcing 10 A delivers 240 W:
    /// assert_eq!((Volts::new(24.0) * Amps::new(10.0)).get(), 240.0);
    /// ```
    Volts,
    "V"
);

quantity!(
    /// Electrical current in amperes.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Amps, Seconds};
    ///
    /// // 10 A for an hour moves 10 Ah of charge:
    /// let q = Amps::new(10.0) * Seconds::new(3600.0);
    /// assert_eq!(q.as_amp_hours().get(), 10.0);
    /// ```
    Amps,
    "A"
);

quantity!(
    /// Electrical resistance in ohms, used for internal/equivalent series
    /// resistance of storage devices.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Ohms, Amps};
    ///
    /// let drop = Amps::new(20.0) * Ohms::new(0.05);
    /// assert_eq!(drop.get(), 1.0);
    /// ```
    Ohms,
    "Ω"
);

quantity!(
    /// Capacitance in farads (the Maxwell modules in the paper are 600 F).
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Farads, Volts};
    ///
    /// let q = Farads::new(600.0) * Volts::new(16.0);
    /// assert_eq!(q.get(), 9600.0);
    /// ```
    Farads,
    "F"
);

quantity!(
    /// Electrical charge in coulombs (amp-seconds).
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::Coulombs;
    ///
    /// assert_eq!(Coulombs::new(3600.0).as_amp_hours().get(), 1.0);
    /// ```
    Coulombs,
    "C"
);

quantity!(
    /// Charge capacity in amp-hours — the unit battery datasheets and the
    /// Ah-throughput lifetime model use.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{AmpHours, Volts};
    ///
    /// // A 24 V, 8 Ah string stores 192 Wh:
    /// let e = AmpHours::new(8.0).energy_at(Volts::new(24.0));
    /// assert_eq!(e.as_watt_hours().get(), 192.0);
    /// ```
    AmpHours,
    "Ah"
);

impl Coulombs {
    /// The equivalent amp-hour quantity.
    #[must_use]
    pub fn as_amp_hours(self) -> AmpHours {
        AmpHours::new(self.get() / SECONDS_PER_HOUR)
    }
}

impl AmpHours {
    /// The equivalent coulomb quantity.
    #[must_use]
    pub fn as_coulombs(self) -> Coulombs {
        Coulombs::new(self.get() * SECONDS_PER_HOUR)
    }

    /// Energy held by this charge at a (nominal) voltage.
    #[must_use]
    pub fn energy_at(self, voltage: Volts) -> Joules {
        Joules::from_watt_hours(self.get() * voltage.get())
    }
}

impl From<Coulombs> for AmpHours {
    fn from(q: Coulombs) -> Self {
        q.as_amp_hours()
    }
}

impl From<AmpHours> for Coulombs {
    fn from(q: AmpHours) -> Self {
        q.as_coulombs()
    }
}

impl core::ops::Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl core::ops::Div<Volts> for Watts {
    type Output = Amps;
    /// Current drawn when this power is sourced at `rhs`.
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl core::ops::Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Ohms> for Amps {
    type Output = Volts;
    /// Ohmic voltage drop.
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.get() * rhs.get())
    }
}

impl core::ops::Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Seconds> for Amps {
    type Output = Coulombs;
    /// Charge moved by this current over `rhs`.
    #[inline]
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs::new(self.get() * rhs.get())
    }
}

impl core::ops::Div<Seconds> for Coulombs {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Seconds) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Volts> for Farads {
    type Output = Coulombs;
    /// Charge on a capacitor at a given terminal voltage (`Q = C·V`).
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs::new(self.get() * rhs.get())
    }
}

impl core::ops::Div<Farads> for Coulombs {
    type Output = Volts;
    /// Capacitor voltage at a given stored charge (`V = Q/C`).
    #[inline]
    fn div(self, rhs: Farads) -> Volts {
        Volts::new(self.get() / rhs.get())
    }
}

/// Energy stored in an ideal capacitor at a given voltage (`½·C·V²`).
///
/// # Examples
///
/// ```
/// use heb_units::{capacitor_energy, Farads, Volts};
///
/// let e = capacitor_energy(Farads::new(600.0), Volts::new(16.0));
/// assert!((e.as_watt_hours().get() - 21.33).abs() < 0.01);
/// ```
#[must_use]
pub fn capacitor_energy(capacitance: Farads, voltage: Volts) -> Joules {
    Joules::new(0.5 * capacitance.get() * voltage.get() * voltage.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_chain() {
        let v = Amps::new(4.0) * Ohms::new(6.0);
        assert_eq!(v, Volts::new(24.0));
        assert_eq!(v / Ohms::new(6.0), Amps::new(4.0));
    }

    #[test]
    fn power_voltage_current_triangle() {
        let p = Volts::new(24.0) * Amps::new(5.0);
        assert_eq!(p, Watts::new(120.0));
        assert_eq!(p / Volts::new(24.0), Amps::new(5.0));
        assert_eq!(p / Amps::new(5.0), Volts::new(24.0));
    }

    #[test]
    fn charge_conversions() {
        let q = Amps::new(2.0) * Seconds::new(1800.0);
        assert_eq!(q, Coulombs::new(3600.0));
        assert_eq!(AmpHours::from(q), AmpHours::new(1.0));
        assert_eq!(Coulombs::from(AmpHours::new(1.0)), Coulombs::new(3600.0));
    }

    #[test]
    fn capacitor_relations() {
        let c = Farads::new(600.0);
        let q = c * Volts::new(16.0);
        assert_eq!(q / c, Volts::new(16.0));
        let e = capacitor_energy(c, Volts::new(16.0));
        assert_eq!(e.get(), 0.5 * 600.0 * 256.0);
    }

    #[test]
    fn amp_hour_energy() {
        let e = AmpHours::new(4.0).energy_at(Volts::new(12.0));
        assert_eq!(e.as_watt_hours().get(), 48.0);
    }
}
