//! Currency amounts for the TCO analysis.

quantity!(
    /// US dollars, used by the cost-breakdown, ROI, and peak-shaving
    /// revenue models of the paper's Section 7.6.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::Dollars;
    ///
    /// let battery = Dollars::new(300.0); // $/kWh lead-acid
    /// let sc = Dollars::new(10_000.0);   // $/kWh super-capacitor
    /// let blended = battery * 0.7 + sc * 0.3;
    /// assert_eq!(blended.get(), 3210.0);
    /// ```
    Dollars,
    "$"
);

impl Dollars {
    /// Constructs from a value expressed in thousands of dollars.
    #[must_use]
    pub fn from_thousands(k: f64) -> Self {
        Self::new(k * 1e3)
    }

    /// The value expressed in thousands of dollars.
    #[must_use]
    pub fn as_thousands(self) -> f64 {
        self.get() / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_round_trip() {
        let d = Dollars::from_thousands(4.85);
        assert_eq!(d.get(), 4850.0);
        assert_eq!(d.as_thousands(), 4.85);
    }

    #[test]
    fn blending_costs() {
        let blended = Dollars::new(300.0) * 0.7 + Dollars::new(10_000.0) * 0.3;
        assert_eq!(blended.get(), 3210.0);
    }
}
