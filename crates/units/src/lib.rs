//! Typed physical quantities for the HEB datacenter power-simulation stack.
//!
//! Every value flowing through the HEB simulator — power demands, stored
//! energy, battery currents, bus voltages, tariffs — is wrapped in a
//! dimension-specific newtype so that the compiler rejects unit confusion
//! (e.g. adding watts to watt-hours, or treating amp-hours as amps).
//!
//! The base representation is always `f64` in SI-flavoured units:
//!
//! * [`Watts`] for power,
//! * [`Joules`] for energy (with [`WattHours`] / kWh convenience views),
//! * [`Volts`], [`Amps`], [`Ohms`], [`Farads`], [`Coulombs`] and
//!   [`AmpHours`] for the electrical models,
//! * [`Seconds`] for simulated time,
//! * [`Dollars`] for the TCO analysis,
//! * [`Ratio`] for dimensionless fractions such as efficiencies, the HEB
//!   load-assignment ratio `R_λ`, state-of-charge, and depth-of-discharge.
//!
//! Cross-dimension arithmetic follows physics: `Watts * Seconds = Joules`,
//! `Volts * Amps = Watts`, `Amps * Ohms = Volts`, `Farads * Volts =
//! Coulombs`, and so on.
//!
//! # Examples
//!
//! ```
//! use heb_units::{Watts, Seconds, Volts, Amps};
//!
//! let demand = Watts::new(70.0) * 6.0;          // six servers at peak
//! let energy = demand * Seconds::new(600.0);    // one 10-minute slot
//! assert_eq!(energy.as_watt_hours().get(), 70.0);
//!
//! let current = Watts::new(240.0) / Volts::new(24.0);
//! assert_eq!(current, Amps::new(10.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod electrical;
mod energy;
mod money;
mod power;
mod ratio;
mod time;

pub use electrical::{capacitor_energy, AmpHours, Amps, Coulombs, Farads, Ohms, Volts};
pub use energy::{Joules, WattHours};
pub use money::Dollars;
pub use power::Watts;
pub use ratio::{Ratio, RatioOutOfRange};
pub use time::{Seconds, HOUR, MINUTE, SECONDS_PER_HOUR};
