//! Internal macro generating the shared surface of every quantity newtype.

/// Defines an `f64` newtype with the full arithmetic/ordering/formatting
/// surface shared by every physical quantity in this crate.
///
/// Generated for each type:
/// * `new`, `get`, `zero`, `is_zero`, `abs`, `min`, `max`,
///   `clamp`, `is_finite`, `is_sign_negative`
/// * `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign`
/// * `Mul<f64>`, `Div<f64>` (scaling) and `Div<Self> -> f64` (ratios)
/// * `Mul<T> for f64` (commutative scaling)
/// * `Sum`, `Default`, `PartialEq`, `PartialOrd`, `Copy`, `Clone`, `Debug`
/// * `Display` with the unit suffix
/// * `From<f64>` / `From<T> for f64`
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value expressed in the type's base unit.
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value in the type's base unit.
            #[inline]
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            #[inline]
            #[must_use]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns `true` when the value is exactly zero.
            #[inline]
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The smaller of `self` and `other` (NaN-propagating like
            /// `f64::min` is *not* used; ties resolve to `self`).
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if other.0 < self.0 { other } else { self }
            }

            /// The larger of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if other.0 > self.0 { other } else { self }
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp: lo > hi");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the underlying value is finite.
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` when the value is negative (sign bit set).
            #[inline]
            #[must_use]
            pub fn is_sign_negative(self) -> bool {
                self.0.is_sign_negative()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}
