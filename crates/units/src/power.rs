//! Electrical power.

use crate::{Joules, Seconds};

quantity!(
    /// Electrical power in watts.
    ///
    /// This is the unit the IPDU reports per server each second and the
    /// unit in which budgets, mismatches, and buffer throughput are
    /// expressed throughout the simulator.
    ///
    /// # Examples
    ///
    /// ```
    /// use heb_units::{Watts, Seconds};
    ///
    /// let peak = Watts::new(70.0);
    /// let idle = Watts::new(30.0);
    /// assert!(peak > idle);
    /// assert_eq!((peak - idle).get(), 40.0);
    /// // Power over time is energy:
    /// assert_eq!((peak * Seconds::new(3600.0)).as_watt_hours().get(), 70.0);
    /// ```
    Watts,
    "W"
);

impl Watts {
    /// Constructs from a value expressed in kilowatts.
    #[must_use]
    pub fn from_kilowatts(kw: f64) -> Self {
        Self::new(kw * 1e3)
    }

    /// The value expressed in kilowatts.
    #[must_use]
    pub fn as_kilowatts(self) -> f64 {
        self.get() / 1e3
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;

    /// Energy delivered at this power over `rhs`.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<Watts> for Seconds {
    type Output = Joules;

    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kilowatt_round_trip() {
        let p = Watts::from_kilowatts(1.5);
        assert_eq!(p.get(), 1500.0);
        assert_eq!(p.as_kilowatts(), 1.5);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(100.0) * Seconds::new(60.0);
        assert_eq!(e.get(), 6000.0);
        let e2 = Seconds::new(60.0) * Watts::new(100.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Watts::new(30.0);
        let b = Watts::new(70.0);
        assert!(a < b);
        assert_eq!((a + b).get(), 100.0);
        assert_eq!((b - a).get(), 40.0);
        assert_eq!((b * 2.0).get(), 140.0);
        assert_eq!((b / 2.0).get(), 35.0);
        assert_eq!(b / a, 70.0 / 30.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.1}", Watts::new(70.0)), "70.0 W");
    }

    #[test]
    fn sum_of_iterator() {
        let total: Watts = (0..6).map(|_| Watts::new(70.0)).sum();
        assert_eq!(total.get(), 420.0);
    }
}
