//! Property tests for the quantity algebra.

use heb_units::{
    capacitor_energy, AmpHours, Amps, Coulombs, Farads, Joules, Ohms, Ratio, Seconds, Volts,
    WattHours, Watts,
};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-3..1e6f64
}

proptest! {
    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        prop_assert_eq!(Watts::new(a) + Watts::new(b), Watts::new(b) + Watts::new(a));
    }

    #[test]
    fn subtraction_inverts_addition(a in finite(), b in finite()) {
        let diff = (Watts::new(a) + Watts::new(b) - Watts::new(b)).get() - a;
        prop_assert!(diff.abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0));
    }

    #[test]
    fn scaling_distributes(a in finite(), b in finite(), k in -1e3..1e3f64) {
        let lhs = (Joules::new(a) + Joules::new(b)) * k;
        let rhs = Joules::new(a) * k + Joules::new(b) * k;
        prop_assert!((lhs - rhs).get().abs() <= 1e-6 * (a.abs() + b.abs()).max(1.0) * k.abs().max(1.0));
    }

    #[test]
    fn power_time_energy_round_trip(p in positive(), t in positive()) {
        let e = Watts::new(p) * Seconds::new(t);
        let back = e / Seconds::new(t);
        prop_assert!((back.get() - p).abs() <= 1e-9 * p.max(1.0));
        let dur = e / Watts::new(p);
        prop_assert!((dur.get() - t).abs() <= 1e-9 * t.max(1.0));
    }

    #[test]
    fn watt_hours_round_trip(wh in positive()) {
        let j = Joules::from_watt_hours(wh);
        prop_assert!((j.as_watt_hours().get() - wh).abs() <= 1e-9 * wh);
        let via_type: Joules = WattHours::new(wh).into();
        prop_assert_eq!(via_type, j);
    }

    #[test]
    fn electrical_triangle(v in positive(), i in positive()) {
        let p = Volts::new(v) * Amps::new(i);
        prop_assert!(((p / Volts::new(v)).get() - i).abs() <= 1e-9 * i.max(1.0));
        prop_assert!(((p / Amps::new(i)).get() - v).abs() <= 1e-9 * v.max(1.0));
    }

    #[test]
    fn ohms_law_round_trip(i in positive(), r in positive()) {
        let v = Amps::new(i) * Ohms::new(r);
        prop_assert!(((v / Ohms::new(r)).get() - i).abs() <= 1e-9 * i.max(1.0));
    }

    #[test]
    fn charge_round_trips(ah in positive()) {
        let q: Coulombs = AmpHours::new(ah).as_coulombs();
        prop_assert!((q.as_amp_hours().get() - ah).abs() <= 1e-9 * ah);
    }

    #[test]
    fn capacitor_energy_is_quadratic(c in positive(), v in positive()) {
        let e1 = capacitor_energy(Farads::new(c), Volts::new(v));
        let e2 = capacitor_energy(Farads::new(c), Volts::new(2.0 * v));
        prop_assert!((e2.get() - 4.0 * e1.get()).abs() <= 1e-6 * e2.get().max(1.0));
    }

    #[test]
    fn ratio_clamped_always_unit(x in proptest::num::f64::ANY) {
        let r = Ratio::new_clamped(x);
        prop_assert!(r.in_unit_interval());
    }

    #[test]
    fn ratio_complement_involutes(x in 0.0..=1.0f64) {
        let r = Ratio::new(x).unwrap();
        let back = r.complement().complement();
        prop_assert!((back.get() - x).abs() <= 1e-12);
    }

    #[test]
    fn ratio_product_never_grows(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let r = Ratio::new(a).unwrap() * Ratio::new(b).unwrap();
        prop_assert!(r.get() <= a.min(b) + 1e-12);
    }

    #[test]
    fn min_max_clamp_consistency(x in finite(), lo in finite(), hi in finite()) {
        prop_assume!(lo <= hi);
        let c = Seconds::new(x).clamp(Seconds::new(lo), Seconds::new(hi));
        prop_assert!(c.get() >= lo && c.get() <= hi);
        prop_assert_eq!(
            Seconds::new(x).max(Seconds::new(lo)).get(),
            x.max(lo)
        );
    }

    #[test]
    fn sum_matches_fold(values in proptest::collection::vec(finite(), 0..20)) {
        let total: Watts = values.iter().map(|&v| Watts::new(v)).sum();
        let folded = values.iter().fold(0.0, |acc, v| acc + v);
        prop_assert!((total.get() - folded).abs() <= 1e-6 * folded.abs().max(1.0));
    }
}
