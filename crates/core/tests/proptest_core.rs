//! Property tests for the controller, PAT, and simulation engine.

use heb_core::{HebController, PolicyKind, PowerAllocationTable, SimConfig, Simulation};
use heb_units::{Joules, Ratio, Watts};
use heb_workload::Archetype;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    proptest::sample::select(PolicyKind::ALL.to_vec())
}

fn archetype_strategy() -> impl Strategy<Value = Archetype> {
    proptest::sample::select(Archetype::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pat_updates_keep_r_lambda_in_unit_interval(
        r0 in 0.0..=1.0f64,
        updates in proptest::collection::vec(
            (0.0..200.0f64, 0.0..200.0f64, 0.0..200.0f64, 0.0..200.0f64),
            0..100,
        ),
    ) {
        let mut pat = PowerAllocationTable::new(
            Joules::from_watt_hours(10.0),
            Watts::new(20.0),
            Ratio::new_clamped(0.01),
        );
        let key = pat.key(
            Joules::from_watt_hours(40.0),
            Joules::from_watt_hours(100.0),
            Watts::new(120.0),
        );
        pat.insert(key, Ratio::new_clamped(r0));
        for (sc0, ba0, sc1, ba1) in updates {
            pat.update(
                key,
                Joules::from_watt_hours(sc0),
                Joules::from_watt_hours(ba0),
                Joules::from_watt_hours(sc1),
                Joules::from_watt_hours(ba1),
            );
            let r = pat.lookup(key).unwrap();
            prop_assert!(r.in_unit_interval(), "R_lambda {r:?} escaped [0,1]");
        }
    }

    #[test]
    fn pat_similar_search_total_on_nonempty_tables(
        entries in proptest::collection::vec(
            (0.0..300.0f64, 0.0..300.0f64, 0.0..400.0f64, 0.0..=1.0f64),
            1..40,
        ),
        probe in (0.0..300.0f64, 0.0..300.0f64, 0.0..400.0f64),
    ) {
        let mut pat = PowerAllocationTable::new(
            Joules::from_watt_hours(10.0),
            Watts::new(20.0),
            Ratio::new_clamped(0.01),
        );
        for (sc, ba, pm, r) in entries {
            let key = pat.key(
                Joules::from_watt_hours(sc),
                Joules::from_watt_hours(ba),
                Watts::new(pm),
            );
            pat.insert(key, Ratio::new_clamped(r));
        }
        let key = pat.key(
            Joules::from_watt_hours(probe.0),
            Joules::from_watt_hours(probe.1),
            Watts::new(probe.2),
        );
        // A non-empty table must always answer.
        prop_assert!(pat.lookup_similar(key).is_some());
    }

    #[test]
    fn controller_plans_are_always_well_formed(
        policy in policy_strategy(),
        slots in proptest::collection::vec(
            (0.0..500.0f64, 0.0..300.0f64, 0.0..60.0f64, 0.0..120.0f64),
            1..50,
        ),
    ) {
        let config = SimConfig::prototype().with_policy(policy);
        let mut ctl = HebController::new(&config);
        for (peak, valley, sc_wh, ba_wh) in slots {
            let plan = ctl.begin_slot(
                Joules::from_watt_hours(sc_wh),
                Joules::from_watt_hours(ba_wh),
            );
            prop_assert!(plan.r_lambda.in_unit_interval());
            prop_assert!(plan.predicted_mismatch.get() >= 0.0);
            prop_assert!(plan.predicted_mismatch.is_finite());
            let (p, v) = if peak >= valley { (peak, valley) } else { (valley, peak) };
            ctl.end_slot(
                Watts::new(p),
                Watts::new(v),
                Joules::from_watt_hours(sc_wh),
                Joules::from_watt_hours(ba_wh),
            );
        }
    }

    #[test]
    fn short_simulations_never_panic_and_balance_books(
        policy in policy_strategy(),
        archetype in archetype_strategy(),
        seed in proptest::num::u64::ANY,
        budget in 150.0..400.0f64,
        capacity_wh in 20.0..200.0f64,
    ) {
        let config = SimConfig::prototype()
            .with_policy(policy)
            .with_budget(Watts::new(budget))
            .with_total_capacity(Joules::from_watt_hours(capacity_wh));
        let mut sim = Simulation::new(config, &[archetype], seed);
        let report = sim.run_ticks(900);
        prop_assert!(report.energy_efficiency().in_unit_interval());
        prop_assert!(report.buffer_delivered.get() >= 0.0);
        prop_assert!(report.server_downtime.get() >= 0.0);
        prop_assert!(
            ((report.buffer_delivered + report.discharge_loss) - report.buffer_drained)
                .get().abs() < 1.0
        );
        prop_assert!(
            ((report.charge_stored + report.charge_loss) - report.charge_drawn)
                .get().abs() < 1.0
        );
        // Downtime cannot exceed fleet-seconds.
        prop_assert!(report.server_downtime.get() <= 900.0 * 6.0 + 1e-6);
    }

    #[test]
    fn r_lambda_is_one_for_small_predicted_peaks(
        sc_wh in 1.0..60.0f64,
        ba_wh in 1.0..120.0f64,
        peak_over_valley in 0.0..79.0f64,
    ) {
        // Any HEB policy must route small peaks entirely to the SC pool.
        let config = SimConfig::prototype().with_policy(PolicyKind::HebD);
        let mut ctl = HebController::new(&config);
        // Warm predictors with the target mismatch.
        for _ in 0..3 {
            ctl.begin_slot(Joules::from_watt_hours(sc_wh), Joules::from_watt_hours(ba_wh));
            ctl.end_slot(
                Watts::new(260.0 + peak_over_valley),
                Watts::new(260.0),
                Joules::from_watt_hours(sc_wh),
                Joules::from_watt_hours(ba_wh),
            );
        }
        let plan = ctl.begin_slot(
            Joules::from_watt_hours(sc_wh),
            Joules::from_watt_hours(ba_wh),
        );
        if plan.predicted_mismatch <= config.small_peak_threshold {
            prop_assert_eq!(plan.r_lambda, Ratio::ONE);
        }
    }
}

/// Event-queue ordering determinism: drain order is a pure function of
/// the (time, insertion) schedule, never of heap internals or the
/// order unrelated times happen to be inserted in.
mod event_queue_ordering {
    use heb_core::{EventQueue, SimEvent};
    use heb_units::Seconds;
    use proptest::prelude::*;

    /// A distinguishable payload per insertion index, so tie-order
    /// violations are visible in the drained sequence.
    fn payload(index: usize) -> SimEvent {
        match index % 5 {
            0 => SimEvent::Tick,
            1 => SimEvent::SlotBoundary,
            2 => SimEvent::FaultTrigger,
            3 => SimEvent::EsdThreshold,
            _ => SimEvent::RestoreDeadline,
        }
    }

    fn drain(queue: &mut EventQueue) -> Vec<(u64, SimEvent)> {
        let mut out = Vec::new();
        while let Some(due) = queue.pop() {
            out.push((due.time.get().to_bits(), due.event));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn shuffled_insertion_drains_in_the_same_time_order(
            times in proptest::collection::vec(0.0..10_000.0f64, 1..120),
            rotation in 0usize..120,
        ) {
            let mut shuffled: Vec<(usize, f64)> =
                times.iter().copied().enumerate().collect();
            shuffled.rotate_left(rotation % times.len());

            let mut ordered = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                ordered.schedule(Seconds::new(*t), payload(i));
            }
            let mut rotated = EventQueue::new();
            for (i, t) in &shuffled {
                rotated.schedule(Seconds::new(*t), payload(*i));
            }

            let drained = drain(&mut ordered);
            // Times pop in non-decreasing order...
            let popped: Vec<u64> = drained.iter().map(|(t, _)| *t).collect();
            let mut sorted: Vec<f64> = times.clone();
            sorted.sort_by(f64::total_cmp);
            prop_assert_eq!(
                popped,
                sorted.iter().map(|t| t.to_bits()).collect::<Vec<u64>>(),
                "drain order must be the time-sorted schedule"
            );
            // ...and rotating the insertion order permutes only the
            // payloads of *equal* times (ties follow insertion order),
            // never the time sequence itself.
            let rotated_times: Vec<u64> =
                drain(&mut rotated).iter().map(|(t, _)| *t).collect();
            prop_assert_eq!(drained.iter().map(|(t, _)| *t).collect::<Vec<u64>>(), rotated_times);
        }

        #[test]
        fn identical_schedules_drain_identically(
            times in proptest::collection::vec(0.0..100.0f64, 1..120),
        ) {
            // Coarse quantisation manufactures plenty of exact ties.
            let quantised: Vec<f64> = times.iter().map(|t| t.round()).collect();
            let mut a = EventQueue::new();
            let mut b = EventQueue::new();
            for (i, t) in quantised.iter().enumerate() {
                a.schedule(Seconds::new(*t), payload(i));
                b.schedule(Seconds::new(*t), payload(i));
            }
            prop_assert_eq!(
                drain(&mut a),
                drain(&mut b),
                "same schedule must drain identically, payloads included"
            );
        }
    }
}
