//! Chaos property tests: arbitrary fault schedules must never break
//! the simulation's invariants.
//!
//! Whatever storm the injector throws at the stack — stochastic renewal
//! processes, dense scripted event soups, solar-mode grid loss — the
//! books must still balance, downtime must stay within fleet-seconds,
//! every headline metric must stay finite, and the fault ledger must
//! account events consistently.

use heb_core::{
    FaultEvent, FaultKind, FaultProfile, FaultSchedule, PolicyKind, PowerMode, SimConfig,
    SimReport, Simulation,
};
use heb_units::{Ratio, Seconds, Watts};
use heb_workload::{Archetype, SolarTraceBuilder};
use proptest::prelude::*;

const TICKS: u64 = 1800;
const SERVERS: f64 = 6.0;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    proptest::sample::select(PolicyKind::ALL.to_vec())
}

/// Raw material for one scripted fault: (kind selector, start, duration,
/// permanent flag, scalar parameter). Decoded by [`decode_event`].
type RawEvent = (usize, f64, f64, usize, f64);

fn raw_event_strategy() -> impl Strategy<Value = RawEvent> {
    (
        0..10usize,
        0.0..1500.0f64,
        1.0..600.0f64,
        0..4usize,
        0.0..1.0f64,
    )
}

fn decode_event(raw: RawEvent) -> FaultEvent {
    let (selector, start, duration, permanent, param) = raw;
    let kind = match selector {
        0 => FaultKind::UtilityBrownout {
            derate: Ratio::new_clamped(param),
        },
        1 => FaultKind::UtilityBlackout,
        2 => FaultKind::SolarDropout,
        3 => FaultKind::BatteryStringFailure {
            index: (param * 8.0) as usize,
        },
        4 => FaultKind::BatteryDegradation {
            capacity_fade: Ratio::new_clamped(param * 0.3),
            resistance_growth: param,
        },
        5 => FaultKind::ScModuleFailure {
            index: (param * 4.0) as usize,
        },
        6 => FaultKind::RelayStuckOpen {
            server: (param * 8.0) as usize,
        },
        7 => FaultKind::MeterDropout,
        8 => FaultKind::MeterFreeze,
        _ => FaultKind::MeterSpike {
            factor: 0.5 + param * 3.5,
        },
    };
    // One in four scripted faults never recovers.
    if permanent == 0 {
        FaultEvent::permanent(Seconds::new(start), kind)
    } else {
        FaultEvent::lasting(Seconds::new(start), Seconds::new(duration), kind)
    }
}

/// The invariants every chaos run must uphold, regardless of schedule.
fn assert_chaos_invariants(report: &SimReport, schedule_len: usize) {
    prop_assert!(report.energy_efficiency().in_unit_interval());
    prop_assert!(report.buffer_delivered.get() >= 0.0);
    prop_assert!(report.unserved_energy.get() >= 0.0);
    prop_assert!(report.server_downtime.get() >= 0.0);
    prop_assert!(report.server_downtime.get() <= report.sim_time.get() * SERVERS + 1e-6);
    for (name, value) in [
        ("delivered", report.buffer_delivered.get()),
        ("drained", report.buffer_drained.get()),
        ("stored", report.charge_stored.get()),
        ("drawn", report.charge_drawn.get()),
        ("unserved", report.unserved_energy.get()),
        ("fault_unserved", report.faults.fault_unserved.get()),
        ("ride_through", report.faults.ride_through.get()),
        ("recovery", report.faults.recovery_latency.get()),
    ] {
        prop_assert!(value.is_finite(), "{name} must stay finite, got {value}");
    }
    // Energy conservation on both the discharge and the charge path.
    prop_assert!(
        ((report.buffer_delivered + report.discharge_loss) - report.buffer_drained)
            .get()
            .abs()
            < 1.0
    );
    prop_assert!(
        ((report.charge_stored + report.charge_loss) - report.charge_drawn)
            .get()
            .abs()
            < 1.0
    );
    // Ledger consistency: nothing recovers that never struck, and
    // nothing strikes that was never scheduled.
    prop_assert!(report.faults.events_recovered <= report.faults.events_applied);
    prop_assert!(report.faults.events_applied <= schedule_len as u64);
    prop_assert!(report.faults.strings_restored <= report.faults.strings_quarantined);
    // Under strict-invariants, rerun the full conservation audit on the
    // final report (the per-tick/per-slot hooks already ran inside the
    // simulation itself).
    #[cfg(feature = "strict-invariants")]
    heb_core::invariants::check_report(report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stochastic_storms_preserve_invariants(
        policy in policy_strategy(),
        seed in proptest::num::u64::ANY,
        intensity in 0.0..6.0f64,
        strings in 1..4usize,
    ) {
        let config = SimConfig::prototype()
            .with_policy(policy)
            .with_battery_strings(strings);
        let horizon = Seconds::new(TICKS as f64);
        let profile = FaultProfile::nominal()
            .scaled(intensity)
            .sized(config.servers, strings, 1);
        let schedule = FaultSchedule::stochastic(seed, horizon, &profile);
        let mut sim = Simulation::new(config, &[Archetype::WebSearch], seed)
            .with_faults(schedule.clone());
        let report = sim.run_ticks(TICKS);
        assert_chaos_invariants(&report, schedule.len());
    }

    #[test]
    fn scripted_event_soups_preserve_invariants(
        policy in policy_strategy(),
        seed in proptest::num::u64::ANY,
        raw_events in proptest::collection::vec(raw_event_strategy(), 0..20),
    ) {
        let schedule =
            FaultSchedule::scripted(raw_events.into_iter().map(decode_event).collect());
        let config = SimConfig::prototype()
            .with_policy(policy)
            .with_battery_strings(2);
        let mut sim = Simulation::new(config, &[Archetype::Terasort], seed)
            .with_faults(schedule.clone());
        let report = sim.run_ticks(TICKS);
        assert_chaos_invariants(&report, schedule.len());
    }

    #[test]
    fn solar_mode_chaos_preserves_invariants(
        policy in policy_strategy(),
        seed in proptest::num::u64::ANY,
        intensity in 0.0..4.0f64,
    ) {
        let config = SimConfig::prototype().with_policy(policy);
        let horizon = Seconds::new(TICKS as f64);
        let profile = FaultProfile::nominal()
            .scaled(intensity)
            .sized(config.servers, config.battery_strings, 1);
        let schedule = FaultSchedule::stochastic(seed, horizon, &profile);
        let trace = SolarTraceBuilder::new(Watts::new(400.0)).seed(seed).build();
        let mut sim = Simulation::new(config, &[Archetype::WebSearch], seed)
            .with_mode(PowerMode::Solar(trace))
            .with_faults(schedule.clone());
        let report = sim.run_ticks(TICKS);
        assert_chaos_invariants(&report, schedule.len());
    }
}
