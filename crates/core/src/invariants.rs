//! Runtime invariant checks, compiled only under the
//! `strict-invariants` feature.
//!
//! These are the physical-conservation properties every HEB figure
//! rests on, asserted *while the simulation runs* instead of only
//! post-hoc in tests:
//!
//! * **SoC bounds** — every pool and every member device stays inside
//!   its usable window, `soc ∈ [0, 1]` (to float tolerance).
//! * **Energy conservation** — cumulatively, discharge accounting
//!   satisfies `delivered + discharge_loss = drained`, and charge
//!   accounting satisfies `stored + charge_loss = drawn`.
//! * **Feed power-balance** — no tick draws more energy through the
//!   feed than the supply limit in force that tick allows.
//!
//! The hooks in [`crate::Simulation::step`] and the slot-boundary path
//! are themselves `#[cfg(feature = "strict-invariants")]`, so a release
//! build without the feature carries zero overhead — not even a branch.
//! The chaos suites (`crates/core/tests/proptest_faults.rs`) run under
//! the feature in CI, so every randomized fault storm doubles as a
//! conservation audit.
//!
//! All checks use `assert!`, which is permitted in simulation library
//! code (heb-analyze HEB003 bans `unwrap`/`expect`/`panic!`, not
//! assertions): a violated invariant is a simulator bug, and aborting
//! the run beats silently producing a figure from unphysical state.

use crate::buffers::HybridBuffers;
use crate::metrics::SimReport;
use heb_esd::StorageDevice;
use heb_units::{Joules, Ratio, Seconds, Watts};

/// Absolute slack added to every tolerance, in the checked unit.
const ABS_TOL: f64 = 1e-6;

/// Relative slack: generous against ~1e-11 accumulated rounding over a
/// day of one-second ticks, tight against real accounting bugs.
const REL_TOL: f64 = 1e-6;

/// SoC slack: devices clamp to the usable window, so anything beyond a
/// hair outside `[0, 1]` is a model bug, not rounding.
const SOC_TOL: f64 = 1e-9;

fn close(actual: f64, expected: f64, scale: f64) -> bool {
    (actual - expected).abs() <= ABS_TOL + REL_TOL * scale.abs().max(1.0)
}

fn soc_in_unit_interval(soc: Ratio) -> bool {
    let s = soc.get();
    s.is_finite() && (-SOC_TOL..=1.0 + SOC_TOL).contains(&s)
}

/// Asserts both pools and every member device sit inside the usable
/// SoC window.
///
/// # Panics
///
/// Panics naming the offending pool or device when any state of charge
/// leaves `[0, 1]` (beyond float tolerance) or goes non-finite.
pub fn check_soc_bounds(buffers: &HybridBuffers) {
    if !buffers.sc_pool().is_empty() {
        let soc = StorageDevice::soc(buffers.sc_pool());
        assert!(
            soc_in_unit_interval(soc),
            "invariant violated: sc pool SoC {} outside [0, 1]",
            soc.get()
        );
        for (i, d) in buffers.sc_pool().devices().iter().enumerate() {
            let soc = d.soc();
            assert!(
                soc_in_unit_interval(soc),
                "invariant violated: sc device {i} SoC {} outside [0, 1]",
                soc.get()
            );
        }
    }
    if !buffers.ba_pool().is_empty() {
        let soc = StorageDevice::soc(buffers.ba_pool());
        assert!(
            soc_in_unit_interval(soc),
            "invariant violated: battery pool SoC {} outside [0, 1]",
            soc.get()
        );
        for (i, d) in buffers.ba_pool().devices().iter().enumerate() {
            let soc = d.soc();
            assert!(
                soc_in_unit_interval(soc),
                "invariant violated: battery device {i} SoC {} outside [0, 1]",
                soc.get()
            );
        }
    }
}

/// Asserts the cumulative charge/discharge ledgers conserve energy:
/// `delivered + discharge_loss = drained` and
/// `stored + charge_loss = drawn`, each within scaled tolerance.
///
/// # Panics
///
/// Panics with both sides of the violated balance.
pub fn check_energy_conservation(report: &SimReport) {
    let out = report.buffer_delivered.get() + report.discharge_loss.get();
    let drained = report.buffer_drained.get();
    assert!(
        close(out, drained, drained),
        "invariant violated: discharge ledger leaks energy \
         (delivered {} + loss {} != drained {drained})",
        report.buffer_delivered.get(),
        report.discharge_loss.get(),
    );
    let kept = report.charge_stored.get() + report.charge_loss.get();
    let drawn = report.charge_drawn.get();
    assert!(
        close(kept, drawn, drawn),
        "invariant violated: charge ledger leaks energy \
         (stored {} + loss {} != drawn {drawn})",
        report.charge_stored.get(),
        report.charge_loss.get(),
    );
}

/// Asserts one tick's feed draw respects the supply limit in force:
/// `supplied_delta <= raw_limit · dt` within tolerance.
///
/// `supplied_delta` is the growth of
/// `utility.energy_supplied() + renewable.energy_used()` across the
/// tick; `raw_limit` is the effective budget (utility) or available
/// generation (solar) the tick was planned against.
///
/// # Panics
///
/// Panics with the drawn energy and the limit when the feed
/// over-draws.
pub fn check_feed_balance(supplied_delta: Joules, raw_limit: Watts, dt: Seconds) {
    let cap = raw_limit.get() * dt.get();
    assert!(
        supplied_delta.get() <= cap + ABS_TOL + REL_TOL * cap.abs().max(1.0),
        "invariant violated: feed drew {} J in one tick against a {cap} J limit",
        supplied_delta.get(),
    );
}

/// Full-report audit: energy conservation plus finiteness and
/// non-negativity of every energy ledger — the entry point the chaos
/// suites call on each completed run.
///
/// # Panics
///
/// Panics on the first violated property.
pub fn check_report(report: &SimReport) {
    check_energy_conservation(report);
    for (value, name) in [
        (report.buffer_delivered, "buffer_delivered"),
        (report.buffer_drained, "buffer_drained"),
        (report.discharge_loss, "discharge_loss"),
        (report.charge_drawn, "charge_drawn"),
        (report.charge_stored, "charge_stored"),
        (report.charge_loss, "charge_loss"),
        (report.unserved_energy, "unserved_energy"),
        (report.restart_waste, "restart_waste"),
    ] {
        assert!(
            value.get().is_finite() && value.get() >= -ABS_TOL,
            "invariant violated: {name} = {} (must be finite and non-negative)",
            value.get()
        );
    }
    assert!(
        report.conversion_loss.get().is_finite(),
        "invariant violated: conversion_loss = {} (must be finite)",
        report.conversion_loss.get()
    );
    assert!(
        report.sim_time.get().is_finite() && report.sim_time.get() >= 0.0,
        "invariant violated: sim_time = {}",
        report.sim_time.get()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_passes() {
        let r = SimReport {
            buffer_delivered: Joules::new(90.0),
            discharge_loss: Joules::new(10.0),
            buffer_drained: Joules::new(100.0),
            charge_drawn: Joules::new(50.0),
            charge_stored: Joules::new(45.0),
            charge_loss: Joules::new(5.0),
            ..SimReport::default()
        };
        check_report(&r);
    }

    #[test]
    #[should_panic(expected = "discharge ledger leaks energy")]
    fn leaking_discharge_ledger_panics() {
        let r = SimReport {
            buffer_delivered: Joules::new(90.0),
            discharge_loss: Joules::new(10.0),
            buffer_drained: Joules::new(150.0),
            ..SimReport::default()
        };
        check_energy_conservation(&r);
    }

    #[test]
    #[should_panic(expected = "charge ledger leaks energy")]
    fn leaking_charge_ledger_panics() {
        let r = SimReport {
            charge_drawn: Joules::new(50.0),
            charge_stored: Joules::new(10.0),
            charge_loss: Joules::new(5.0),
            ..SimReport::default()
        };
        check_energy_conservation(&r);
    }

    #[test]
    #[should_panic(expected = "feed drew")]
    fn overdrawn_feed_panics() {
        check_feed_balance(Joules::new(301.0), Watts::new(300.0), Seconds::new(1.0));
    }

    #[test]
    fn feed_at_limit_passes() {
        check_feed_balance(Joules::new(300.0), Watts::new(300.0), Seconds::new(1.0));
    }

    #[test]
    fn pool_soc_bounds_hold_on_fresh_buffers() {
        let buffers = HybridBuffers::build(
            Joules::from_watt_hours(150.0),
            Ratio::new_clamped(0.3),
            Ratio::new_clamped(0.8),
        );
        check_soc_bounds(&buffers);
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn nan_energy_panics() {
        let r = SimReport {
            unserved_energy: Joules::new(f64::NAN),
            ..SimReport::default()
        };
        check_report(&r);
    }
}
