//! Scenarios: self-contained, content-addressed simulation runs.
//!
//! A [`Scenario`] captures *everything* a [`Simulation`] run depends on
//! — the [`SimConfig`], the workload mix, the power mode (utility
//! budget or a solar trace), the fault schedule, the initial buffer
//! state of charge, the horizon in ticks, and the RNG seed — so that
//! the run is a pure function of the scenario. That purity is what the
//! fleet engine (`heb-fleet`) builds on:
//!
//! * **determinism** — the same scenario yields a bit-identical
//!   [`SimReport`] no matter which worker thread executes it or in
//!   which order the batch is scheduled;
//! * **content addressing** — [`Scenario::content_hash`] folds every
//!   semantic field (but *not* the cosmetic label) into a stable
//!   128-bit FNV-1a digest, giving an on-disk cache key that changes
//!   exactly when the result could;
//! * **batching** — experiment drivers build `Vec<Scenario>` and hand
//!   them to any [`ScenarioRunner`]; the bundled [`SerialRunner`] runs
//!   them inline, while `heb_fleet::FleetEngine` runs them on a worker
//!   pool with a result cache.

use crate::config::SimConfig;
use crate::errors::SimError;
use crate::event::{DriverMode, SimDriver};
use crate::faults::{FaultKind, FaultSchedule};
use crate::metrics::SimReport;
use crate::sim::{PowerMode, Simulation};
use heb_powersys::DeliveryPath;
use heb_units::Ratio;
use heb_workload::Archetype;

/// Streaming FNV-1a hasher over 128 bits — stable across runs,
/// platforms, and Rust versions (unlike `std::hash`, which is seeded
/// per process). Used to derive scenario cache keys.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl ContentHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Folds one byte into the digest.
    pub fn write_byte(&mut self, byte: u8) {
        self.state ^= u128::from(byte);
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Folds a byte slice into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Folds a `usize` into the digest (widened to `u64` so 32- and
    /// 64-bit builds agree).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Folds an `f64` into the digest *by bit pattern*, so that any
    /// representable change — however small — changes the hash.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Folds a boolean into the digest.
    pub fn write_bool(&mut self, value: bool) {
        self.write_byte(u8::from(value));
    }

    /// Folds a length-prefixed string into the digest (the prefix keeps
    /// `"ab" + "c"` distinct from `"a" + "bc"`).
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write_bytes(value.as_bytes());
    }

    /// The 128-bit digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// A complete, self-contained simulation run: configuration, workload
/// mix, power mode, faults, initial state, horizon, and seed.
///
/// # Examples
///
/// ```
/// use heb_core::{Scenario, SimConfig};
/// use heb_workload::Archetype;
///
/// let s = Scenario::new(
///     "quick/ws",
///     SimConfig::prototype(),
///     &[Archetype::WebSearch],
///     0.1,
///     7,
/// );
/// let report = s.run().unwrap();
/// assert!(report.sim_time.as_hours() > 0.09);
/// // Same scenario, same hash; the label is cosmetic.
/// assert_eq!(
///     s.content_hash(),
///     s.clone().relabeled("other").content_hash()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    label: String,
    config: SimConfig,
    workloads: Vec<Archetype>,
    mode: PowerMode,
    faults: Option<FaultSchedule>,
    initial_soc: Option<Ratio>,
    /// When set, every server's workload stream is replaced by this
    /// constant, noiseless utilization (see
    /// [`Simulation::with_steady_workload`]) — the regime that lets the
    /// event driver leap across megafleet-scale quiet spans.
    steady: Option<Ratio>,
    ticks: u64,
    seed: u64,
    /// Telemetry sink installed on the built simulation. Observational
    /// only, so — like the label — it is excluded from
    /// [`Scenario::content_hash`].
    recorder: Option<heb_telemetry::RecorderHandle>,
    /// How the built [`SimDriver`] advances time. [`DriverMode::Tick`]
    /// (the default) reproduces the legacy fixed loop bit for bit and
    /// keeps the legacy content hash; [`DriverMode::Event`] folds a
    /// marker into the hash so event-mode results get their own cache
    /// entries.
    driver: DriverMode,
}

impl Scenario {
    /// A utility-mode scenario spanning `hours` of simulated time. The
    /// tick count is derived exactly as
    /// [`Simulation::run_for_hours`] derives it, so scenario runs and
    /// direct runs agree to the bit.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        config: SimConfig,
        workloads: &[Archetype],
        hours: f64,
        seed: u64,
    ) -> Self {
        let ticks = ticks_for(&config, hours);
        Self::from_ticks(label, config, workloads, ticks, seed)
    }

    /// A utility-mode scenario spanning an explicit number of metering
    /// ticks.
    #[must_use]
    pub fn from_ticks(
        label: impl Into<String>,
        config: SimConfig,
        workloads: &[Archetype],
        ticks: u64,
        seed: u64,
    ) -> Self {
        Self {
            label: label.into(),
            config,
            workloads: workloads.to_vec(),
            mode: PowerMode::Utility,
            faults: None,
            initial_soc: None,
            steady: None,
            ticks,
            seed,
            recorder: None,
            driver: DriverMode::Tick,
        }
    }

    /// Replaces the power mode (chainable).
    #[must_use]
    pub fn with_mode(mut self, mode: PowerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Installs a fault schedule (chainable).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Presets both buffer pools to `soc` before the run (chainable).
    #[must_use]
    pub fn with_initial_soc(mut self, soc: Ratio) -> Self {
        self.initial_soc = Some(soc);
        self
    }

    /// Replaces every server's workload stream with a constant,
    /// noiseless utilization (chainable). Unlike the archetype mix the
    /// override is semantic — it changes the report — so it folds into
    /// [`Scenario::content_hash`]; scenarios without it keep their
    /// legacy hash verbatim.
    #[must_use]
    pub fn with_steady_workload(mut self, utilization: Ratio) -> Self {
        self.steady = Some(utilization);
        self
    }

    /// Replaces the seed (chainable) — the Monte-Carlo replication
    /// knob.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the horizon in ticks (chainable).
    #[must_use]
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Installs a telemetry recorder on the built simulation
    /// (chainable). Recorders are observational: like the label, they
    /// do **not** contribute to [`Scenario::content_hash`], so a
    /// traced run and an untraced run share a cache key.
    #[must_use]
    pub fn with_recorder(mut self, recorder: heb_telemetry::RecorderHandle) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Selects how the built driver advances time (chainable).
    ///
    /// Unlike the label and the recorder, the driver mode **does**
    /// contribute to [`Scenario::content_hash`] when it is
    /// [`DriverMode::Event`]: event-mode runs are verified bit-identical
    /// to tick mode, but giving them distinct cache keys means a cache
    /// populated before the event core existed can never be consulted
    /// for — or poisoned by — event-mode results. [`DriverMode::Tick`]
    /// folds nothing, preserving every pre-existing hash.
    #[must_use]
    pub fn with_driver_mode(mut self, driver: DriverMode) -> Self {
        self.driver = driver;
        self
    }

    /// Replaces the display label (chainable). Labels are cosmetic:
    /// they do **not** contribute to [`Scenario::content_hash`].
    #[must_use]
    pub fn relabeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The display label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The workload mix.
    #[must_use]
    pub fn workloads(&self) -> &[Archetype] {
        &self.workloads
    }

    /// The power mode.
    #[must_use]
    pub fn mode(&self) -> &PowerMode {
        &self.mode
    }

    /// The fault schedule, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// The preset initial state of charge, if any.
    #[must_use]
    pub fn initial_soc(&self) -> Option<Ratio> {
        self.initial_soc
    }

    /// The steady-workload override, if any.
    #[must_use]
    pub fn steady_workload(&self) -> Option<Ratio> {
        self.steady
    }

    /// How many servers the scenario simulates — surfaced so fleet
    /// tooling can flag megafleet-scale runs before paying for a cold
    /// execution.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.config.servers
    }

    /// The horizon in metering ticks.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How the built driver advances time.
    #[must_use]
    pub fn driver_mode(&self) -> DriverMode {
        self.driver
    }

    /// The stable 128-bit content digest over every semantic field.
    ///
    /// Two scenarios share a hash exactly when they would produce the
    /// same [`SimReport`]: the digest folds in the config (including
    /// the topology's converter chains), the workload mix, the power
    /// mode (with every trace sample, bit-exact), the fault schedule,
    /// the initial SoC, the horizon, and the seed. The label is
    /// excluded — it is presentation, not physics.
    #[must_use]
    pub fn content_hash(&self) -> u128 {
        let mut h = ContentHasher::new();
        h.write_str("heb-scenario v1");
        hash_config(&mut h, &self.config);
        h.write_usize(self.workloads.len());
        for w in &self.workloads {
            h.write_str(w.abbreviation());
        }
        match &self.mode {
            PowerMode::Utility => h.write_str("utility"),
            PowerMode::Solar(trace) => {
                h.write_str("solar");
                h.write_f64(trace.dt().get());
                h.write_usize(trace.len());
                for sample in trace.samples() {
                    h.write_f64(sample.get());
                }
            }
        }
        match &self.faults {
            None => h.write_bool(false),
            Some(schedule) => {
                h.write_bool(true);
                h.write_usize(schedule.len());
                for event in schedule.events() {
                    h.write_f64(event.at.get());
                    match event.duration {
                        None => h.write_bool(false),
                        Some(d) => {
                            h.write_bool(true);
                            h.write_f64(d.get());
                        }
                    }
                    hash_fault_kind(&mut h, &event.kind);
                }
            }
        }
        match self.initial_soc {
            None => h.write_bool(false),
            Some(soc) => {
                h.write_bool(true);
                h.write_f64(soc.get());
            }
        }
        h.write_u64(self.ticks);
        h.write_u64(self.seed);
        // Folded only when set, so every hash minted before the knob
        // existed remains valid verbatim.
        if let Some(level) = self.steady {
            h.write_str("steady-workload");
            h.write_f64(level.get());
        }
        // Tick mode folds nothing: every hash minted before the event
        // core existed remains valid verbatim.
        if self.driver == DriverMode::Event {
            h.write_str("driver=event");
        }
        h.finish()
    }

    /// The content hash as a 32-character lowercase hex string — the
    /// cache file stem.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:032x}", self.content_hash())
    }

    /// Builds the simulation (mode, faults, and initial SoC applied)
    /// without running it.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for an invalid config, an empty workload
    /// mix, or an empty solar trace.
    pub fn build(&self) -> Result<Simulation, SimError> {
        let mut sim = Simulation::try_new(self.config.clone(), &self.workloads, self.seed)?
            .try_with_mode(self.mode.clone())?;
        if let Some(level) = self.steady {
            sim = sim.with_steady_workload(level);
        }
        if let Some(schedule) = &self.faults {
            sim = sim.with_faults(schedule.clone());
        }
        if let Some(soc) = self.initial_soc {
            sim.set_buffer_soc(soc);
        }
        if let Some(recorder) = &self.recorder {
            sim.set_recorder(heb_telemetry::RecorderHandle::clone(recorder));
        }
        Ok(sim)
    }

    /// Builds the scenario's [`SimDriver`] — the one construction path
    /// shared by the serial runner, the fleet engine, and the serve
    /// service — without running it.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when [`Scenario::build`] does.
    pub fn build_driver(&self) -> Result<SimDriver, SimError> {
        let sim = self.build()?;
        Ok(match self.driver {
            DriverMode::Tick => SimDriver::tick(sim),
            DriverMode::Event => SimDriver::event(sim),
        })
    }

    /// Runs the scenario to completion through its [`SimDriver`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when [`Scenario::build`] does.
    pub fn run(&self) -> Result<SimReport, SimError> {
        let mut driver = self.build_driver()?;
        Ok(driver.run_ticks(self.ticks))
    }

    /// Runs the scenario, panicking with the scenario label on error —
    /// the behaviour experiment drivers had when they called
    /// [`Simulation::new`] directly.
    ///
    /// # Panics
    ///
    /// Panics if the scenario cannot be built; the message names the
    /// scenario and the underlying [`SimError`].
    #[must_use]
    pub fn run_expect(&self) -> SimReport {
        self.run()
            // heb-analyze: allow(HEB003, documented panicking twin of run; the fleet engine relies on its message format)
            .unwrap_or_else(|err| panic!("scenario {:?}: {err}", self.label))
    }
}

/// Ticks covered by `hours` under `config` — the exact rounding
/// [`Simulation::run_for_hours`] applies.
#[must_use]
pub fn ticks_for(config: &SimConfig, hours: f64) -> u64 {
    (hours * 3600.0 / config.tick.get()).round() as u64
}

fn hash_config(h: &mut ContentHasher, config: &SimConfig) {
    h.write_usize(config.servers);
    h.write_f64(config.budget.get());
    h.write_f64(config.total_capacity.get());
    h.write_f64(config.sc_fraction.get());
    h.write_f64(config.dod_limit.get());
    h.write_f64(config.slot_length.get());
    h.write_f64(config.tick.get());
    h.write_str(config.policy.name());
    h.write_f64(config.small_peak_threshold.get());
    h.write_f64(config.delta_r.get());
    h.write_f64(config.pat_energy_bucket.get());
    h.write_f64(config.pat_power_bucket.get());
    h.write_usize(config.forecast_period);
    h.write_str(config.topology.name());
    for path in [
        DeliveryPath::UtilityToLoad,
        DeliveryPath::BufferToLoad,
        DeliveryPath::SourceToBuffer,
    ] {
        let chain = config.topology.chain(path);
        h.write_usize(chain.stages().len());
        for stage in chain.stages() {
            h.write_str(stage.label());
            h.write_f64(stage.efficiency().get());
        }
    }
    h.write_f64(config.metering_noise);
    h.write_usize(config.battery_strings);
}

fn hash_fault_kind(h: &mut ContentHasher, kind: &FaultKind) {
    h.write_str(kind.name());
    match kind {
        FaultKind::UtilityBrownout { derate } => h.write_f64(derate.get()),
        FaultKind::BatteryStringFailure { index } | FaultKind::ScModuleFailure { index } => {
            h.write_usize(*index);
        }
        FaultKind::BatteryDegradation {
            capacity_fade,
            resistance_growth,
        } => {
            h.write_f64(capacity_fade.get());
            h.write_f64(*resistance_growth);
        }
        FaultKind::RelayStuckOpen { server } => h.write_usize(*server),
        FaultKind::MeterSpike { factor } => h.write_f64(*factor),
        FaultKind::UtilityBlackout
        | FaultKind::SolarDropout
        | FaultKind::MeterDropout
        | FaultKind::MeterFreeze => {}
    }
}

/// Anything that can execute a scenario batch and return one report per
/// scenario, **in scenario order**.
///
/// The determinism contract every implementation must honour: the
/// returned reports are bit-identical to
/// `batch.iter().map(Scenario::run_expect)`, regardless of worker
/// count, scheduling, or caching.
pub trait ScenarioRunner: Sync {
    /// Executes the batch, returning reports ordered by scenario index.
    fn run_batch(&self, batch: &[Scenario]) -> Vec<SimReport>;

    /// Executes one scenario through its [`SimDriver`] — the single
    /// construction path all runners share. Implementations that farm
    /// scenarios out to workers call this per scenario; overriding it
    /// is possible but forfeits the one-way-to-build guarantee, so
    /// don't.
    fn run_scenario(&self, scenario: &Scenario) -> SimReport {
        scenario.run_expect()
    }
}

/// The reference implementation: runs every scenario inline, in order.
/// The parallel engine is verified against this.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl ScenarioRunner for SerialRunner {
    fn run_batch(&self, batch: &[Scenario]) -> Vec<SimReport> {
        batch.iter().map(|s| self.run_scenario(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use heb_units::{Seconds, Watts};
    use heb_workload::PowerTrace;

    fn base() -> Scenario {
        Scenario::new(
            "t/base",
            SimConfig::prototype(),
            &[Archetype::WebSearch, Archetype::Terasort],
            0.2,
            11,
        )
    }

    #[test]
    fn hash_is_stable_and_label_blind() {
        let a = base();
        assert_eq!(a.content_hash(), base().content_hash());
        assert_eq!(a.content_hash(), a.clone().relabeled("x").content_hash());
        assert_eq!(a.hash_hex().len(), 32);
    }

    #[test]
    fn recorder_is_hash_blind_like_the_label() {
        let traced = base().with_recorder(std::sync::Arc::new(heb_telemetry::RingRecorder::new(8)));
        assert_eq!(base().content_hash(), traced.content_hash());
    }

    #[test]
    fn traced_scenario_captures_events_without_changing_the_report() {
        let ring = std::sync::Arc::new(heb_telemetry::RingRecorder::new(4096));
        let traced = base().with_recorder(std::sync::Arc::clone(&ring) as _);
        let report = traced.run().unwrap();
        assert_eq!(report, base().run().unwrap(), "tracing must not perturb");
        assert!(!ring.is_empty(), "a run must produce events");
    }

    #[test]
    fn every_semantic_field_moves_the_hash() {
        let a = base();
        let h = a.content_hash();
        assert_ne!(a.clone().with_seed(12).content_hash(), h);
        assert_ne!(a.clone().with_ticks(721).content_hash(), h);
        assert_ne!(
            a.clone()
                .with_steady_workload(Ratio::new_clamped(0.4))
                .content_hash(),
            h
        );
        assert_ne!(
            a.clone()
                .with_initial_soc(Ratio::new_clamped(0.5))
                .content_hash(),
            h
        );
        assert_ne!(
            a.clone()
                .with_faults(FaultSchedule::parse("blackout@60~30").unwrap())
                .content_hash(),
            h
        );
        let trace = PowerTrace::new(vec![Watts::new(260.0); 10], Seconds::new(1.0));
        assert_ne!(
            a.clone().with_mode(PowerMode::Solar(trace)).content_hash(),
            h
        );
        let cfg = SimConfig::prototype().with_budget(Watts::new(259.0));
        assert_ne!(
            Scenario::new(
                "t/base",
                cfg,
                &[Archetype::WebSearch, Archetype::Terasort],
                0.2,
                11
            )
            .content_hash(),
            h
        );
        let cfg = SimConfig::prototype().with_policy(PolicyKind::ScFirst);
        assert_ne!(
            Scenario::new(
                "t/base",
                cfg,
                &[Archetype::WebSearch, Archetype::Terasort],
                0.2,
                11
            )
            .content_hash(),
            h
        );
    }

    #[test]
    fn steady_workload_flattens_demand_and_levels_move_the_hash() {
        let steady = base().with_steady_workload(Ratio::new_clamped(0.5));
        // Distinct levels get distinct cache identities.
        assert_ne!(
            steady.content_hash(),
            base()
                .with_steady_workload(Ratio::new_clamped(0.6))
                .content_hash()
        );
        // A steady run sees zero mismatch under the prototype budget, so
        // nothing is ever shed.
        let report = steady.run().unwrap();
        assert_eq!(report.shed_events, 0);
        // Tick and event drivers agree bitwise on steady scenarios too.
        assert_eq!(
            report,
            steady
                .clone()
                .with_driver_mode(DriverMode::Event)
                .run()
                .unwrap()
        );
    }

    #[test]
    fn trace_samples_are_hashed_bit_exactly() {
        let mk = |level: f64| {
            base().with_mode(PowerMode::Solar(PowerTrace::new(
                vec![Watts::new(level); 60],
                Seconds::new(1.0),
            )))
        };
        assert_eq!(mk(260.0).content_hash(), mk(260.0).content_hash());
        assert_ne!(
            mk(260.0).content_hash(),
            mk(260.0 + f64::EPSILON * 260.0).content_hash()
        );
    }

    #[test]
    fn scenario_run_matches_direct_simulation() {
        let report = base().run().unwrap();
        let mut sim = Simulation::new(
            SimConfig::prototype(),
            &[Archetype::WebSearch, Archetype::Terasort],
            11,
        );
        let direct = sim.run_for_hours(0.2);
        assert_eq!(report, direct);
    }

    #[test]
    fn serial_runner_preserves_order() {
        let batch = vec![
            base(),
            base().with_seed(3).relabeled("t/3"),
            base().with_seed(4).relabeled("t/4"),
        ];
        let reports = SerialRunner.run_batch(&batch);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0], batch[0].run().unwrap());
        assert_eq!(reports[1], batch[1].run().unwrap());
        assert_eq!(reports[2], batch[2].run().unwrap());
    }

    #[test]
    fn event_mode_scenarios_match_tick_mode_bitwise() {
        let tick = base().run().unwrap();
        let event = base().with_driver_mode(DriverMode::Event).run().unwrap();
        assert_eq!(tick, event);
        // The hostile variant — faults, tight budget — must also agree.
        let hostile = || {
            Scenario::new(
                "t/hostile",
                SimConfig::prototype()
                    .with_policy(PolicyKind::HebD)
                    .with_budget(Watts::new(150.0)),
                &[Archetype::Terasort],
                0.5,
                3,
            )
            .with_faults(FaultSchedule::parse("blackout@600~300").unwrap())
        };
        assert_eq!(
            hostile().run().unwrap(),
            hostile().with_driver_mode(DriverMode::Event).run().unwrap()
        );
    }

    #[test]
    fn driver_mode_hashing_is_tick_transparent_event_distinct() {
        // Tick mode folds nothing: the default hash is the legacy hash.
        assert_eq!(
            base().content_hash(),
            base().with_driver_mode(DriverMode::Tick).content_hash()
        );
        // Event mode gets its own cache identity.
        assert_ne!(
            base().content_hash(),
            base().with_driver_mode(DriverMode::Event).content_hash()
        );
    }

    #[test]
    fn build_driver_honours_the_mode() {
        assert_eq!(base().build_driver().unwrap().mode(), DriverMode::Tick);
        assert_eq!(
            base()
                .with_driver_mode(DriverMode::Event)
                .build_driver()
                .unwrap()
                .mode(),
            DriverMode::Event
        );
    }

    #[test]
    fn invalid_scenarios_report_errors() {
        let s = Scenario::new("t/empty", SimConfig::prototype(), &[], 0.1, 0);
        assert_eq!(s.run().err(), Some(SimError::NoWorkloads));
        let empty = PowerTrace::new(Vec::new(), Seconds::new(1.0));
        let s = base().with_mode(PowerMode::Solar(empty));
        assert_eq!(s.run().err(), Some(SimError::EmptySolarTrace));
    }
}
