//! The six power-management schemes of Table 2.

/// Which pool a discharge request tries first, and whether the other
/// pool backs it up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DischargePriority {
    /// Battery only (`BaOnly`): no SC pool exists.
    BatteryOnly,
    /// Battery first, SC as overflow (`BaFirst`).
    BatteryThenSc,
    /// SC first, battery as overflow (`SCFirst`, and HEB small peaks).
    ScThenBattery,
    /// Split by `R_λ` with mutual overflow (HEB large peaks).
    Split,
}

impl DischargePriority {
    /// Stable short name used in telemetry streams.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DischargePriority::BatteryOnly => "ba-only",
            DischargePriority::BatteryThenSc => "ba-then-sc",
            DischargePriority::ScThenBattery => "sc-then-ba",
            DischargePriority::Split => "split",
        }
    }
}

/// Which pool absorbs charging headroom first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChargePriority {
    /// Battery only.
    BatteryOnly,
    /// Battery first, then SC.
    BatteryThenSc,
    /// SC first, then battery — the choice that captures deep renewable
    /// valleys (SCs have no charge-current bound).
    ScThenBattery,
}

impl ChargePriority {
    /// Stable short name used in telemetry streams.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChargePriority::BatteryOnly => "ba-only",
            ChargePriority::BatteryThenSc => "ba-then-sc",
            ChargePriority::ScThenBattery => "sc-then-ba",
        }
    }
}

/// The controller's slot-level classification of the predicted peak
/// (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeakSize {
    /// Mild and short: SCs handle it alone (`R_λ = 1`).
    Small,
    /// Significant and long: batteries and SCs share it (`0 < R_λ < 1`).
    Large,
}

impl PeakSize {
    /// Stable short name used in telemetry streams.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PeakSize::Small => "small",
            PeakSize::Large => "large",
        }
    }
}

/// The evaluated power-management schemes (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Homogeneous batteries only — the prior-work baseline.
    BaOnly,
    /// Hybrid, battery-priority, no load-aware assignment.
    BaFirst,
    /// Hybrid, SC-priority, no load-aware assignment.
    ScFirst,
    /// Load-aware assignment driven by *last slot's* demand (naive
    /// forecasting).
    HebF,
    /// Load-aware assignment from a static profiling table (no runtime
    /// optimisation).
    HebS,
    /// The full dynamic framework: Holt-Winters prediction + PAT with
    /// `Δr` self-optimisation.
    #[default]
    HebD,
}

impl PolicyKind {
    /// All six schemes, in Table 2 order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::BaOnly,
        PolicyKind::BaFirst,
        PolicyKind::ScFirst,
        PolicyKind::HebF,
        PolicyKind::HebS,
        PolicyKind::HebD,
    ];

    /// Display name matching the paper's Table 2.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::BaOnly => "BaOnly",
            PolicyKind::BaFirst => "BaFirst",
            PolicyKind::ScFirst => "SCFirst",
            PolicyKind::HebF => "HEB-F",
            PolicyKind::HebS => "HEB-S",
            PolicyKind::HebD => "HEB-D",
        }
    }

    /// Parses a scheme by its Table 2 display name (`"HEB-D"`,
    /// `"BaOnly"`, …), case-insensitively. Returns `None` for unknown
    /// names so callers can report bad input instead of panicking.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        PolicyKind::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// Whether the scheme provisions any super-capacitors.
    #[must_use]
    pub fn is_hybrid(self) -> bool {
        !matches!(self, PolicyKind::BaOnly)
    }

    /// Whether the scheme consults the power allocation table.
    #[must_use]
    pub fn uses_pat(self) -> bool {
        matches!(self, PolicyKind::HebF | PolicyKind::HebS | PolicyKind::HebD)
    }

    /// Whether the scheme updates the PAT at slot end.
    #[must_use]
    pub fn optimizes_pat(self) -> bool {
        matches!(self, PolicyKind::HebF | PolicyKind::HebD)
    }

    /// Whether the scheme predicts with Holt-Winters (vs last-value).
    #[must_use]
    pub fn uses_holt_winters(self) -> bool {
        matches!(self, PolicyKind::HebS | PolicyKind::HebD)
    }

    /// The scheme's charging-priority rule.
    #[must_use]
    pub fn charge_priority(self) -> ChargePriority {
        match self {
            PolicyKind::BaOnly => ChargePriority::BatteryOnly,
            PolicyKind::BaFirst => ChargePriority::BatteryThenSc,
            // SC-first charging is shared by SCFirst and all HEB
            // variants (Section 7.4: "SCFirst and HEB always utilize SC
            // first to absorb renewable energy").
            PolicyKind::ScFirst | PolicyKind::HebF | PolicyKind::HebS | PolicyKind::HebD => {
                ChargePriority::ScThenBattery
            }
        }
    }

    /// The scheme's discharge rule for a peak classified as `size`.
    #[must_use]
    pub fn discharge_priority(self, size: PeakSize) -> DischargePriority {
        match self {
            PolicyKind::BaOnly => DischargePriority::BatteryOnly,
            PolicyKind::BaFirst => DischargePriority::BatteryThenSc,
            PolicyKind::ScFirst => DischargePriority::ScThenBattery,
            PolicyKind::HebF | PolicyKind::HebS | PolicyKind::HebD => match size {
                PeakSize::Small => DischargePriority::ScThenBattery,
                PeakSize::Large => DischargePriority::Split,
            },
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_schemes() {
        assert_eq!(PolicyKind::ALL.len(), 6);
        let mut names: Vec<_> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn parse_round_trips_table2_names() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
            assert_eq!(PolicyKind::parse(&p.name().to_ascii_lowercase()), Some(p));
        }
        assert_eq!(PolicyKind::parse("heb-x"), None);
    }

    #[test]
    fn only_ba_only_is_homogeneous() {
        for p in PolicyKind::ALL {
            assert_eq!(p.is_hybrid(), p != PolicyKind::BaOnly);
        }
    }

    #[test]
    fn pat_usage_matrix() {
        assert!(!PolicyKind::BaOnly.uses_pat());
        assert!(!PolicyKind::ScFirst.uses_pat());
        assert!(PolicyKind::HebS.uses_pat());
        assert!(!PolicyKind::HebS.optimizes_pat());
        assert!(PolicyKind::HebD.uses_pat());
        assert!(PolicyKind::HebD.optimizes_pat());
        assert!(PolicyKind::HebF.optimizes_pat());
        assert!(!PolicyKind::HebF.uses_holt_winters());
        assert!(PolicyKind::HebD.uses_holt_winters());
    }

    #[test]
    fn heb_small_peaks_go_to_sc() {
        assert_eq!(
            PolicyKind::HebD.discharge_priority(PeakSize::Small),
            DischargePriority::ScThenBattery
        );
        assert_eq!(
            PolicyKind::HebD.discharge_priority(PeakSize::Large),
            DischargePriority::Split
        );
    }

    #[test]
    fn fixed_priority_schemes_ignore_peak_size() {
        for size in [PeakSize::Small, PeakSize::Large] {
            assert_eq!(
                PolicyKind::BaFirst.discharge_priority(size),
                DischargePriority::BatteryThenSc
            );
            assert_eq!(
                PolicyKind::ScFirst.discharge_priority(size),
                DischargePriority::ScThenBattery
            );
            assert_eq!(
                PolicyKind::BaOnly.discharge_priority(size),
                DischargePriority::BatteryOnly
            );
        }
    }

    #[test]
    fn charging_priorities() {
        assert_eq!(
            PolicyKind::BaOnly.charge_priority(),
            ChargePriority::BatteryOnly
        );
        assert_eq!(
            PolicyKind::BaFirst.charge_priority(),
            ChargePriority::BatteryThenSc
        );
        for p in [
            PolicyKind::ScFirst,
            PolicyKind::HebF,
            PolicyKind::HebS,
            PolicyKind::HebD,
        ] {
            assert_eq!(p.charge_priority(), ChargePriority::ScThenBattery);
        }
    }
}
