//! What-if provisioning queries: the typed request model of the
//! capacity-advisor service (`heb_serve`, DESIGN §10).
//!
//! A [`WhatIfQuery`] names a workload mix, a horizon, and optional
//! sizing overrides on top of [`SimConfig::prototype`]. It validates
//! through [`SimConfig::builder`] — exactly the same gate the fleet
//! CLI uses — and lowers to a [`Scenario`], so a query's identity is
//! the scenario's content hash and warm answers come straight from the
//! content-addressed result cache.
//!
//! The module also synthesises the aggregate demand trace a query
//! implies ([`demand_trace`]), mirroring [`Simulation::try_new`]'s
//! cluster setup bit-for-bit, so the paper's MPPU metric (§2.1) can be
//! reported without re-running the simulation.

use std::fmt;

use heb_powersys::{Cluster, FrequencyLevel};
use heb_units::{Joules, Watts};
use heb_workload::{Archetype, PeakClass, PowerTrace};

use crate::config::{ConfigError, SimConfig};
use crate::policy::PolicyKind;
use crate::scenario::{ticks_for, Scenario};

/// Why a what-if query could not be lowered to a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The workload mix was empty.
    NoWorkloads,
    /// The horizon was zero, negative, or not finite.
    BadHours(f64),
    /// A sizing override failed [`SimConfig::builder`] validation.
    Config(ConfigError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoWorkloads => write!(f, "query names no workloads"),
            QueryError::BadHours(hours) => {
                write!(f, "query horizon must be finite and positive, got {hours}")
            }
            QueryError::Config(err) => write!(f, "query config rejected: {err}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ConfigError> for QueryError {
    fn from(err: ConfigError) -> Self {
        QueryError::Config(err)
    }
}

/// A provisioning what-if: workload mix × buffer sizing × horizon.
///
/// `None` fields inherit [`SimConfig::prototype`] defaults, so the
/// smallest valid query is just a workload mix and a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfQuery {
    /// Workload mix, assigned to servers round-robin.
    pub workloads: Vec<Archetype>,
    /// Simulated horizon in hours.
    pub hours: f64,
    /// Base seed for the per-server utilization generators.
    pub seed: u64,
    /// Cluster size override.
    pub servers: Option<usize>,
    /// Utility power budget override.
    pub budget: Option<Watts>,
    /// Total buffer capacity override.
    pub capacity: Option<Joules>,
    /// Super-capacitor share of the buffer capacity (0..=1).
    pub sc_fraction: Option<f64>,
    /// Battery depth-of-discharge limit (0..=1).
    pub dod_limit: Option<f64>,
    /// Buffer-management scheme override.
    pub policy: Option<PolicyKind>,
}

impl WhatIfQuery {
    /// A query for `workloads` over `hours` with every sizing knob at
    /// its prototype default.
    #[must_use]
    pub fn new(workloads: Vec<Archetype>, hours: f64, seed: u64) -> Self {
        Self {
            workloads,
            hours,
            seed,
            servers: None,
            budget: None,
            capacity: None,
            sc_fraction: None,
            dod_limit: None,
            policy: None,
        }
    }

    /// Resolves the query's configuration through
    /// [`SimConfig::builder`], applying overrides on top of the
    /// prototype defaults.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`ConfigError`] for any out-of-range or
    /// non-finite override.
    pub fn config(&self) -> Result<SimConfig, ConfigError> {
        let mut builder = SimConfig::prototype().to_builder();
        if let Some(servers) = self.servers {
            builder = builder.servers(servers);
        }
        if let Some(budget) = self.budget {
            builder = builder.budget(budget);
        }
        if let Some(capacity) = self.capacity {
            builder = builder.total_capacity(capacity);
        }
        if let Some(fraction) = self.sc_fraction {
            builder = builder.sc_fraction(fraction);
        }
        if let Some(limit) = self.dod_limit {
            builder = builder.dod_limit(limit);
        }
        if let Some(policy) = self.policy {
            builder = builder.policy(policy);
        }
        builder.build()
    }

    /// The query's canonical display label. Cosmetic only: the label
    /// is excluded from [`Scenario::content_hash`], so it never
    /// affects cache identity.
    #[must_use]
    pub fn label(&self) -> String {
        let mix: Vec<&str> = self.workloads.iter().map(|w| w.abbreviation()).collect();
        format!("serve/{}/h{}/seed{}", mix.join("+"), self.hours, self.seed)
    }

    /// Lowers the query to a runnable [`Scenario`]. The scenario's
    /// content hash is the query's cache key.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] when the mix is empty, the horizon is
    /// not positive and finite, or an override fails validation.
    pub fn scenario(&self) -> Result<Scenario, QueryError> {
        if self.workloads.is_empty() {
            return Err(QueryError::NoWorkloads);
        }
        if !self.hours.is_finite() || self.hours <= 0.0 {
            return Err(QueryError::BadHours(self.hours));
        }
        let config = self.config()?;
        Ok(Scenario::new(
            self.label(),
            config,
            &self.workloads,
            self.hours,
            self.seed,
        ))
    }

    /// The fraction of the horizon in which aggregate demand reaches
    /// the provisioned budget — the paper's MPPU (§2.1) — computed on
    /// the synthesised demand trace.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`WhatIfQuery::scenario`].
    pub fn mppu(&self) -> Result<f64, QueryError> {
        if self.workloads.is_empty() {
            return Err(QueryError::NoWorkloads);
        }
        if !self.hours.is_finite() || self.hours <= 0.0 {
            return Err(QueryError::BadHours(self.hours));
        }
        let config = self.config()?;
        let ticks = ticks_for(&config, self.hours);
        let trace = demand_trace(&config, &self.workloads, ticks, self.seed);
        Ok(trace.mppu(config.budget))
    }
}

/// Synthesises the aggregate cluster demand trace a scenario implies:
/// the same prototype cluster, round-robin workload assignment,
/// per-server generator seeding (`seed + idx * 7919`), and frequency
/// grouping as [`Simulation::try_new`], sampled once per tick with no
/// power-capping feedback. This is the open-loop demand the paper's
/// MPPU metric is defined over.
///
/// [`Simulation::try_new`]: crate::Simulation::try_new
#[must_use]
pub fn demand_trace(
    config: &SimConfig,
    workloads: &[Archetype],
    ticks: u64,
    seed: u64,
) -> PowerTrace {
    if workloads.is_empty() || config.servers == 0 {
        return PowerTrace::new(Vec::new(), config.tick);
    }
    let mut cluster = Cluster::prototype(config.servers);
    let mut generators = Vec::with_capacity(config.servers);
    for idx in 0..config.servers {
        let archetype = workloads[idx % workloads.len()];
        generators.push(archetype.generator(seed.wrapping_add(idx as u64 * 7919)));
        let freq = match archetype.peak_class() {
            PeakClass::Small => FrequencyLevel::Low,
            PeakClass::Large => FrequencyLevel::High,
        };
        cluster.set_frequency(idx, freq);
    }
    let mut samples = Vec::with_capacity(ticks as usize);
    for _ in 0..ticks {
        let utilizations: Vec<_> = generators
            .iter_mut()
            .map(|g| g.next_utilization())
            .collect();
        cluster.set_utilizations(&utilizations);
        samples.push(cluster.total_demand());
    }
    PowerTrace::new(samples, config.tick)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_query() -> WhatIfQuery {
        WhatIfQuery::new(vec![Archetype::WebSearch, Archetype::Terasort], 0.05, 7)
    }

    #[test]
    fn defaults_resolve_to_prototype_config() {
        let query = quick_query();
        let config = query.config().expect("prototype defaults must validate");
        assert_eq!(config, SimConfig::prototype());
    }

    #[test]
    fn overrides_flow_through_the_builder() {
        let mut query = quick_query();
        query.servers = Some(12);
        query.budget = Some(Watts::new(400.0));
        query.sc_fraction = Some(0.5);
        query.policy = Some(PolicyKind::BaOnly);
        let config = query.config().expect("valid overrides");
        assert_eq!(config.servers, 12);
        assert_eq!(config.budget, Watts::new(400.0));
        assert!((config.sc_fraction.get() - 0.5).abs() < 1e-12);
        assert_eq!(config.policy, PolicyKind::BaOnly);
    }

    #[test]
    fn invalid_inputs_produce_typed_errors() {
        let mut empty = quick_query();
        empty.workloads.clear();
        assert_eq!(empty.scenario().unwrap_err(), QueryError::NoWorkloads);

        let mut negative = quick_query();
        negative.hours = -1.0;
        assert!(matches!(
            negative.scenario().unwrap_err(),
            QueryError::BadHours(h) if h == -1.0
        ));

        let mut bad = quick_query();
        bad.sc_fraction = Some(1.5);
        assert!(matches!(bad.scenario().unwrap_err(), QueryError::Config(_)));
        assert!(!bad.scenario().unwrap_err().to_string().is_empty());
    }

    #[test]
    fn identical_queries_share_a_content_hash() {
        let a = quick_query().scenario().expect("valid");
        let b = quick_query().scenario().expect("valid");
        assert_eq!(a.content_hash(), b.content_hash());

        let mut tweaked = quick_query();
        tweaked.seed = 8;
        let c = tweaked.scenario().expect("valid");
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn demand_trace_is_deterministic_and_horizon_sized() {
        let query = quick_query();
        let config = query.config().expect("valid");
        let ticks = ticks_for(&config, query.hours);
        let a = demand_trace(&config, &query.workloads, ticks, query.seed);
        let b = demand_trace(&config, &query.workloads, ticks, query.seed);
        assert_eq!(a.samples(), b.samples(), "same seed, same trace");
        assert_eq!(a.len() as u64, ticks);
        assert!(a.peak().get() > 0.0, "servers draw idle power at least");
    }

    #[test]
    fn mppu_is_a_fraction_and_falls_with_budget() {
        let query = quick_query();
        let tight = {
            let mut q = query.clone();
            q.budget = Some(Watts::new(200.0));
            q.mppu().expect("valid")
        };
        let generous = {
            let mut q = query.clone();
            q.budget = Some(Watts::new(500.0));
            q.mppu().expect("valid")
        };
        assert!((0.0..=1.0).contains(&tight));
        assert!((0.0..=1.0).contains(&generous));
        assert!(generous <= tight, "raising the budget cannot raise MPPU");
    }
}
