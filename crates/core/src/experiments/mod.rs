//! Ready-made drivers for the paper's evaluation (Figures 3–14).
//!
//! Each submodule reproduces one experiment end-to-end and returns a
//! structured result; the `heb-bench` binaries print them as the
//! paper's tables/series and the integration tests assert the paper's
//! qualitative findings on them.

mod architecture;
mod assignment;
mod capacity;
mod chemistry;
mod deployment;
mod discharge;
mod efficiency;
mod faults;
mod outage;
mod prediction;
mod schemes;
mod sharing;
mod valley;

pub use architecture::{
    architecture_comparison, architecture_comparison_with, architecture_scenarios,
    ArchitecturePoint,
};
pub use assignment::{assignment_sweep, AssignmentPoint};
pub use capacity::{
    capacity_growth_scenarios, capacity_growth_sweep, capacity_growth_sweep_with,
    capacity_ratio_scenarios, capacity_ratio_sweep, capacity_ratio_sweep_with, CapacityPoint,
};
pub use chemistry::{chemistry_comparison, ChemistryPoint, DutyCycle};
pub use deployment::{
    deployment_comparison, deployment_comparison_with, deployment_scenarios, DeploymentResult,
};
pub use discharge::{discharge_curves, DischargeCurve};
pub use efficiency::{efficiency_characterization, EfficiencyResult};
pub use faults::{
    fault_intensity_sweep, fault_intensity_sweep_with, fault_sweep_scenarios, FaultSweepPoint,
};
pub use outage::{outage_ride_through, outage_ride_through_with, outage_scenarios, OutagePoint};
pub use prediction::{predictor_comparison, PredictionPoint};
pub use schemes::{
    run_scheme, scheme_comparison, scheme_comparison_assemble, scheme_comparison_scenarios,
    scheme_comparison_with, SchemeResult, WorkloadGroupResult,
};
pub use sharing::{sharing_comparison, SharingResult};
pub use valley::{
    deep_valley_absorption, deep_valley_absorption_with, valley_scenarios, ValleyPoint,
};
