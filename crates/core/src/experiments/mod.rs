//! Ready-made drivers for the paper's evaluation (Figures 3–14).
//!
//! Each submodule reproduces one experiment end-to-end and returns a
//! structured result; the `heb-bench` binaries print them as the
//! paper's tables/series and the integration tests assert the paper's
//! qualitative findings on them.

mod architecture;
mod assignment;
mod capacity;
mod chemistry;
mod deployment;
mod discharge;
mod efficiency;
mod faults;
mod megafleet;
mod outage;
mod prediction;
mod schemes;
mod sharing;
mod valley;

pub use architecture::{
    architecture_comparison, architecture_comparison_with, architecture_scenarios,
    ArchitecturePoint,
};
pub use assignment::{assignment_sweep, AssignmentPoint};
pub use capacity::{
    capacity_growth_scenarios, capacity_growth_sweep, capacity_growth_sweep_with,
    capacity_ratio_scenarios, capacity_ratio_sweep, capacity_ratio_sweep_with, CapacityPoint,
};
pub use chemistry::{chemistry_comparison, ChemistryPoint, DutyCycle};
pub use deployment::{
    deployment_comparison, deployment_comparison_with, deployment_scenarios, DeploymentResult,
};
pub use discharge::{discharge_curves, DischargeCurve};
pub use efficiency::{efficiency_characterization, EfficiencyResult};
pub use faults::{
    fault_intensity_sweep, fault_intensity_sweep_with, fault_sweep_scenarios, FaultSweepPoint,
};
pub use megafleet::{
    megafleet_config, megafleet_day, megafleet_day_with, megafleet_scenario, megafleet_scenarios,
    MegafleetPoint, MEGAFLEET_SCALES,
};
pub use outage::{outage_ride_through, outage_ride_through_with, outage_scenarios, OutagePoint};
pub use prediction::{predictor_comparison, PredictionPoint};
pub use schemes::{
    run_scheme, scheme_comparison, scheme_comparison_assemble, scheme_comparison_scenarios,
    scheme_comparison_with, SchemeResult, WorkloadGroupResult,
};
pub use sharing::{sharing_comparison, SharingResult};
pub use valley::{
    deep_valley_absorption, deep_valley_absorption_with, valley_scenarios, ValleyPoint,
};

/// Pulls the next report off a runner's output while assembling an
/// experiment result.
///
/// Every assembler pairs a `*_scenarios()` list with the reports from
/// running exactly that list, so with a conforming
/// [`crate::ScenarioRunner`] the iterator cannot run dry; a short batch
/// is a broken runner contract and unrecoverable here.
///
/// # Panics
///
/// Panics when the runner returned fewer reports than scenarios.
pub(crate) fn take_report(
    reports: &mut impl Iterator<Item = crate::SimReport>,
    what: &str,
) -> crate::SimReport {
    reports
        .next()
        // heb-analyze: allow(HEB003, runner contract: one report per scenario; centralised so each assembler carries no panic site)
        .unwrap_or_else(|| panic!("runner returned too few reports: missing {what}"))
}
