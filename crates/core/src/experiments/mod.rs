//! Ready-made drivers for the paper's evaluation (Figures 3–14).
//!
//! Each submodule reproduces one experiment end-to-end and returns a
//! structured result; the `heb-bench` binaries print them as the
//! paper's tables/series and the integration tests assert the paper's
//! qualitative findings on them.

mod architecture;
mod assignment;
mod capacity;
mod chemistry;
mod deployment;
mod discharge;
mod efficiency;
mod faults;
mod outage;
mod prediction;
mod schemes;
mod sharing;
mod valley;

pub use architecture::{architecture_comparison, ArchitecturePoint};
pub use assignment::{assignment_sweep, AssignmentPoint};
pub use capacity::{capacity_growth_sweep, capacity_ratio_sweep, CapacityPoint};
pub use chemistry::{chemistry_comparison, ChemistryPoint, DutyCycle};
pub use deployment::{deployment_comparison, DeploymentResult};
pub use discharge::{discharge_curves, DischargeCurve};
pub use efficiency::{efficiency_characterization, EfficiencyResult};
pub use faults::{fault_intensity_sweep, FaultSweepPoint};
pub use outage::{outage_ride_through, OutagePoint};
pub use prediction::{predictor_comparison, PredictionPoint};
pub use schemes::{run_scheme, scheme_comparison, SchemeResult, WorkloadGroupResult};
pub use sharing::{sharing_comparison, SharingResult};
pub use valley::{deep_valley_absorption, ValleyPoint};
