//! Figure 12: the six-scheme comparison on all four metrics.
//!
//! For each policy of Table 2, runs the eight workloads of Table 1
//! against an under-provisioned budget (energy efficiency, downtime,
//! battery lifetime) plus one solar-powered run (renewable-energy
//! utilisation), and aggregates per peak-shape group.

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::policy::PolicyKind;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use crate::sim::PowerMode;
use heb_units::{Ratio, Seconds, Watts};
use heb_workload::{Archetype, PeakClass, PowerTrace, SolarTraceBuilder};

/// One workload's run under one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGroupResult {
    /// The workload.
    pub workload: Archetype,
    /// Its simulation report.
    pub report: SimReport,
}

/// One scheme's results across all workloads plus the solar run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// The power-management scheme.
    pub policy: PolicyKind,
    /// Per-workload peak-shaving runs.
    pub per_workload: Vec<WorkloadGroupResult>,
    /// The renewable-powered run (Figure 12(d)).
    pub solar: SimReport,
    /// Fleet size used (for downtime normalisation).
    pub servers: usize,
}

impl SchemeResult {
    /// Mean buffer energy efficiency over workloads, optionally
    /// restricted to one peak class.
    #[must_use]
    pub fn mean_efficiency(&self, class: Option<PeakClass>) -> Ratio {
        let eff: Vec<f64> = self
            .per_workload
            .iter()
            .filter(|w| class.is_none_or(|c| w.workload.peak_class() == c))
            .map(|w| w.report.energy_efficiency().get())
            .collect();
        if eff.is_empty() {
            Ratio::ONE
        } else {
            Ratio::new_clamped(eff.iter().sum::<f64>() / eff.len() as f64)
        }
    }

    /// Total server downtime across workloads, optionally restricted to
    /// one peak class.
    #[must_use]
    pub fn total_downtime(&self, class: Option<PeakClass>) -> Seconds {
        self.per_workload
            .iter()
            .filter(|w| class.is_none_or(|c| w.workload.peak_class() == c))
            .map(|w| w.report.server_downtime)
            .sum()
    }

    /// Mean projected battery lifetime in years across workloads;
    /// `None` when the scheme has no battery pool (never the case for
    /// Table 2 schemes).
    #[must_use]
    pub fn mean_battery_lifetime_years(&self) -> Option<f64> {
        let years: Vec<f64> = self
            .per_workload
            .iter()
            .filter_map(|w| w.report.battery_lifetime_years())
            .collect();
        if years.is_empty() {
            None
        } else {
            Some(years.iter().sum::<f64>() / years.len() as f64)
        }
    }

    /// Renewable-energy utilisation from the solar run.
    #[must_use]
    pub fn reu(&self) -> Ratio {
        self.solar.reu()
    }

    /// Battery-lifetime improvement over `baseline`, computed the way
    /// the paper's "4.7×" is: per workload, the ratio of the baseline's
    /// battery wear to this scheme's, averaged across workloads. A
    /// workload where this scheme's battery saw no wear at all counts
    /// as `cap` (the calendar-life bound keeps real lifetimes finite).
    #[must_use]
    pub fn lifetime_improvement_vs(&self, baseline: &SchemeResult, cap: f64) -> f64 {
        let ratios: Vec<f64> = self
            .per_workload
            .iter()
            .zip(&baseline.per_workload)
            .map(|(ours, base)| {
                let ours_wear = ours.report.battery_life_used.get();
                let base_wear = base.report.battery_life_used.get();
                if base_wear <= 0.0 {
                    1.0
                } else if ours_wear <= 0.0 {
                    cap
                } else {
                    (base_wear / ours_wear).min(cap)
                }
            })
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }
}

/// A solar trace rotated to start at sunrise, so short runs exercise
/// generation immediately.
fn sunrise_aligned_solar(seed: u64) -> PowerTrace {
    let trace = SolarTraceBuilder::new(Watts::new(500.0))
        .seed(seed)
        .days(1.0)
        .clouds_per_day(80.0)
        .mean_cloud_secs(360.0)
        .build();
    let sunrise_tick = 6 * 3600;
    let samples = trace.samples();
    let rotated: Vec<_> = samples[sunrise_tick..]
        .iter()
        .chain(&samples[..sunrise_tick])
        .copied()
        .collect();
    PowerTrace::new(rotated, trace.dt())
}

/// Runs one policy on one workload for `hours` under the base config —
/// through the same [`Scenario`] + driver path every batch runner uses,
/// so a one-off run and its batch twin are the same code (and the same
/// bits).
#[must_use]
pub fn run_scheme(
    base: &SimConfig,
    policy: PolicyKind,
    workload: Archetype,
    hours: f64,
    seed: u64,
) -> SimReport {
    Scenario::new(
        format!("schemes/{}/{}", policy.name(), workload.abbreviation()),
        base.clone().with_policy(policy),
        &[workload],
        hours,
        seed,
    )
    .run_expect()
}

/// The mixed rack the solar (REU) run uses.
const SOLAR_MIX: [Archetype; 6] = [
    Archetype::WebSearch,
    Archetype::Terasort,
    Archetype::PageRank,
    Archetype::Dfsioe,
    Archetype::MediaStreaming,
    Archetype::Hivebench,
];

/// Scenarios per scheme in the Figure 12 batch: the eight workload
/// runs plus the solar run.
const SCENARIOS_PER_SCHEME: usize = Archetype::ALL.len() + 1;

/// The Figure 12 sweep as a scenario batch: for every scheme, eight
/// workload runs plus the solar REU run, in [`PolicyKind::ALL`] ×
/// [`Archetype::ALL`] order. Feed the batch to any
/// [`ScenarioRunner`] and assemble with
/// [`scheme_comparison_assemble`].
#[must_use]
pub fn scheme_comparison_scenarios(
    base: &SimConfig,
    hours_per_workload: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<Scenario> {
    let mut batch = Vec::with_capacity(PolicyKind::ALL.len() * SCENARIOS_PER_SCHEME);
    for &policy in &PolicyKind::ALL {
        for &workload in &Archetype::ALL {
            batch.push(Scenario::new(
                format!("schemes/{}/{}", policy.name(), workload.abbreviation()),
                base.clone().with_policy(policy),
                &[workload],
                hours_per_workload,
                seed,
            ));
        }
        // Mixed rack under solar power for the REU comparison. The
        // rack ran from the buffers overnight: start the solar day
        // with nearly drained pools, as the prototype would.
        batch.push(
            Scenario::new(
                format!("schemes/{}/solar", policy.name()),
                base.clone().with_policy(policy),
                &SOLAR_MIX,
                solar_hours,
                seed,
            )
            .with_mode(PowerMode::Solar(sunrise_aligned_solar(seed)))
            .with_initial_soc(heb_units::Ratio::new_clamped(0.15)),
        );
    }
    batch
}

/// Pairs the reports of a [`scheme_comparison_scenarios`] batch back
/// into per-scheme results.
///
/// # Panics
///
/// Panics if `reports` does not have one entry per scenario of the
/// batch shape.
#[must_use]
pub fn scheme_comparison_assemble(base: &SimConfig, reports: Vec<SimReport>) -> Vec<SchemeResult> {
    assert_eq!(
        reports.len(),
        PolicyKind::ALL.len() * SCENARIOS_PER_SCHEME,
        "report count must match the scheme batch shape"
    );
    let mut out = Vec::with_capacity(PolicyKind::ALL.len());
    let mut reports = reports.into_iter();
    for &policy in &PolicyKind::ALL {
        let per_workload = Archetype::ALL
            .iter()
            .map(|&workload| WorkloadGroupResult {
                workload,
                report: super::take_report(&mut reports, "workload report"),
            })
            .collect();
        let solar = super::take_report(&mut reports, "solar report");
        out.push(SchemeResult {
            policy,
            per_workload,
            solar,
            servers: base.servers,
        });
    }
    out
}

/// The full Figure 12 sweep: every scheme × every workload for
/// `hours_per_workload`, plus a `solar_hours` renewable run on a mixed
/// rack.
#[must_use]
pub fn scheme_comparison(
    base: &SimConfig,
    hours_per_workload: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<SchemeResult> {
    scheme_comparison_with(&SerialRunner, base, hours_per_workload, solar_hours, seed)
}

/// [`scheme_comparison`] executed by an arbitrary [`ScenarioRunner`] —
/// the fleet engine parallelises and caches the batch, and the result
/// is bit-identical to the serial sweep.
#[must_use]
pub fn scheme_comparison_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    hours_per_workload: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<SchemeResult> {
    let batch = scheme_comparison_scenarios(base, hours_per_workload, solar_hours, seed);
    scheme_comparison_assemble(base, runner.run_batch(&batch))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed sweep used by unit tests (the full-length version runs
    /// in the bench harness and integration tests).
    fn quick() -> Vec<SchemeResult> {
        let base = SimConfig::prototype().with_budget(Watts::new(250.0));
        scheme_comparison(&base, 0.5, 2.0, 17)
    }

    #[test]
    fn covers_all_schemes_and_workloads() {
        let results = quick();
        assert_eq!(results.len(), 6);
        for r in &results {
            assert_eq!(r.per_workload.len(), 8);
            assert!(r.solar.renewable_generated.get() > 0.0);
        }
    }

    #[test]
    fn hybrid_beats_battery_only_on_efficiency() {
        let results = quick();
        let eff = |p: PolicyKind| {
            results
                .iter()
                .find(|r| r.policy == p)
                .unwrap()
                .mean_efficiency(None)
                .get()
        };
        assert!(
            eff(PolicyKind::ScFirst) > eff(PolicyKind::BaOnly),
            "SCFirst {} should beat BaOnly {}",
            eff(PolicyKind::ScFirst),
            eff(PolicyKind::BaOnly)
        );
        assert!(
            eff(PolicyKind::HebD) > eff(PolicyKind::BaOnly),
            "HEB-D {} should beat BaOnly {}",
            eff(PolicyKind::HebD),
            eff(PolicyKind::BaOnly)
        );
    }

    #[test]
    fn sc_charging_schemes_win_reu() {
        let results = quick();
        let reu = |p: PolicyKind| results.iter().find(|r| r.policy == p).unwrap().reu().get();
        // Every SC-first-charging scheme should beat BaOnly on REU.
        for p in [PolicyKind::ScFirst, PolicyKind::HebD] {
            assert!(
                reu(p) > reu(PolicyKind::BaOnly),
                "{p} REU {} vs BaOnly {}",
                reu(p),
                reu(PolicyKind::BaOnly)
            );
        }
    }

    #[test]
    fn sc_preferential_schemes_extend_battery_life() {
        let results = quick();
        let life = |p: PolicyKind| {
            results
                .iter()
                .find(|r| r.policy == p)
                .unwrap()
                .mean_battery_lifetime_years()
                .unwrap()
        };
        assert!(
            life(PolicyKind::HebD) > life(PolicyKind::BaOnly),
            "HEB-D {} y vs BaOnly {} y",
            life(PolicyKind::HebD),
            life(PolicyKind::BaOnly)
        );
    }

    #[test]
    fn class_filters_partition_workloads() {
        let results = quick();
        let r = &results[0];
        let small = r
            .per_workload
            .iter()
            .filter(|w| w.workload.peak_class() == PeakClass::Small)
            .count();
        assert_eq!(small, 5);
        let _ = r.mean_efficiency(Some(PeakClass::Small));
        let _ = r.total_downtime(Some(PeakClass::Large));
    }
}
