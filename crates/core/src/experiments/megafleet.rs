//! Megafleet: the fleet-scale hot path exercised end-to-end.
//!
//! The paper sizes HEB for datacenters, not racks; this experiment
//! scales the simulated cluster from 1 k to 100 k servers and runs a
//! full 24 h day through the event-driven core. The regime is chosen
//! so the hot path dominates: a provably steady workload
//! ([`BurstProfile::steady`]), noiseless metering (the prototype
//! default), a comfortable utility budget, and quiescent buffers —
//! which lets [`SimDriver::Event`] leap slot-to-slot while the
//! struct-of-arrays cluster and the aggregation tree keep the per-tick
//! work O(changed servers) instead of O(fleet).
//!
//! Per-server sizing follows the prototype rack (≈43 W budget and
//! 25 Wh of buffer per server) rounded to generous constants, so the
//! steady 50 %-utilization day never sheds and the report is a pure
//! throughput measurement.
//!
//! [`BurstProfile::steady`]: heb_workload::BurstProfile::steady
//! [`SimDriver::Event`]: crate::event::SimDriver

use crate::config::SimConfig;
use crate::event::DriverMode;
use crate::metrics::SimReport;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use heb_units::{Joules, Ratio, Seconds, Watts};
use heb_workload::Archetype;

/// The committed scale trajectory, in servers.
pub const MEGAFLEET_SCALES: [usize; 3] = [1_000, 10_000, 100_000];

/// Steady per-server utilization the megafleet day runs at.
const STEADY_LEVEL: f64 = 0.5;

/// Utility budget per server. A low-frequency server at 50 %
/// utilization draws 42 W, so 50 W of budget means the utility feed
/// covers the whole fleet with headroom and the buffers stay idle.
const BUDGET_PER_SERVER: Watts = Watts::new(50.0);

/// Buffer capacity per server, matching the prototype rack's
/// 150 Wh across 6 servers.
const CAPACITY_WH_PER_SERVER: f64 = 25.0;

/// One scale point of the megafleet day.
#[derive(Debug, Clone, PartialEq)]
pub struct MegafleetPoint {
    /// Fleet size in servers.
    pub servers: usize,
    /// The full report of the 24 h (or `hours`-long) day.
    pub report: SimReport,
}

/// The megafleet configuration for a fleet of `servers`: prototype
/// semantics, datacenter-scale sizing, and a coarse 60 s tick inside
/// 1 h control slots (1 440 ticks per simulated day).
///
/// # Panics
///
/// Panics when `servers` is zero — a megafleet needs a fleet.
#[must_use]
pub fn megafleet_config(servers: usize) -> SimConfig {
    let n = servers as f64;
    SimConfig::prototype()
        .to_builder()
        .servers(servers)
        .tick(Seconds::new(60.0))
        .slot_length(Seconds::from_minutes(60.0))
        .budget(BUDGET_PER_SERVER * n)
        .total_capacity(Joules::from_watt_hours(CAPACITY_WH_PER_SERVER * n))
        .battery_strings((servers / 1_000).max(4))
        .build()
        // heb-analyze: allow(HEB003, constants above satisfy the builder for every positive fleet size; zero servers is a caller bug)
        .expect("megafleet sizing must validate")
}

/// One megafleet scenario: `servers` machines running the steady
/// WebSearch day for `hours` under the event driver.
#[must_use]
pub fn megafleet_scenario(servers: usize, hours: f64, seed: u64) -> Scenario {
    Scenario::new(
        format!("megafleet/{servers}"),
        megafleet_config(servers),
        &[Archetype::WebSearch],
        hours,
        seed,
    )
    .with_steady_workload(Ratio::new_clamped(STEADY_LEVEL))
    .with_driver_mode(DriverMode::Event)
}

/// The scale trajectory as a scenario batch, one per entry of
/// `scales`, smallest first.
#[must_use]
pub fn megafleet_scenarios(scales: &[usize], hours: f64, seed: u64) -> Vec<Scenario> {
    scales
        .iter()
        .map(|&servers| megafleet_scenario(servers, hours, seed))
        .collect()
}

/// Runs the megafleet day at every scale in `scales` serially.
#[must_use]
pub fn megafleet_day(scales: &[usize], hours: f64, seed: u64) -> Vec<MegafleetPoint> {
    megafleet_day_with(&SerialRunner, scales, hours, seed)
}

/// [`megafleet_day`] executed by an arbitrary [`ScenarioRunner`].
#[must_use]
pub fn megafleet_day_with(
    runner: &dyn ScenarioRunner,
    scales: &[usize],
    hours: f64,
    seed: u64,
) -> Vec<MegafleetPoint> {
    let batch = megafleet_scenarios(scales, hours, seed);
    scales
        .iter()
        .zip(runner.run_batch(&batch))
        .map(|(&servers, report)| MegafleetPoint { servers, report })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_powersys::RACK_FANOUT;

    #[test]
    fn config_scales_with_the_fleet() {
        let cfg = megafleet_config(10_000);
        assert_eq!(cfg.servers, 10_000);
        assert_eq!(cfg.budget, Watts::new(500_000.0));
        assert_eq!(cfg.battery_strings, 10);
        assert_eq!(cfg.ticks_per_slot(), 60);
        // Small fleets still get a redundant string pool.
        assert_eq!(megafleet_config(256).battery_strings, 4);
    }

    #[test]
    fn steady_day_never_sheds_and_covers_the_horizon() {
        // Multi-rack on purpose: 256 servers span 4 aggregation racks,
        // so this exercises the tree, not the single-rack degeneracy.
        let servers = 4 * RACK_FANOUT;
        let report = megafleet_scenario(servers, 1.0, 9)
            .run()
            .expect("megafleet scenario must run");
        assert_eq!(report.shed_events, 0, "steady fleet under budget");
        assert_eq!(report.server_restarts, 0);
        assert!((report.sim_time.as_hours() - 1.0).abs() < 1e-9);
        // 42 W per steady low-frequency server, served by the utility.
        let mean_watts = report.utility_supplied.get() / report.sim_time.get() / servers as f64;
        assert!(
            (40.0..=60.0).contains(&mean_watts),
            "mean draw {mean_watts} W/server out of the steady band"
        );
    }

    #[test]
    fn event_driver_matches_the_tick_driver_bitwise() {
        let servers = 2 * RACK_FANOUT;
        let event = megafleet_scenario(servers, 1.0, 5)
            .run()
            .expect("event run");
        let tick = megafleet_scenario(servers, 1.0, 5)
            .with_driver_mode(DriverMode::Tick)
            .run()
            .expect("tick run");
        assert_eq!(event, tick);
    }

    #[test]
    fn trajectory_reports_every_scale() {
        let points = megafleet_day(&[64, 128], 0.5, 3);
        assert_eq!(points.len(), 2);
        assert!(points[0].report.utility_supplied < points[1].report.utility_supplied);
        for p in &points {
            assert_eq!(p.report.shed_events, 0);
        }
    }

    #[test]
    fn scenario_hashes_separate_scales() {
        let a = megafleet_scenario(1_000, 24.0, 1);
        let b = megafleet_scenario(10_000, 24.0, 1);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.servers(), 1_000);
    }
}
