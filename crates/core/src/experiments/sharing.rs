//! Pooled vs per-server batteries: the Figure 7(b) critique.
//!
//! Google's design mounts a dedicated battery in every server, so
//! "multiple servers cannot share battery energy with each other to
//! assist peak shaving". This experiment quantifies what sharing is
//! worth: the same total battery capacity either pooled behind the
//! relay fabric or split into per-server slices, hit by an *uneven*
//! load (some servers bursting, others idle). The pooled bank rides
//! out hot spots; the dedicated slices strand the idle servers'
//! energy.

use heb_esd::{Bank, LeadAcidBattery, LeadAcidParams, StorageDevice};
use heb_units::{AmpHours, Joules, Ratio, Seconds, Volts, Watts};

/// Outcome of one sharing-comparison run.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingResult {
    /// Ride-through of the pooled (shared) bank.
    pub pooled_runtime: Seconds,
    /// Ride-through with per-server dedicated batteries.
    pub dedicated_runtime: Seconds,
    /// Energy stranded in the dedicated case (left in idle servers'
    /// batteries when a hot server died).
    pub stranded: Joules,
}

impl SharingResult {
    /// How much longer the pooled design lasted. Both designs failing
    /// instantly counts as parity (1.0).
    #[must_use]
    pub fn sharing_gain(&self) -> f64 {
        if self.dedicated_runtime.get() <= 0.0 {
            if self.pooled_runtime.get() <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.pooled_runtime.get() / self.dedicated_runtime.get()
        }
    }
}

fn battery_with_usable(usable: Joules, dod: Ratio) -> LeadAcidBattery {
    let nominal = Volts::new(24.0);
    let ah = usable.as_watt_hours().get() / (dod.get() * nominal.get());
    LeadAcidBattery::new(LeadAcidParams::with_capacity(AmpHours::new(ah)).with_dod_limit(dod))
}

/// Runs the comparison: `servers` loads, of which `hot` draw
/// `hot_power` each and the rest draw `idle_power`; total battery
/// capacity `total_usable` either pooled or split evenly.
///
/// The run ends when any load can no longer be served (dedicated: its
/// own battery quits; pooled: the bank quits).
///
/// # Panics
///
/// Panics if `hot > servers` or any power/capacity is non-positive.
#[must_use]
pub fn sharing_comparison(
    servers: usize,
    hot: usize,
    hot_power: Watts,
    idle_power: Watts,
    total_usable: Joules,
) -> SharingResult {
    assert!(servers > 0 && hot <= servers, "invalid server split");
    assert!(
        hot_power.get() > 0.0 && idle_power.get() >= 0.0,
        "powers must be positive"
    );
    assert!(total_usable.get() > 0.0, "capacity must be positive");
    let dod = Ratio::new_clamped(0.8);
    let dt = Seconds::new(1.0);
    let cap = 7 * 24 * 3600;

    // Pooled: one bank serves the aggregate.
    let mut pooled = Bank::new(vec![battery_with_usable(total_usable, dod)]);
    let total_load = hot_power * hot as f64 + idle_power * (servers - hot) as f64;
    let mut pooled_runtime = Seconds::zero();
    for _ in 0..cap {
        let r = pooled.discharge(total_load, dt);
        if r.delivered.get() < 0.99 * total_load.get() * dt.get() {
            break;
        }
        pooled_runtime += dt;
    }

    // Dedicated: per-server slices; the run ends when the first *hot*
    // server's battery quits (idle servers' batteries outlive it).
    let slice = Joules::new(total_usable.get() / servers as f64);
    let mut hot_battery = battery_with_usable(slice, dod);
    let mut idle_battery = battery_with_usable(slice, dod);
    let mut dedicated_runtime = Seconds::zero();
    for _ in 0..cap {
        let r = hot_battery.discharge(hot_power, dt);
        let _ = idle_battery.discharge(idle_power, dt);
        if r.delivered.get() < 0.99 * hot_power.get() * dt.get() {
            break;
        }
        dedicated_runtime += dt;
    }
    // Energy left in the (servers − hot) idle slices when the hot
    // server died, plus the hot slices' kinetic remainder.
    let stranded = Joules::new(
        idle_battery.available_energy().get() * (servers - hot) as f64
            + hot_battery.available_energy().get() * hot as f64,
    );

    SharingResult {
        pooled_runtime,
        dedicated_runtime,
        stranded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> SharingResult {
        // 6 servers, one bursting at 70 W, the rest idle at 32 W, on a
        // shared-vs-split 150 Wh battery budget (the prototype scale).
        sharing_comparison(
            6,
            1,
            Watts::new(70.0),
            Watts::new(32.0),
            Joules::from_watt_hours(150.0),
        )
    }

    #[test]
    fn pooling_extends_ride_through() {
        let r = run();
        assert!(
            r.sharing_gain() > 1.2,
            "pooling should beat dedicated slices: {:.0}s vs {:.0}s",
            r.pooled_runtime.get(),
            r.dedicated_runtime.get()
        );
    }

    #[test]
    fn dedicated_design_strands_energy() {
        let r = run();
        assert!(
            r.stranded.as_watt_hours().get() > 30.0,
            "idle servers' batteries should hold stranded energy, got {:.1} Wh",
            r.stranded.as_watt_hours().get()
        );
    }

    #[test]
    fn even_loads_show_little_sharing_benefit() {
        // With uniform loads the two designs converge (the sharing win
        // is specifically about load imbalance).
        let r = sharing_comparison(
            4,
            4,
            Watts::new(30.0),
            Watts::new(30.0),
            Joules::from_watt_hours(60.0),
        );
        assert!(
            (0.8..1.25).contains(&r.sharing_gain()),
            "uniform load gain should be near 1, got {}",
            r.sharing_gain()
        );
    }

    #[test]
    #[should_panic(expected = "invalid server split")]
    fn too_many_hot_servers_panics() {
        let _ = sharing_comparison(
            2,
            3,
            Watts::new(70.0),
            Watts::new(30.0),
            Joules::from_watt_hours(10.0),
        );
    }
}
