//! Figures 13–14: capacity planning for the hybrid buffers.
//!
//! Figure 13 holds total capacity constant and sweeps the SC:battery
//! ratio; Figure 14 holds the ratio at 3:7 and grows the installed
//! capacity by relaxing the depth-of-discharge limit (40 % → 80 %).
//! Both run the `HEB-D` scheme on a mixed rack and report all four
//! metrics, which the bench harness normalises to the 3:7 / smallest-
//! capacity baselines as the paper's figures do.

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::policy::PolicyKind;
use crate::sim::{PowerMode, Simulation};
use heb_units::{Joules, Ratio, Watts};
use heb_workload::{Archetype, SolarTraceBuilder};

/// One configuration's outcome in a capacity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Human-readable configuration label ("3:7", "DoD 60 %", …).
    pub label: String,
    /// SC share of total capacity.
    pub sc_fraction: Ratio,
    /// Total usable capacity simulated.
    pub total_capacity: Joules,
    /// The peak-shaving run's report.
    pub report: SimReport,
    /// The solar run's report (REU).
    pub solar: SimReport,
}

impl CapacityPoint {
    /// Convenience: the four paper metrics as
    /// `(efficiency, downtime_s, battery_life_years, reu)`.
    #[must_use]
    pub fn metrics(&self) -> (f64, f64, f64, f64) {
        (
            self.report.energy_efficiency().get(),
            self.report.server_downtime.get(),
            self.report
                .battery_lifetime_years()
                .unwrap_or(f64::INFINITY),
            self.solar.reu().get(),
        )
    }
}

/// The mixed rack both sweeps run (both peak classes represented).
const MIX: [Archetype; 6] = [
    Archetype::WebSearch,
    Archetype::Terasort,
    Archetype::PageRank,
    Archetype::Dfsioe,
    Archetype::MediaStreaming,
    Archetype::Hivebench,
];

fn run_point(config: SimConfig, hours: f64, solar_hours: f64, seed: u64) -> (SimReport, SimReport) {
    let mut sim = Simulation::new(config.clone(), &MIX, seed);
    let report = sim.run_for_hours(hours);
    let trace = SolarTraceBuilder::new(Watts::new(500.0))
        .seed(seed)
        .days(1.0)
        .clouds_per_day(80.0)
        .mean_cloud_secs(360.0)
        .build();
    // Rotate to sunrise so short solar runs see generation.
    let samples = trace.samples();
    let rotated: Vec<_> = samples[6 * 3600..]
        .iter()
        .chain(&samples[..6 * 3600])
        .copied()
        .collect();
    let solar_trace = heb_workload::PowerTrace::new(rotated, trace.dt());
    let mut solar_sim =
        Simulation::new(config, &MIX, seed).with_mode(PowerMode::Solar(solar_trace));
    solar_sim.set_buffer_soc(Ratio::new_clamped(0.15));
    let solar = solar_sim.run_for_hours(solar_hours);
    (report, solar)
}

/// Figure 13: constant total capacity, SC:battery ratio sweep. The
/// ratios are given as SC tenths (`&[1, 2, 3, 4, 5]` = 1:9 … 5:5).
#[must_use]
pub fn capacity_ratio_sweep(
    base: &SimConfig,
    sc_tenths: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    sc_tenths
        .iter()
        .map(|&tenths| {
            let sc_fraction = Ratio::new_clamped(f64::from(tenths) / 10.0);
            let config = base
                .clone()
                .with_policy(PolicyKind::HebD)
                .with_sc_fraction(sc_fraction);
            let (report, solar) = run_point(config, hours, solar_hours, seed);
            CapacityPoint {
                label: format!("{tenths}:{}", 10 - tenths),
                sc_fraction,
                total_capacity: base.total_capacity,
                report,
                solar,
            }
        })
        .collect()
}

/// Figure 14: constant 3:7 ratio, capacity grown by relaxing DoD. The
/// same physical devices are managed at each DoD in `dod_percents`
/// (e.g. `&[40, 50, 60, 70, 80]`), so usable capacity scales with DoD.
#[must_use]
pub fn capacity_growth_sweep(
    base: &SimConfig,
    dod_percents: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    // The base config's capacity is defined at its own DoD; hold the
    // *physical* size fixed and scale usable energy with DoD.
    let physical = base.total_capacity.get() / base.dod_limit.get();
    dod_percents
        .iter()
        .map(|&percent| {
            let dod = Ratio::new_clamped(f64::from(percent) / 100.0);
            let usable = Joules::new(physical * dod.get());
            let mut config = base
                .clone()
                .with_policy(PolicyKind::HebD)
                .with_total_capacity(usable);
            config.dod_limit = dod;
            let (report, solar) = run_point(config, hours, solar_hours, seed);
            CapacityPoint {
                label: format!("DoD {percent} %"),
                sc_fraction: base.sc_fraction,
                total_capacity: usable,
                report,
                solar,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_sweep_produces_labels_and_fractions() {
        let base = SimConfig::prototype().with_budget(Watts::new(250.0));
        let points = capacity_ratio_sweep(&base, &[1, 3, 5], 0.2, 1.0, 5);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].label, "1:9");
        assert_eq!(points[2].label, "5:5");
        assert!((points[1].sc_fraction.get() - 0.3).abs() < 1e-12);
        for p in &points {
            let (eff, _, life, reu) = p.metrics();
            assert!(eff > 0.0 && eff <= 1.0);
            assert!(life > 0.0);
            assert!(reu > 0.0 && reu <= 1.0);
        }
    }

    #[test]
    fn more_sc_extends_battery_life() {
        // The paper's strongest Figure 13 trend: a bigger SC share means
        // less battery wear per simulated hour (short runs compare wear,
        // which the calendar-life cap cannot saturate).
        // A tight budget keeps a standing mismatch so the battery pool
        // is guaranteed to see real discharge in a short run.
        let base = SimConfig::prototype().with_budget(Watts::new(225.0));
        let points = capacity_ratio_sweep(&base, &[1, 5], 1.0, 1.0, 7);
        let wear = |p: &CapacityPoint| p.report.battery_life_used.get();
        assert!(
            wear(&points[0]) > 0.0,
            "the 1:9 battery must see some use for the comparison to mean anything"
        );
        assert!(
            wear(&points[1]) < wear(&points[0]),
            "5:5 wear {} should undercut 1:9 wear {}",
            wear(&points[1]),
            wear(&points[0])
        );
    }

    #[test]
    fn growth_sweep_scales_usable_capacity() {
        let base = SimConfig::prototype();
        let points = capacity_growth_sweep(&base, &[40, 80], 0.2, 1.0, 5);
        assert_eq!(points.len(), 2);
        assert!(
            (points[1].total_capacity.get() / points[0].total_capacity.get() - 2.0).abs() < 1e-9,
            "80 % DoD should double 40 % DoD usable energy"
        );
        assert_eq!(points[0].label, "DoD 40 %");
    }
}
