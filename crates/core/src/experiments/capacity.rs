//! Figures 13–14: capacity planning for the hybrid buffers.
//!
//! Figure 13 holds total capacity constant and sweeps the SC:battery
//! ratio; Figure 14 holds the ratio at 3:7 and grows the installed
//! capacity by relaxing the depth-of-discharge limit (40 % → 80 %).
//! Both run the `HEB-D` scheme on a mixed rack and report all four
//! metrics, which the bench harness normalises to the 3:7 / smallest-
//! capacity baselines as the paper's figures do.

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::policy::PolicyKind;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use crate::sim::PowerMode;
use heb_units::{Joules, Ratio, Watts};
use heb_workload::{Archetype, SolarTraceBuilder};

/// One configuration's outcome in a capacity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Human-readable configuration label ("3:7", "DoD 60 %", …).
    pub label: String,
    /// SC share of total capacity.
    pub sc_fraction: Ratio,
    /// Total usable capacity simulated.
    pub total_capacity: Joules,
    /// The peak-shaving run's report.
    pub report: SimReport,
    /// The solar run's report (REU).
    pub solar: SimReport,
}

impl CapacityPoint {
    /// Convenience: the four paper metrics as
    /// `(efficiency, downtime_s, battery_life_years, reu)`.
    #[must_use]
    pub fn metrics(&self) -> (f64, f64, f64, f64) {
        (
            self.report.energy_efficiency().get(),
            self.report.server_downtime.get(),
            self.report
                .battery_lifetime_years()
                .unwrap_or(f64::INFINITY),
            self.solar.reu().get(),
        )
    }
}

/// The mixed rack both sweeps run (both peak classes represented).
const MIX: [Archetype; 6] = [
    Archetype::WebSearch,
    Archetype::Terasort,
    Archetype::PageRank,
    Archetype::Dfsioe,
    Archetype::MediaStreaming,
    Archetype::Hivebench,
];

/// A sunrise-rotated solar trace so short solar runs see generation.
fn sunrise_solar(seed: u64) -> heb_workload::PowerTrace {
    let trace = SolarTraceBuilder::new(Watts::new(500.0))
        .seed(seed)
        .days(1.0)
        .clouds_per_day(80.0)
        .mean_cloud_secs(360.0)
        .build();
    let samples = trace.samples();
    let rotated: Vec<_> = samples[6 * 3600..]
        .iter()
        .chain(&samples[..6 * 3600])
        .copied()
        .collect();
    heb_workload::PowerTrace::new(rotated, trace.dt())
}

/// The two scenarios of one capacity point: the peak-shaving run and
/// the solar (REU) run.
fn point_scenarios(
    label: &str,
    config: SimConfig,
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> [Scenario; 2] {
    [
        Scenario::new(format!("{label}/shave"), config.clone(), &MIX, hours, seed),
        Scenario::new(format!("{label}/solar"), config, &MIX, solar_hours, seed)
            .with_mode(PowerMode::Solar(sunrise_solar(seed)))
            .with_initial_soc(Ratio::new_clamped(0.15)),
    ]
}

/// The sweep skeleton both figures share: per-point labels plus the
/// configured `(sc_fraction, total_capacity, config)` triples.
type PointSpec = (String, Ratio, Joules, SimConfig);

fn ratio_point_specs(base: &SimConfig, sc_tenths: &[u32]) -> Vec<PointSpec> {
    sc_tenths
        .iter()
        .map(|&tenths| {
            let sc_fraction = Ratio::new_clamped(f64::from(tenths) / 10.0);
            let config = base
                .clone()
                .with_policy(PolicyKind::HebD)
                .with_sc_fraction(sc_fraction);
            (
                format!("{tenths}:{}", 10 - tenths),
                sc_fraction,
                base.total_capacity,
                config,
            )
        })
        .collect()
}

fn growth_point_specs(base: &SimConfig, dod_percents: &[u32]) -> Vec<PointSpec> {
    // The base config's capacity is defined at its own DoD; hold the
    // *physical* size fixed and scale usable energy with DoD.
    let physical = base.total_capacity.get() / base.dod_limit.get();
    dod_percents
        .iter()
        .map(|&percent| {
            let dod = Ratio::new_clamped(f64::from(percent) / 100.0);
            let usable = Joules::new(physical * dod.get());
            let mut config = base
                .clone()
                .with_policy(PolicyKind::HebD)
                .with_total_capacity(usable);
            config.dod_limit = dod;
            (format!("DoD {percent} %"), base.sc_fraction, usable, config)
        })
        .collect()
}

fn specs_to_scenarios(
    prefix: &str,
    specs: &[PointSpec],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<Scenario> {
    specs
        .iter()
        .flat_map(|(label, _, _, config)| {
            point_scenarios(
                &format!("{prefix}/{label}"),
                config.clone(),
                hours,
                solar_hours,
                seed,
            )
        })
        .collect()
}

fn assemble_points(specs: Vec<PointSpec>, reports: Vec<SimReport>) -> Vec<CapacityPoint> {
    assert_eq!(
        reports.len(),
        specs.len() * 2,
        "capacity batches carry two reports per point"
    );
    let mut reports = reports.into_iter();
    specs
        .into_iter()
        .map(|(label, sc_fraction, total_capacity, _)| {
            let report = super::take_report(&mut reports, "shave report");
            let solar = super::take_report(&mut reports, "solar report");
            CapacityPoint {
                label,
                sc_fraction,
                total_capacity,
                report,
                solar,
            }
        })
        .collect()
}

/// Figure 13 as a scenario batch: two scenarios (peak-shave + solar)
/// per ratio, in `sc_tenths` order. Assemble the runner's reports with
/// [`capacity_ratio_sweep_with`] or by zipping pairs yourself.
#[must_use]
pub fn capacity_ratio_scenarios(
    base: &SimConfig,
    sc_tenths: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<Scenario> {
    specs_to_scenarios(
        "capacity/ratio",
        &ratio_point_specs(base, sc_tenths),
        hours,
        solar_hours,
        seed,
    )
}

/// Figure 14 as a scenario batch: two scenarios per DoD point, in
/// `dod_percents` order.
#[must_use]
pub fn capacity_growth_scenarios(
    base: &SimConfig,
    dod_percents: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<Scenario> {
    specs_to_scenarios(
        "capacity/growth",
        &growth_point_specs(base, dod_percents),
        hours,
        solar_hours,
        seed,
    )
}

/// Figure 13: constant total capacity, SC:battery ratio sweep. The
/// ratios are given as SC tenths (`&[1, 2, 3, 4, 5]` = 1:9 … 5:5).
#[must_use]
pub fn capacity_ratio_sweep(
    base: &SimConfig,
    sc_tenths: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    capacity_ratio_sweep_with(&SerialRunner, base, sc_tenths, hours, solar_hours, seed)
}

/// [`capacity_ratio_sweep`] executed by an arbitrary
/// [`ScenarioRunner`].
#[must_use]
pub fn capacity_ratio_sweep_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    sc_tenths: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    let specs = ratio_point_specs(base, sc_tenths);
    let batch = specs_to_scenarios("capacity/ratio", &specs, hours, solar_hours, seed);
    assemble_points(specs, runner.run_batch(&batch))
}

/// Figure 14: constant 3:7 ratio, capacity grown by relaxing DoD. The
/// same physical devices are managed at each DoD in `dod_percents`
/// (e.g. `&[40, 50, 60, 70, 80]`), so usable capacity scales with DoD.
#[must_use]
pub fn capacity_growth_sweep(
    base: &SimConfig,
    dod_percents: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    capacity_growth_sweep_with(&SerialRunner, base, dod_percents, hours, solar_hours, seed)
}

/// [`capacity_growth_sweep`] executed by an arbitrary
/// [`ScenarioRunner`].
#[must_use]
pub fn capacity_growth_sweep_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    dod_percents: &[u32],
    hours: f64,
    solar_hours: f64,
    seed: u64,
) -> Vec<CapacityPoint> {
    let specs = growth_point_specs(base, dod_percents);
    let batch = specs_to_scenarios("capacity/growth", &specs, hours, solar_hours, seed);
    assemble_points(specs, runner.run_batch(&batch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_sweep_produces_labels_and_fractions() {
        let base = SimConfig::prototype().with_budget(Watts::new(250.0));
        let points = capacity_ratio_sweep(&base, &[1, 3, 5], 0.2, 1.0, 5);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].label, "1:9");
        assert_eq!(points[2].label, "5:5");
        assert!((points[1].sc_fraction.get() - 0.3).abs() < 1e-12);
        for p in &points {
            let (eff, _, life, reu) = p.metrics();
            assert!(eff > 0.0 && eff <= 1.0);
            assert!(life > 0.0);
            assert!(reu > 0.0 && reu <= 1.0);
        }
    }

    #[test]
    fn more_sc_extends_battery_life() {
        // The paper's strongest Figure 13 trend: a bigger SC share means
        // less battery wear per simulated hour (short runs compare wear,
        // which the calendar-life cap cannot saturate).
        // A tight budget keeps a standing mismatch so the battery pool
        // is guaranteed to see real discharge in a short run.
        let base = SimConfig::prototype().with_budget(Watts::new(225.0));
        let points = capacity_ratio_sweep(&base, &[1, 5], 1.0, 1.0, 7);
        let wear = |p: &CapacityPoint| p.report.battery_life_used.get();
        assert!(
            wear(&points[0]) > 0.0,
            "the 1:9 battery must see some use for the comparison to mean anything"
        );
        assert!(
            wear(&points[1]) < wear(&points[0]),
            "5:5 wear {} should undercut 1:9 wear {}",
            wear(&points[1]),
            wear(&points[0])
        );
    }

    #[test]
    fn growth_sweep_scales_usable_capacity() {
        let base = SimConfig::prototype();
        let points = capacity_growth_sweep(&base, &[40, 80], 0.2, 1.0, 5);
        assert_eq!(points.len(), 2);
        assert!(
            (points[1].total_capacity.get() / points[0].total_capacity.get() - 2.0).abs() < 1e-9,
            "80 % DoD should double 40 % DoD usable energy"
        );
        assert_eq!(points[0].label, "DoD 40 %");
    }
}
