//! Extension experiment: fault-intensity sweep (the chaos harness).
//!
//! The paper's evaluation assumes healthy infrastructure; this
//! experiment asks how each power-management scheme degrades when it is
//! not. A seeded stochastic [`FaultSchedule`] is generated per intensity
//! level — the same schedule for every policy, so schemes face identical
//! storms — and each scheme's resilience metrics (ride-through, unserved
//! energy during faults, recovery latency, downtime) are collected
//! alongside the usual efficiency headline.

use crate::config::SimConfig;
use crate::faults::{FaultLedger, FaultProfile, FaultSchedule};
use crate::metrics::SimReport;
use crate::policy::PolicyKind;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use heb_units::{Ratio, Seconds};
use heb_workload::Archetype;

/// One (policy, intensity) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// The scheme under test.
    pub policy: PolicyKind,
    /// Fault-rate multiplier applied to the nominal profile.
    pub intensity: f64,
    /// Events the schedule injected at this intensity.
    pub events: usize,
    /// Energy efficiency achieved under the storm.
    pub efficiency: Ratio,
    /// Aggregated server downtime.
    pub downtime: Seconds,
    /// The full fault audit trail.
    pub ledger: FaultLedger,
    /// The full report (for deeper analysis).
    pub report: SimReport,
}

/// The storm every policy faces at one intensity level.
fn storm_for(base: &SimConfig, hours: f64, intensity: f64, seed: u64) -> FaultSchedule {
    let profile =
        FaultProfile::nominal()
            .scaled(intensity)
            .sized(base.servers, base.battery_strings, 1);
    FaultSchedule::stochastic(seed, Seconds::from_hours(hours), &profile)
}

/// The fault sweep as a scenario batch: intensities in order, and for
/// each intensity one scenario per scheme in [`PolicyKind::ALL`] order,
/// all riding the same seeded storm.
#[must_use]
pub fn fault_sweep_scenarios(
    base: &SimConfig,
    hours: f64,
    intensities: &[f64],
    seed: u64,
) -> Vec<Scenario> {
    let mix = [Archetype::WebSearch, Archetype::Terasort];
    let mut batch = Vec::with_capacity(intensities.len() * PolicyKind::ALL.len());
    for &intensity in intensities {
        let schedule = storm_for(base, hours, intensity, seed);
        for &policy in &PolicyKind::ALL {
            batch.push(
                Scenario::new(
                    format!("faults/x{intensity}/{}", policy.name()),
                    base.clone().with_policy(policy),
                    &mix,
                    hours,
                    seed,
                )
                .with_faults(schedule.clone()),
            );
        }
    }
    batch
}

/// Sweeps fault intensity × policy: for each intensity, a stochastic
/// schedule is drawn once (seeded, shared across policies) from
/// [`FaultProfile::nominal`] scaled by that intensity and sized to the
/// config's plant, then every scheme rides the same storm for `hours`.
///
/// Intensity 0 is the healthy baseline; 1 is the nominal pessimistic
/// profile; higher values compress MTBFs proportionally.
#[must_use]
pub fn fault_intensity_sweep(
    base: &SimConfig,
    hours: f64,
    intensities: &[f64],
    seed: u64,
) -> Vec<FaultSweepPoint> {
    fault_intensity_sweep_with(&SerialRunner, base, hours, intensities, seed)
}

/// [`fault_intensity_sweep`] executed by an arbitrary
/// [`ScenarioRunner`].
#[must_use]
pub fn fault_intensity_sweep_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    hours: f64,
    intensities: &[f64],
    seed: u64,
) -> Vec<FaultSweepPoint> {
    let batch = fault_sweep_scenarios(base, hours, intensities, seed);
    let mut reports = runner.run_batch(&batch).into_iter();
    let mut points = Vec::with_capacity(intensities.len() * PolicyKind::ALL.len());
    for &intensity in intensities {
        let events = storm_for(base, hours, intensity, seed).len();
        for &policy in &PolicyKind::ALL {
            let report = super::take_report(&mut reports, "sweep-cell report");
            points.push(FaultSweepPoint {
                policy,
                intensity,
                events,
                efficiency: report.energy_efficiency(),
                downtime: report.server_downtime,
                ledger: report.faults.clone(),
                report,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(intensities: &[f64]) -> Vec<FaultSweepPoint> {
        let base = SimConfig::prototype().with_battery_strings(3);
        fault_intensity_sweep(&base, 1.0, intensities, 17)
    }

    #[test]
    fn covers_all_policies_per_intensity() {
        let points = sweep(&[0.0, 2.0]);
        assert_eq!(points.len(), 12);
        for p in &points {
            assert!(p.efficiency.get().is_finite());
            assert!(p.downtime.get().is_finite());
        }
    }

    #[test]
    fn zero_intensity_is_the_healthy_baseline() {
        let points = sweep(&[0.0]);
        for p in points {
            assert_eq!(p.events, 0);
            assert!(!p.ledger.any(), "no faults at intensity 0");
        }
    }

    #[test]
    fn storms_inject_and_are_shared_across_policies() {
        let points = sweep(&[4.0]);
        let events = points[0].events;
        assert!(events > 0, "4x nominal over an hour must inject faults");
        for p in &points {
            assert_eq!(p.events, events, "every policy must face the same schedule");
            assert!(p.ledger.events_applied > 0);
        }
    }
}
