//! Figure 3: round-trip efficiency characterisation.
//!
//! Reproduces the test-bed measurements of Section 3.1: charge a device
//! fully, discharge it into a constant server load, and compare
//! delivered energy against charged energy —
//!
//! * super-capacitors across load levels (90–95 %),
//! * lead-acid one-shot discharge (falling with load),
//! * lead-acid with rest-and-recover cycles (the +6–24 % recovery),
//! * and the server on/off energy waste that eats about half of what
//!   recovery recovers.

use heb_esd::{LeadAcidBattery, StorageDevice, SuperCapacitor};
use heb_units::{Joules, Ratio, Seconds, Watts};

/// The Figure 3 measurements for one load level (server count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyResult {
    /// Number of 70 W servers in the load.
    pub servers: usize,
    /// SC round-trip efficiency at this load.
    pub sc_efficiency: Ratio,
    /// Battery one-shot round-trip efficiency at this load.
    pub battery_one_shot: Ratio,
    /// Battery efficiency when allowed rest/recovery cycles.
    pub battery_with_recovery: Ratio,
    /// Fraction of the recovery gain that server off/on cycling burns.
    pub on_off_waste_fraction: Ratio,
}

const TICK: Seconds = Seconds::new(1.0);

/// Charges a device fully from `soc = 0`, returning energy drawn. Stops
/// once acceptance falls to a trickle (the absorption-phase tail adds
/// negligible charge but would otherwise run forever).
fn charge_fully<D: StorageDevice>(device: &mut D, power: Watts) -> Joules {
    let mut drawn = Joules::zero();
    for _ in 0..500_000 {
        let r = device.charge(power, TICK);
        if r.is_empty() || r.drawn.get() < 0.5 {
            break;
        }
        drawn += r.drawn;
    }
    drawn
}

/// Discharges at constant power until the device cannot sustain at
/// least half the load, returning energy delivered.
fn discharge_one_shot<D: StorageDevice>(device: &mut D, power: Watts) -> Joules {
    let mut delivered = Joules::zero();
    for _ in 0..500_000 {
        let r = device.discharge(power, TICK);
        delivered += r.delivered;
        if r.delivered.get() < 0.5 * power.get() * TICK.get() {
            break;
        }
    }
    delivered
}

/// Discharge with recovery: when the device sags below half load, rest
/// it for `rest` and try again, up to `cycles` rests. Returns energy
/// delivered (excluding any notion of load interruption cost).
fn discharge_with_recovery<D: StorageDevice>(
    device: &mut D,
    power: Watts,
    rest: Seconds,
    cycles: usize,
) -> Joules {
    let mut delivered = Joules::zero();
    for _ in 0..=cycles {
        delivered += discharge_one_shot(device, power);
        device.idle(rest);
    }
    delivered
}

/// Runs the Figure 3 characterisation for the given server counts
/// (the paper uses 1, 2, and 4).
#[must_use]
pub fn efficiency_characterization(server_counts: &[usize]) -> Vec<EfficiencyResult> {
    server_counts
        .iter()
        .map(|&servers| {
            let load = Watts::new(70.0 * servers.max(1) as f64);

            // Super-capacitor round trip.
            let mut sc = SuperCapacitor::prototype_module();
            sc.set_soc(Ratio::ZERO);
            let sc_in = charge_fully(&mut sc, Watts::new(150.0));
            let sc_out = discharge_one_shot(&mut sc, load);
            let sc_efficiency = Ratio::new_clamped(sc_out / sc_in);

            // Battery one-shot round trip (charge at the C-rate cap).
            let mut ba = LeadAcidBattery::prototype_string();
            ba.set_soc(Ratio::ZERO);
            let ba_in = charge_fully(&mut ba, Watts::new(60.0));
            let mut ba_recover = ba.clone();
            let ba_out = discharge_one_shot(&mut ba, load);
            let battery_one_shot = Ratio::new_clamped(ba_out / ba_in);

            // Battery with rest/recovery cycles.
            let ba_out_rec =
                discharge_with_recovery(&mut ba_recover, load, Seconds::from_hours(1.0), 3);
            let battery_with_recovery = Ratio::new_clamped(ba_out_rec / ba_in);

            // On/off waste: to exploit recovery, the paper's capping
            // shuts servers down across each rest; each off/on cycle
            // costs the restart energy (60 s at peak per server).
            let recovered = (ba_out_rec - ba_out).max(Joules::zero());
            let restart_cost = Watts::new(70.0) * Seconds::new(60.0) * (3.0 * servers as f64);
            let on_off_waste_fraction = if recovered.get() > 0.0 {
                Ratio::new_clamped(restart_cost.get() / recovered.get())
            } else {
                Ratio::ONE
            };

            EfficiencyResult {
                servers,
                sc_efficiency,
                battery_one_shot,
                battery_with_recovery,
                on_off_waste_fraction,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<EfficiencyResult> {
        efficiency_characterization(&[1, 2, 4])
    }

    #[test]
    fn sc_beats_battery_at_every_load() {
        for r in results() {
            assert!(
                r.sc_efficiency > r.battery_one_shot,
                "{} servers: SC {} vs battery {}",
                r.servers,
                r.sc_efficiency,
                r.battery_one_shot
            );
        }
    }

    #[test]
    fn sc_efficiency_in_paper_band() {
        for r in results() {
            let eta = r.sc_efficiency.get();
            assert!((0.85..=0.97).contains(&eta), "SC round trip {eta}");
        }
    }

    #[test]
    fn battery_one_shot_degrades_with_load() {
        let rs = results();
        assert!(
            rs[0].battery_one_shot > rs[2].battery_one_shot,
            "1-server {} should beat 4-server {}",
            rs[0].battery_one_shot,
            rs[2].battery_one_shot
        );
    }

    #[test]
    fn recovery_helps_battery() {
        for r in results() {
            assert!(
                r.battery_with_recovery >= r.battery_one_shot,
                "{} servers: recovery {} < one-shot {}",
                r.servers,
                r.battery_with_recovery,
                r.battery_one_shot
            );
        }
        // At the heaviest load the gain should be clearly visible.
        let heavy = results()[2];
        assert!(
            heavy.battery_with_recovery.get() > heavy.battery_one_shot.get() + 0.02,
            "recovery gain too small at 4 servers"
        );
    }

    #[test]
    fn on_off_waste_is_substantial() {
        // The paper: restart waste eats a large share (≈ half) of the
        // recovered energy at real loads.
        let heavy = results()[2];
        assert!(
            heavy.on_off_waste_fraction.get() > 0.2,
            "waste fraction {}",
            heavy.on_off_waste_fraction
        );
    }
}
