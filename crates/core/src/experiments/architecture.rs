//! Figures 7–8: the energy-storage architecture comparison.
//!
//! The same HEB-D policy, workloads and buffers are run under each of
//! the four delivery architectures — centralized double-converting UPS,
//! distributed DC batteries, and HEB at cluster and rack level — so
//! that the only variable is *where conversion losses sit*. This backs
//! the paper's Section 4 argument for the hybrid topology and the
//! cluster-vs-rack deployment trade-off of Figure 8.

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use heb_powersys::Topology;
use heb_units::Joules;
use heb_workload::Archetype;

/// One architecture's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitecturePoint {
    /// Architecture name ("centralized", "heb-rack", …).
    pub name: &'static str,
    /// The run's report.
    pub report: SimReport,
}

impl ArchitecturePoint {
    /// Total utility energy consumed — the centralized design's
    /// double-conversion tax shows up here.
    #[must_use]
    pub fn utility_energy(&self) -> Joules {
        self.report.utility_supplied
    }
}

/// The four delivery architectures, in figure order.
fn topologies() -> [Topology; 4] {
    [
        Topology::centralized(),
        Topology::distributed(),
        Topology::heb_cluster_level(),
        Topology::heb_rack_level(),
    ]
}

const MIX: [Archetype; 6] = [
    Archetype::WebSearch,
    Archetype::Terasort,
    Archetype::PageRank,
    Archetype::Dfsioe,
    Archetype::MediaStreaming,
    Archetype::Hivebench,
];

/// Figure 7 as a scenario batch: one scenario per architecture, in
/// figure order.
#[must_use]
pub fn architecture_scenarios(base: &SimConfig, hours: f64, seed: u64) -> Vec<Scenario> {
    topologies()
        .into_iter()
        .map(|topology| {
            Scenario::new(
                format!("architecture/{}", topology.name()),
                base.clone().with_topology(topology),
                &MIX,
                hours,
                seed,
            )
        })
        .collect()
}

/// Runs the same configuration under all four architectures.
#[must_use]
pub fn architecture_comparison(base: &SimConfig, hours: f64, seed: u64) -> Vec<ArchitecturePoint> {
    architecture_comparison_with(&SerialRunner, base, hours, seed)
}

/// [`architecture_comparison`] executed by an arbitrary
/// [`ScenarioRunner`].
#[must_use]
pub fn architecture_comparison_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    hours: f64,
    seed: u64,
) -> Vec<ArchitecturePoint> {
    let batch = architecture_scenarios(base, hours, seed);
    let reports = runner.run_batch(&batch);
    assert_eq!(reports.len(), 4, "one report per architecture");
    topologies()
        .into_iter()
        .zip(reports)
        .map(|(topology, report)| ArchitecturePoint {
            name: topology.name(),
            report,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_units::Watts;

    fn run() -> Vec<ArchitecturePoint> {
        let base = SimConfig::prototype().with_budget(Watts::new(255.0));
        architecture_comparison(&base, 1.0, 7)
    }

    #[test]
    fn covers_all_four_architectures() {
        let points = run();
        let names: Vec<_> = points.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["centralized", "distributed", "heb-cluster", "heb-rack"]
        );
    }

    #[test]
    fn centralized_pays_the_double_conversion_tax() {
        // With a generous budget the rack is grid-served; the
        // centralized UPS then pulls 4–10 % more grid energy for the
        // same load, while an under-provisioned run shows the tax as a
        // collapse in scheme efficiency instead.
        let generous = SimConfig::prototype().with_budget(Watts::new(420.0));
        let points = architecture_comparison(&generous, 0.5, 7);
        let utility = |n: &str| {
            points
                .iter()
                .find(|p| p.name == n)
                .unwrap()
                .utility_energy()
                .get()
        };
        let tax = utility("centralized") / utility("heb-rack");
        assert!(
            (1.03..1.15).contains(&tax),
            "centralized should draw 4-10 % more grid energy, got {tax}"
        );

        let stressed = run();
        let eff = |n: &str| {
            stressed
                .iter()
                .find(|p| p.name == n)
                .unwrap()
                .report
                .energy_efficiency()
                .get()
        };
        assert!(
            eff("centralized") + 0.1 < eff("heb-rack"),
            "double conversion must depress efficiency: {} vs {}",
            eff("centralized"),
            eff("heb-rack")
        );
    }

    #[test]
    fn rack_level_heb_beats_cluster_level_on_conversion_loss() {
        let points = run();
        let loss = |n: &str| {
            points
                .iter()
                .find(|p| p.name == n)
                .unwrap()
                .report
                .conversion_loss
                .get()
        };
        assert!(
            loss("heb-rack") < loss("heb-cluster"),
            "rack {} vs cluster {}",
            loss("heb-rack"),
            loss("heb-cluster")
        );
    }

    #[test]
    fn conversion_loss_is_tracked_for_lossy_paths() {
        let points = run();
        for p in &points {
            if p.name == "centralized" {
                assert!(p.report.conversion_loss.get() > 0.0);
            }
        }
    }
}
