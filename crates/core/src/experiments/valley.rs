//! Figure 12(d) at event scale: deep-valley surplus absorption.
//!
//! The paper's renewable-utilisation argument is about *moments*: a
//! deep power valley (generation far above demand) lasts minutes, and
//! whatever the buffers cannot swallow in that window is curtailed
//! forever. A lead-acid pool is pinned at its charge-acceptance limit;
//! a super-capacitor pool takes the whole surplus. This experiment
//! measures REU over exactly one such window — drained buffers, steady
//! demand, a constant generation step above it — which is the regime
//! where the paper's ~81 % REU improvement lives. (The daily-integral
//! REU, also reported by the harness, shows the same ordering with a
//! smaller spread because direct use dominates the denominator.)

use crate::config::SimConfig;
use crate::policy::PolicyKind;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use crate::sim::PowerMode;
use heb_units::{Ratio, Watts};
use heb_workload::{Archetype, PowerTrace};

/// One scheme's REU over a single deep-valley window.
#[derive(Debug, Clone, PartialEq)]
pub struct ValleyPoint {
    /// The scheme.
    pub policy: PolicyKind,
    /// REU over the window.
    pub reu: Ratio,
    /// Energy stored into buffers during the window, in watt-hours.
    pub absorbed_wh: f64,
}

/// The deep-valley test as a scenario batch: one scenario per scheme,
/// in [`PolicyKind::ALL`] order.
#[must_use]
pub fn valley_scenarios(
    base: &SimConfig,
    surplus: Watts,
    minutes: f64,
    seed: u64,
) -> Vec<Scenario> {
    let ticks = (minutes * 60.0).round() as usize;
    // Generation sits `surplus` above the nominal budget; the steady
    // MediaStreaming rack draws just under the budget, so essentially
    // the whole `surplus` is up for absorption.
    let supply = base.budget + surplus;
    let trace = PowerTrace::new(vec![supply; ticks.max(1)], base.tick);
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            Scenario::from_ticks(
                format!("valley/{}", policy.name()),
                base.clone().with_policy(policy),
                &[Archetype::MediaStreaming],
                ticks as u64,
                seed,
            )
            .with_mode(PowerMode::Solar(trace.clone()))
            .with_initial_soc(Ratio::new_clamped(0.05))
        })
        .collect()
}

/// Runs the deep-valley absorption test for every scheme: buffers start
/// drained (5 % SoC), the rack runs a steady low-noise workload, and
/// generation holds `surplus` above the configured budget for
/// `minutes`.
#[must_use]
pub fn deep_valley_absorption(
    base: &SimConfig,
    surplus: Watts,
    minutes: f64,
    seed: u64,
) -> Vec<ValleyPoint> {
    deep_valley_absorption_with(&SerialRunner, base, surplus, minutes, seed)
}

/// [`deep_valley_absorption`] executed by an arbitrary
/// [`ScenarioRunner`].
#[must_use]
pub fn deep_valley_absorption_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    surplus: Watts,
    minutes: f64,
    seed: u64,
) -> Vec<ValleyPoint> {
    let batch = valley_scenarios(base, surplus, minutes, seed);
    PolicyKind::ALL
        .iter()
        .zip(runner.run_batch(&batch))
        .map(|(&policy, report)| ValleyPoint {
            policy,
            reu: report.reu(),
            absorbed_wh: report.charge_stored.as_watt_hours().get(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Vec<ValleyPoint> {
        deep_valley_absorption(&SimConfig::prototype(), Watts::new(230.0), 15.0, 4)
    }

    #[test]
    fn covers_all_schemes() {
        let points = run();
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(p.reu.get() > 0.0 && p.reu.get() <= 1.0);
        }
    }

    #[test]
    fn sc_schemes_absorb_far_more_than_battery_only() {
        let points = run();
        let reu = |p: PolicyKind| points.iter().find(|v| v.policy == p).unwrap().reu.get();
        let improvement =
            (reu(PolicyKind::HebD) - reu(PolicyKind::BaOnly)) / reu(PolicyKind::BaOnly);
        assert!(
            improvement > 0.3,
            "deep-valley REU improvement {improvement} too small (BaOnly {} vs HEB-D {})",
            reu(PolicyKind::BaOnly),
            reu(PolicyKind::HebD)
        );
    }

    #[test]
    fn absorbed_energy_ordering() {
        let points = run();
        let absorbed = |p: PolicyKind| points.iter().find(|v| v.policy == p).unwrap().absorbed_wh;
        assert!(absorbed(PolicyKind::ScFirst) > 2.0 * absorbed(PolicyKind::BaOnly));
        assert!(absorbed(PolicyKind::HebD) > 2.0 * absorbed(PolicyKind::BaOnly));
    }
}
