//! Figure 8(b) vs 8(c): cluster-level vs rack-level HEB deployment.
//!
//! The paper's deployment trade-off: a *cluster-level* hControl shares
//! one buffer group across all racks (energy can follow the load, but
//! the long-haul DC/AC conversion taxes the buffer path), while
//! *rack-level* hControls deliver DC directly but "each group of energy
//! buffers is independent and cannot share their energy". This
//! experiment runs an imbalanced multi-rack datacenter both ways.

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use heb_powersys::Topology;
use heb_units::{Joules, Seconds};
use heb_workload::Archetype;

/// Outcome of the deployment comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentResult {
    /// The cluster-level run (one shared buffer group, inverter on the
    /// buffer path).
    pub cluster_level: SimReport,
    /// The rack-level runs, aggregated (independent buffer groups, DC
    /// delivery).
    pub rack_level: SimReport,
    /// Number of racks simulated.
    pub racks: usize,
}

impl DeploymentResult {
    /// Downtime ratio rack/cluster — above 1 means sharing won.
    #[must_use]
    pub fn sharing_benefit(&self) -> f64 {
        let cluster = self.cluster_level.server_downtime.get();
        let rack = self.rack_level.server_downtime.get();
        if cluster <= 0.0 {
            if rack <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            rack / cluster
        }
    }
}

/// Aggregates per-rack reports into one (summing energies and downtime,
/// keeping the worst battery wear).
fn aggregate(reports: Vec<SimReport>) -> SimReport {
    let mut total = SimReport::default();
    for r in reports {
        total.sim_time = Seconds::new(total.sim_time.get().max(r.sim_time.get()));
        total.buffer_delivered += r.buffer_delivered;
        total.buffer_drained += r.buffer_drained;
        total.discharge_loss += r.discharge_loss;
        total.charge_drawn += r.charge_drawn;
        total.charge_stored += r.charge_stored;
        total.charge_loss += r.charge_loss;
        total.conversion_loss += r.conversion_loss;
        total.utility_supplied += r.utility_supplied;
        total.server_downtime += r.server_downtime;
        total.server_restarts += r.server_restarts;
        total.unserved_energy += r.unserved_energy;
        total.restart_waste += r.restart_waste;
        total.shed_events += r.shed_events;
        total.shed_times.extend(r.shed_times.iter().copied());
        total.slots = total.slots.max(r.slots);
        total.pat_entries += r.pat_entries;
        total.relay_actuations += r.relay_actuations;
        total.battery_life_used = total.battery_life_used.max(r.battery_life_used);
        total.battery_lifetime = match (total.battery_lifetime, r.battery_lifetime) {
            (Some(a), Some(b)) => Some(Seconds::new(a.get().min(b.get()))),
            (a, b) => a.or(b),
        };
    }
    // Racks shed independently; restore onset order across the fleet.
    total.shed_times.sort_by(|a, b| a.get().total_cmp(&b.get()));
    total
}

/// The deployment comparison as a scenario batch: the cluster-level
/// run first, then one rack-level run per rack.
///
/// # Panics
///
/// Panics if `racks` is zero.
#[must_use]
pub fn deployment_scenarios(
    base: &SimConfig,
    racks: usize,
    hours: f64,
    seed: u64,
) -> Vec<Scenario> {
    assert!(racks > 0, "need at least one rack");
    let hot_workloads = [Archetype::Terasort, Archetype::Dfsioe, Archetype::Hivebench];
    let cool_workloads = [Archetype::PageRank, Archetype::MediaStreaming];

    // Cluster-level: one big simulation, shared buffers, inverter on
    // the buffer path. Rack 0's servers get the hot workloads via
    // round-robin ordering: interleave so the first rack-worth of
    // servers are hot.
    let mut cluster_config = base
        .clone()
        .with_topology(Topology::heb_cluster_level())
        .with_budget(base.budget * racks as f64)
        .with_total_capacity(Joules::new(base.total_capacity.get() * racks as f64));
    cluster_config.servers = base.servers * racks;
    let mut cluster_archetypes = Vec::with_capacity(cluster_config.servers);
    for idx in 0..cluster_config.servers {
        if idx < base.servers {
            cluster_archetypes.push(hot_workloads[idx % hot_workloads.len()]);
        } else {
            cluster_archetypes.push(cool_workloads[idx % cool_workloads.len()]);
        }
    }
    let mut batch = Vec::with_capacity(racks + 1);
    batch.push(Scenario::new(
        "deployment/cluster".to_string(),
        cluster_config,
        &cluster_archetypes,
        hours,
        seed,
    ));

    // Rack-level: independent simulations with per-rack buffers and
    // budgets; rack 0 is hot, the rest cool.
    for rack in 0..racks {
        let config = base.clone().with_topology(Topology::heb_rack_level());
        let archetypes: &[Archetype] = if rack == 0 {
            &hot_workloads
        } else {
            &cool_workloads
        };
        batch.push(Scenario::new(
            format!("deployment/rack{rack}"),
            config,
            archetypes,
            hours,
            seed.wrapping_add(rack as u64 * 31),
        ));
    }
    batch
}

/// Runs `racks` racks with *imbalanced* load (rack 0 runs the large-peak
/// group, the rest run light small-peak workloads) under both
/// deployment styles, with equal total buffer capacity and equal total
/// budget.
///
/// # Panics
///
/// Panics if `racks` is zero.
#[must_use]
pub fn deployment_comparison(
    base: &SimConfig,
    racks: usize,
    hours: f64,
    seed: u64,
) -> DeploymentResult {
    deployment_comparison_with(&SerialRunner, base, racks, hours, seed)
}

/// [`deployment_comparison`] executed by an arbitrary
/// [`ScenarioRunner`].
///
/// # Panics
///
/// Panics if `racks` is zero.
#[must_use]
pub fn deployment_comparison_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    racks: usize,
    hours: f64,
    seed: u64,
) -> DeploymentResult {
    let batch = deployment_scenarios(base, racks, hours, seed);
    let mut reports = runner.run_batch(&batch).into_iter();
    let cluster_level = super::take_report(&mut reports, "cluster report");
    let rack_level = aggregate(reports.collect());
    DeploymentResult {
        cluster_level,
        rack_level,
        racks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heb_units::Watts;

    fn run() -> DeploymentResult {
        // Per-rack budget sized so the *aggregate* datacenter balances
        // (cool racks have headroom) while the hot rack alone runs a
        // structural deficit: the regime where sharing matters.
        let base = SimConfig::prototype()
            .with_budget(Watts::new(250.0))
            .with_total_capacity(Joules::from_watt_hours(50.0));
        deployment_comparison(&base, 3, 4.0, 9)
    }

    #[test]
    fn totals_scale_with_racks() {
        let r = run();
        assert_eq!(r.racks, 3);
        assert_eq!(r.cluster_level.sim_time.as_hours(), 4.0);
        assert_eq!(r.rack_level.sim_time.as_hours(), 4.0);
    }

    #[test]
    fn sharing_across_racks_reduces_downtime() {
        // The cluster-level deployment lets cool racks' buffers (and
        // budget headroom) carry the hot rack.
        let r = run();
        assert!(
            r.rack_level.server_downtime.get() > 0.0,
            "the isolated hot rack should starve"
        );
        assert!(
            r.sharing_benefit() > 1.5,
            "sharing should cut downtime: cluster {} s vs rack {} s",
            r.cluster_level.server_downtime.get(),
            r.rack_level.server_downtime.get()
        );
    }

    #[test]
    fn rack_level_conversion_losses_are_lower() {
        // What rack-level does win: the DC buffer path.
        let r = run();
        let cluster_rate =
            r.cluster_level.conversion_loss.get() / r.cluster_level.buffer_drained.get().max(1.0);
        let rack_rate =
            r.rack_level.conversion_loss.get() / r.rack_level.buffer_drained.get().max(1.0);
        assert!(
            rack_rate < cluster_rate,
            "rack-level loss rate {rack_rate} should undercut cluster-level {cluster_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_panics() {
        let _ = deployment_comparison(&SimConfig::prototype(), 0, 1.0, 1);
    }
}
