//! Utility-outage ride-through: the original UPS duty.
//!
//! HEB repurposes backup energy storage for mismatch management, but
//! the buffers remain the rack's blackout insurance ("an additional
//! layer of safety in the event of unexpected power mismatches"). This
//! experiment cuts the feed entirely for a window and measures how long
//! each buffer configuration keeps the rack alive — the worst-case
//! emergency the paper's equal-total-capacity fairness rule is designed
//! around.

use crate::config::SimConfig;
use crate::event::SimClock;
use crate::policy::PolicyKind;
use crate::scenario::{Scenario, ScenarioRunner, SerialRunner};
use crate::sim::PowerMode;
use heb_units::{Seconds, Watts};
use heb_workload::{Archetype, PowerTrace};

/// One scheme's blackout performance.
#[derive(Debug, Clone, PartialEq)]
pub struct OutagePoint {
    /// The scheme.
    pub policy: PolicyKind,
    /// Server-seconds of downtime accumulated during the outage window.
    pub downtime: Seconds,
    /// Time until the *first* server was shed (full window if none).
    pub survival: Seconds,
}

/// The outage experiment as a scenario batch: per scheme, the full
/// warmup-plus-outage run followed by a warmup-only run. The
/// warmup-only run is a bit-identical prefix of the full run
/// (determinism), so subtracting its downtime isolates the outage
/// window without stepping the simulation by hand.
#[must_use]
pub fn outage_scenarios(
    base: &SimConfig,
    warmup_minutes: f64,
    outage_minutes: f64,
    seed: u64,
) -> Vec<Scenario> {
    let warmup_ticks = (warmup_minutes * 60.0).round() as u64;
    let outage_ticks = (outage_minutes * 60.0).round() as u64;
    let mut samples = vec![base.budget; warmup_ticks as usize];
    samples.extend(vec![Watts::zero(); outage_ticks as usize]);
    let trace = PowerTrace::new(samples, base.tick);
    let mix = [Archetype::WebSearch, Archetype::MediaStreaming];

    let mut batch = Vec::with_capacity(PolicyKind::ALL.len() * 2);
    for &policy in &PolicyKind::ALL {
        let full = Scenario::from_ticks(
            format!("outage/{}/full", policy.name()),
            base.clone().with_policy(policy),
            &mix,
            warmup_ticks + outage_ticks,
            seed,
        )
        .with_mode(PowerMode::Solar(trace.clone()));
        let warmup = full
            .clone()
            .relabeled(format!("outage/{}/warmup", policy.name()))
            .with_ticks(warmup_ticks);
        batch.push(full);
        batch.push(warmup);
    }
    batch
}

/// Simulates a total feed outage of `outage_minutes`, preceded by
/// `warmup_minutes` of normal budgeted operation, for every scheme.
#[must_use]
pub fn outage_ride_through(
    base: &SimConfig,
    warmup_minutes: f64,
    outage_minutes: f64,
    seed: u64,
) -> Vec<OutagePoint> {
    outage_ride_through_with(&SerialRunner, base, warmup_minutes, outage_minutes, seed)
}

/// [`outage_ride_through`] executed by an arbitrary [`ScenarioRunner`].
#[must_use]
pub fn outage_ride_through_with(
    runner: &dyn ScenarioRunner,
    base: &SimConfig,
    warmup_minutes: f64,
    outage_minutes: f64,
    seed: u64,
) -> Vec<OutagePoint> {
    let warmup_ticks = (warmup_minutes * 60.0).round() as u64;
    let dt = base.tick.get();
    let warmup_end = SimClock::new(base.tick).time_at(warmup_ticks);
    let batch = outage_scenarios(base, warmup_minutes, outage_minutes, seed);
    let mut reports = runner.run_batch(&batch).into_iter();
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let full = super::take_report(&mut reports, "full-run report");
            let warmup = super::take_report(&mut reports, "warmup-run report");
            // Survival is the outage tick of the first shed at or past
            // the cut, in the original tick-count-as-seconds units.
            let survival = full
                .first_shed_at_or_after(warmup_end)
                .map_or(Seconds::new(outage_minutes * 60.0), |at| {
                    Seconds::new(((at.get() / dt).round() - warmup_ticks as f64).max(0.0))
                });
            OutagePoint {
                policy,
                downtime: full.server_downtime - warmup.server_downtime,
                survival,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Vec<OutagePoint> {
        outage_ride_through(&SimConfig::prototype(), 5.0, 30.0, 13)
    }

    #[test]
    fn covers_all_schemes() {
        let points = run();
        assert_eq!(points.len(), 6);
    }

    #[test]
    fn full_buffers_ride_through_several_minutes() {
        // 150 Wh against a ~230 W idle-ish rack is well over 30 minutes
        // of ride-through; every scheme must survive meaningfully.
        for p in run() {
            assert!(
                p.survival.as_minutes() >= 5.0,
                "{} survived only {:.1} min",
                p.policy,
                p.survival.as_minutes()
            );
        }
    }

    #[test]
    fn tiny_buffers_fail_fast() {
        let base =
            SimConfig::prototype().with_total_capacity(heb_units::Joules::from_watt_hours(10.0));
        let points = outage_ride_through(&base, 2.0, 30.0, 13);
        for p in points {
            assert!(
                p.survival.as_minutes() < 15.0,
                "{} should not survive a blackout on 10 Wh",
                p.policy
            );
            assert!(p.downtime.get() > 0.0);
        }
    }

    #[test]
    fn survival_grows_with_capacity() {
        let small =
            SimConfig::prototype().with_total_capacity(heb_units::Joules::from_watt_hours(30.0));
        let large =
            SimConfig::prototype().with_total_capacity(heb_units::Joules::from_watt_hours(120.0));
        let s = outage_ride_through(&small, 2.0, 40.0, 3);
        let l = outage_ride_through(&large, 2.0, 40.0, 3);
        for (a, b) in s.iter().zip(&l) {
            assert!(
                b.survival >= a.survival,
                "{}: {:.0}s on 120Wh vs {:.0}s on 30Wh",
                a.policy,
                b.survival.get(),
                a.survival.get()
            );
        }
    }
}
