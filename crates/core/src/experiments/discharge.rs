//! Figure 5: discharge voltage curves, SC vs battery.
//!
//! The characterisation behind the architecture choice: under constant
//! server loads, a super-capacitor's terminal voltage declines linearly
//! with charge regardless of load, while a lead-acid battery holds a
//! plateau and then collapses — steeply under heavy load — threatening
//! server uptime.

use heb_esd::{LeadAcidBattery, StorageDevice, SuperCapacitor};
use heb_units::{Seconds, Volts, Watts};

/// One device's voltage-over-time trace at a constant load.
#[derive(Debug, Clone, PartialEq)]
pub struct DischargeCurve {
    /// "supercap" or "battery".
    pub device: &'static str,
    /// Number of 70 W servers in the load.
    pub servers: usize,
    /// Sampling interval of `voltages`.
    pub sample_every: Seconds,
    /// Terminal voltage samples until the device quit.
    pub voltages: Vec<Volts>,
}

impl DischargeCurve {
    /// Total voltage drop over the run.
    #[must_use]
    pub fn total_drop(&self) -> Volts {
        match (self.voltages.first(), self.voltages.last()) {
            (Some(&first), Some(&last)) => first - last,
            _ => Volts::zero(),
        }
    }

    /// Maximum drop between consecutive samples (the "knee" steepness).
    #[must_use]
    pub fn max_step_drop(&self) -> Volts {
        self.voltages
            .windows(2)
            .map(|w| w[0] - w[1])
            .fold(Volts::zero(), Volts::max)
    }

    /// Linearity measure: the RMS deviation of the curve from the
    /// straight line joining its endpoints, normalised by the total
    /// drop. Near zero for an SC; large for a battery knee.
    #[must_use]
    pub fn nonlinearity(&self) -> f64 {
        let n = self.voltages.len();
        if n < 3 {
            return 0.0;
        }
        let first = self.voltages[0].get();
        let last = self.voltages[n - 1].get();
        let drop = (first - last).abs();
        if drop < 1e-9 {
            return 0.0;
        }
        let mse: f64 = self
            .voltages
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let ideal = first + (last - first) * i as f64 / (n - 1) as f64;
                (v.get() - ideal).powi(2)
            })
            .sum::<f64>()
            / n as f64;
        mse.sqrt() / drop
    }
}

/// Discharges a device at `servers × 70 W`, sampling the loaded terminal
/// voltage every `sample_every`, until it can no longer sustain half the
/// load.
fn trace<D: StorageDevice>(
    device: &mut D,
    name: &'static str,
    servers: usize,
    sample_every: Seconds,
) -> DischargeCurve {
    let load = Watts::new(70.0 * servers as f64);
    let tick = Seconds::new(1.0);
    let stride = (sample_every.get() / tick.get()).round().max(1.0) as usize;
    let mut voltages = vec![device.loaded_voltage(load)];
    for step in 1..500_000usize {
        let r = device.discharge(load, tick);
        if r.delivered.get() < 0.5 * load.get() {
            break;
        }
        if step % stride == 0 {
            voltages.push(device.loaded_voltage(load));
        }
    }
    DischargeCurve {
        device: name,
        servers,
        sample_every,
        voltages,
    }
}

/// Produces the Figure 5 curve family for the given server counts.
#[must_use]
pub fn discharge_curves(server_counts: &[usize]) -> Vec<DischargeCurve> {
    let sample_every = Seconds::new(10.0);
    let mut out = Vec::with_capacity(server_counts.len() * 2);
    for &servers in server_counts {
        let mut sc = SuperCapacitor::prototype_module();
        out.push(trace(&mut sc, "supercap", servers, sample_every));
        let mut ba = LeadAcidBattery::prototype_string();
        out.push(trace(&mut ba, "battery", servers, sample_every));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curves() -> Vec<DischargeCurve> {
        discharge_curves(&[1, 4])
    }

    fn find(curves: &[DischargeCurve], device: &str, servers: usize) -> DischargeCurve {
        curves
            .iter()
            .find(|c| c.device == device && c.servers == servers)
            .cloned()
            .expect("curve present")
    }

    #[test]
    fn produces_both_devices_per_load() {
        let cs = curves();
        assert_eq!(cs.len(), 4);
        assert!(!find(&cs, "supercap", 1).voltages.is_empty());
        assert!(!find(&cs, "battery", 4).voltages.is_empty());
    }

    #[test]
    fn sc_curves_are_linear_battery_curves_are_not() {
        let cs = curves();
        let sc = find(&cs, "supercap", 4);
        let ba = find(&cs, "battery", 4);
        assert!(
            sc.nonlinearity() < 0.1,
            "SC nonlinearity {}",
            sc.nonlinearity()
        );
        assert!(
            ba.nonlinearity() > sc.nonlinearity() * 1.5,
            "battery {} vs SC {}",
            ba.nonlinearity(),
            sc.nonlinearity()
        );
    }

    #[test]
    fn sc_linearity_holds_across_loads() {
        // "SC discharging voltage shows linearly declining trend
        // irrespective of power demands."
        let cs = curves();
        for servers in [1, 4] {
            assert!(find(&cs, "supercap", servers).nonlinearity() < 0.1);
        }
    }

    #[test]
    fn battery_knee_steepens_with_load() {
        let cs = curves();
        let light = find(&cs, "battery", 1);
        let heavy = find(&cs, "battery", 4);
        assert!(
            heavy.max_step_drop() >= light.max_step_drop(),
            "heavy-load knee {} should be at least light-load {}",
            heavy.max_step_drop(),
            light.max_step_drop()
        );
    }

    #[test]
    fn voltages_monotonically_decline() {
        for c in curves() {
            for w in c.voltages.windows(2) {
                assert!(
                    w[1] <= w[0] + Volts::new(0.05),
                    "{} should not rise under constant load",
                    c.device
                );
            }
        }
    }
}
