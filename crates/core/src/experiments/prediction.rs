//! Predictor comparison: the motivation behind HEB-F vs HEB-S/D.
//!
//! "The purpose of comparing HEB-D with HEB-F and HEB-S is to
//! understand the impact of reduced prediction error rate on
//! performance improvement" (Section 7). This experiment quantifies
//! that error directly: slot-level peak/valley series are extracted
//! from each workload's demand trace and every predictor forecasts them
//! one slot ahead.

use crate::config::SimConfig;
use heb_forecast::{mae, mape, HoltWinters, LastValue, MovingAverage, Predictor, SeasonalNaive};
use heb_units::Watts;
use heb_workload::Archetype;

/// A scoring closure: runs a predictor over a series and returns the
/// aligned `(forecasts, actuals)` pair.
type Scorer = Box<dyn Fn(&[f64]) -> (Vec<f64>, Vec<f64>)>;

/// One predictor's one-step-ahead accuracy on the slot-peak series.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionPoint {
    /// Predictor name.
    pub predictor: &'static str,
    /// Mean absolute percentage error over all workloads' peak series.
    pub peak_mape: f64,
    /// Mean absolute error in watts over the peak series.
    pub peak_mae: Watts,
}

/// Builds the slot-level peak series for a workload: the per-slot
/// maximum of the rack's demand over `slots` control slots.
fn slot_peaks(config: &SimConfig, workload: Archetype, slots: usize, seed: u64) -> Vec<f64> {
    let ticks_per_slot = config.ticks_per_slot() as usize;
    let mut generators: Vec<_> = (0..config.servers)
        .map(|idx| workload.generator(seed.wrapping_add(idx as u64 * 7919)))
        .collect();
    let per_server_peak = 70.0;
    let per_server_idle = 30.0;
    (0..slots)
        .map(|_| {
            let mut peak = 0.0_f64;
            for _ in 0..ticks_per_slot {
                let demand: f64 = generators
                    .iter_mut()
                    .map(|g| {
                        per_server_idle
                            + (per_server_peak - per_server_idle) * g.next_utilization().get()
                    })
                    .sum();
                peak = peak.max(demand);
            }
            peak
        })
        .collect()
}

/// Scores a predictor one-step-ahead on a series, returning
/// `(forecasts, actuals)` aligned.
fn score<P: Predictor>(mut p: P, series: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut forecasts = Vec::with_capacity(series.len());
    let mut actuals = Vec::with_capacity(series.len());
    for &v in series {
        if p.observations() > 0 {
            forecasts.push(p.forecast(1));
            actuals.push(v);
        }
        p.observe(v);
    }
    (forecasts, actuals)
}

/// Runs the predictor comparison over every workload's slot-peak
/// series.
#[must_use]
pub fn predictor_comparison(config: &SimConfig, slots: usize, seed: u64) -> Vec<PredictionPoint> {
    let series: Vec<Vec<f64>> = Archetype::ALL
        .iter()
        .map(|&w| slot_peaks(config, w, slots, seed))
        .collect();

    let mut out = Vec::new();
    let period = config.forecast_period;
    let runners: Vec<(&'static str, Scorer)> = vec![
        (
            "last-value (HEB-F)",
            Box::new(|s: &[f64]| score(LastValue::new(), s)),
        ),
        (
            "moving-average(6)",
            Box::new(|s: &[f64]| score(MovingAverage::new(6), s)),
        ),
        (
            "seasonal-naive",
            Box::new(move |s: &[f64]| score(SeasonalNaive::new(period), s)),
        ),
        (
            "holt-winters (HEB-D)",
            Box::new(move |s: &[f64]| score(HoltWinters::for_power_series(period), s)),
        ),
    ];
    for (name, runner) in runners {
        let mut all_f = Vec::new();
        let mut all_a = Vec::new();
        for s in &series {
            let (f, a) = runner(s);
            all_f.extend(f);
            all_a.extend(a);
        }
        out.push(PredictionPoint {
            predictor: name,
            peak_mape: mape(&all_f, &all_a),
            peak_mae: Watts::new(mae(&all_f, &all_a)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Vec<PredictionPoint> {
        predictor_comparison(&SimConfig::prototype(), 48, 11)
    }

    #[test]
    fn covers_all_predictors() {
        let points = run();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.peak_mape.is_finite() && p.peak_mape >= 0.0);
            assert!(p.peak_mae.get() >= 0.0);
        }
    }

    #[test]
    fn errors_are_meaningfully_bounded() {
        // Slot peaks sit in the 200-420 W band; any sane predictor's
        // MAE must be far below the band itself.
        for p in run() {
            assert!(
                p.peak_mae.get() < 120.0,
                "{} MAE {} unreasonable",
                p.predictor,
                p.peak_mae
            );
        }
    }

    #[test]
    fn smoothing_beats_raw_parroting() {
        // The structured predictors should not be (much) worse than the
        // naive last-value baseline — the premise of HEB-D over HEB-F.
        let points = run();
        let get = |name: &str| {
            points
                .iter()
                .find(|p| p.predictor.starts_with(name))
                .unwrap()
                .peak_mape
        };
        let naive = get("last-value");
        let hw = get("holt-winters");
        assert!(
            hw <= naive * 1.1,
            "Holt-Winters MAPE {hw} should not trail naive {naive}"
        );
    }
}
