//! Buffer-chemistry comparison: lead-acid vs lithium-ion vs
//! super-capacitor on the same peak-shaving duty cycle.
//!
//! The paper's prototype pairs SCs with lead-acid because that is what
//! UPS rooms contain; Figure 4's catalogue prices the alternatives.
//! This experiment runs each chemistry — at *equal usable energy* —
//! through a repeating shave/recharge duty cycle and reports what the
//! datasheet numbers translate to operationally: coverage (fraction of
//! peak energy actually served), round-trip efficiency, and wear.

use heb_esd::{
    LeadAcidBattery, LeadAcidParams, LiIonParams, LithiumIonBattery, StorageDevice, SuperCapacitor,
    SuperCapacitorParams,
};
use heb_units::{AmpHours, Farads, Joules, Ratio, Seconds, Volts, Watts};

/// One chemistry's outcome on the duty cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct ChemistryPoint {
    /// Chemistry name.
    pub chemistry: &'static str,
    /// Fraction of the total peak energy the device actually served.
    pub coverage: Ratio,
    /// Delivered energy over energy drawn for recharge.
    pub round_trip: Ratio,
    /// Fraction of rated life consumed by the run.
    pub life_used: f64,
}

/// The repeating duty cycle: `peak` for `peak_secs`, then recharge at
/// `recharge` for `valley_secs`, `cycles` times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Power the buffer must shave during the peak phase.
    pub peak: Watts,
    /// Peak duration per cycle.
    pub peak_secs: u32,
    /// Charging power available during the valley phase.
    pub recharge: Watts,
    /// Valley duration per cycle.
    pub valley_secs: u32,
    /// Number of cycles.
    pub cycles: u32,
}

impl DutyCycle {
    /// The prototype's large-peak pattern: 150 W peaks of 6 minutes
    /// with 25 W of recharge headroom over 24-minute valleys, 48 times
    /// (a day's worth of half-hour cycles).
    #[must_use]
    pub fn prototype_day() -> Self {
        Self {
            peak: Watts::new(150.0),
            peak_secs: 360,
            recharge: Watts::new(25.0),
            valley_secs: 1440,
            cycles: 48,
        }
    }
}

fn drive<D: StorageDevice>(device: &mut D, duty: &DutyCycle) -> (Ratio, Ratio) {
    let dt = Seconds::new(1.0);
    let initial = device.available_energy().get();
    let mut needed = 0.0;
    let mut served = 0.0;
    let mut drawn = 0.0;
    for _ in 0..duty.cycles {
        for _ in 0..duty.peak_secs {
            needed += duty.peak.get();
            served += device.discharge(duty.peak, dt).delivered.get();
        }
        for _ in 0..duty.valley_secs {
            drawn += device.charge(duty.recharge, dt).drawn.get();
        }
    }
    let coverage = Ratio::new_clamped(served / needed.max(1.0));
    // Round trip: useful output over every joule that went in — the
    // recharge intake plus whatever the initial store contributed.
    let store_contribution = (initial - device.available_energy().get()).max(0.0);
    let round_trip = Ratio::new_clamped(served / (drawn + store_contribution).max(1.0));
    (coverage, round_trip)
}

/// Runs the duty cycle against each chemistry at `usable` energy.
#[must_use]
pub fn chemistry_comparison(usable: Joules, duty: &DutyCycle) -> Vec<ChemistryPoint> {
    let dod = Ratio::new_clamped(0.8);
    let nominal = Volts::new(24.0);
    let ah = AmpHours::new(usable.as_watt_hours().get() / (dod.get() * nominal.get()));

    let mut out = Vec::new();

    let mut la = LeadAcidBattery::new(LeadAcidParams::with_capacity(ah).with_dod_limit(dod));
    let (coverage, round_trip) = drive(&mut la, duty);
    out.push(ChemistryPoint {
        chemistry: "lead-acid",
        coverage,
        round_trip,
        life_used: la.lifetime().life_used().get(),
    });

    let mut li = LithiumIonBattery::new(LiIonParams::with_capacity(ah));
    let (coverage, round_trip) = drive(&mut li, duty);
    out.push(ChemistryPoint {
        chemistry: "lithium-ion",
        coverage,
        round_trip,
        life_used: li.life_used().get(),
    });

    // SC sized to the same usable energy: ½CV²·window = usable.
    let base = SuperCapacitorParams::prototype_module();
    let v = base.rated_voltage.get();
    let window = 1.0 - (base.min_voltage.get() / v).powi(2);
    let capacitance = 2.0 * usable.get() / (v * v * window);
    let mut sc = SuperCapacitor::new(SuperCapacitorParams {
        capacitance: Farads::new(capacitance),
        ..base
    });
    let (coverage, round_trip) = drive(&mut sc, duty);
    out.push(ChemistryPoint {
        chemistry: "super-capacitor",
        coverage,
        round_trip,
        life_used: sc.life_used().get(),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Vec<ChemistryPoint> {
        chemistry_comparison(Joules::from_watt_hours(105.0), &DutyCycle::prototype_day())
    }

    fn get<'a>(points: &'a [ChemistryPoint], name: &str) -> &'a ChemistryPoint {
        points
            .iter()
            .find(|p| p.chemistry == name)
            .expect("present")
    }

    #[test]
    fn covers_three_chemistries() {
        let points = run();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.coverage.in_unit_interval());
            assert!(p.life_used >= 0.0);
        }
    }

    #[test]
    fn lithium_outperforms_lead_acid_everywhere() {
        let points = run();
        let la = get(&points, "lead-acid");
        let li = get(&points, "lithium-ion");
        assert!(li.coverage >= la.coverage, "coverage");
        assert!(li.round_trip > la.round_trip, "round trip");
        assert!(li.life_used < la.life_used, "wear");
    }

    #[test]
    fn supercap_has_best_round_trip_and_negligible_wear() {
        let points = run();
        let sc = get(&points, "super-capacitor");
        for other in ["lead-acid", "lithium-ion"] {
            assert!(sc.life_used < 0.1 * get(&points, other).life_used.max(1e-9));
        }
        assert!(sc.round_trip.get() > 0.9);
    }

    #[test]
    fn recharge_starvation_limits_all_chemistries() {
        // A duty cycle whose valleys cannot replace the peak energy
        // must eventually starve everyone.
        let harsh = DutyCycle {
            peak: Watts::new(200.0),
            peak_secs: 600,
            recharge: Watts::new(5.0),
            valley_secs: 600,
            cycles: 24,
        };
        for p in chemistry_comparison(Joules::from_watt_hours(60.0), &harsh) {
            assert!(
                p.coverage.get() < 0.5,
                "{} should starve on a 5 W recharge, covered {}",
                p.chemistry,
                p.coverage
            );
        }
    }
}
