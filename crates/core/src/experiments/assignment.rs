//! Figure 6: cluster runtime vs. SC/battery server assignment.
//!
//! The characterisation that motivates load-aware assignment: run the
//! cluster *entirely* from the buffers (no utility) at constant demand,
//! varying how many servers sit on the SC pool vs the battery pool, and
//! measure how long the cluster stays up. The curve has an interior
//! optimum — lean too hard on either pool and runtime collapses.

use crate::buffers::HybridBuffers;
use heb_esd::StorageDevice;
use heb_units::{Joules, Ratio, Seconds, Watts};

/// One point of the Figure 6 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignmentPoint {
    /// Servers assigned to the SC pool (the rest are on batteries).
    pub sc_servers: usize,
    /// Total servers.
    pub total_servers: usize,
    /// How long the cluster ran before either pool (after takeover)
    /// could no longer carry its load.
    pub runtime: Seconds,
}

impl AssignmentPoint {
    /// The assignment expressed as the paper's `R_λ`.
    #[must_use]
    pub fn r_lambda(&self) -> Ratio {
        if self.total_servers == 0 {
            Ratio::ZERO
        } else {
            Ratio::new_clamped(self.sc_servers as f64 / self.total_servers as f64)
        }
    }
}

/// Runs the Figure 6 sweep: for each split of `servers` between the SC
/// pool and the battery pool, discharge both pools at constant
/// per-server power until *both* are exhausted (when one pool empties,
/// its servers fail over to the other pool — the prototype's relay
/// takeover), and record total runtime.
///
/// # Panics
///
/// Panics if `servers` is zero or `per_server` is not positive.
#[must_use]
pub fn assignment_sweep(
    servers: usize,
    per_server: Watts,
    total_capacity: Joules,
    sc_fraction: Ratio,
) -> Vec<AssignmentPoint> {
    assert!(servers > 0, "need at least one server");
    assert!(per_server.get() > 0.0, "per-server power must be positive");
    let dt = Seconds::new(1.0);
    (0..=servers)
        .map(|sc_servers| {
            let mut buffers =
                HybridBuffers::build(total_capacity, sc_fraction, Ratio::new_clamped(0.8));
            // Loads currently assigned to each pool. A pool that fails
            // to fully carry its group hands the *whole group* to the
            // other pool (the prototype's relay takeover) — servers are
            // hard-wired to one source at a time, there is no blending.
            let mut sc_load = per_server * sc_servers as f64;
            let mut ba_load = per_server * (servers - sc_servers) as f64;
            let mut sc_alive = true;
            let mut ba_alive = true;
            let mut runtime = Seconds::zero();
            // Hard cap: no configuration should outlive a week at these
            // loads; prevents infinite loops on trickle discharge.
            for _ in 0..(7 * 24 * 3600) {
                let mut tick_ok = true;
                if sc_load.get() > 0.0 {
                    let r = buffers.sc_pool_mut().discharge(sc_load, dt);
                    if r.delivered.get() < 0.99 * sc_load.get() * dt.get() {
                        sc_alive = false;
                        if ba_alive {
                            ba_load += sc_load;
                            sc_load = Watts::zero();
                        }
                        tick_ok = false;
                    }
                }
                if ba_load.get() > 0.0 {
                    let r = buffers.ba_pool_mut().discharge(ba_load, dt);
                    if r.delivered.get() < 0.99 * ba_load.get() * dt.get() {
                        ba_alive = false;
                        if sc_alive {
                            sc_load += ba_load;
                            ba_load = Watts::zero();
                        }
                        tick_ok = false;
                    }
                }
                if !sc_alive && !ba_alive {
                    break;
                }
                if tick_ok {
                    runtime += dt;
                }
            }
            AssignmentPoint {
                sc_servers,
                total_servers: servers,
                runtime,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<AssignmentPoint> {
        assignment_sweep(
            4,
            Watts::new(65.0),
            Joules::from_watt_hours(150.0),
            Ratio::new_clamped(0.3),
        )
    }

    #[test]
    fn covers_all_splits() {
        let points = sweep();
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].sc_servers, 0);
        assert_eq!(points[4].sc_servers, 4);
        assert!((points[2].r_lambda().get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interior_optimum_exists() {
        // The paper's Figure 6 finding: the best split is neither
        // all-battery nor all-SC.
        let points = sweep();
        let best = points
            .iter()
            .max_by(|a, b| a.runtime.get().partial_cmp(&b.runtime.get()).unwrap())
            .unwrap();
        assert!(
            best.sc_servers > 0 && best.sc_servers < 4,
            "optimum at the boundary: {} of 4",
            best.sc_servers
        );
    }

    #[test]
    fn heavy_sc_assignment_hurts_runtime() {
        // Assigning everything to the (smaller) SC pool shortens uptime
        // noticeably vs the optimum — the paper reports ~25 %.
        let points = sweep();
        let best = points
            .iter()
            .map(|p| p.runtime.get())
            .fold(0.0_f64, f64::max);
        let all_sc = points.last().unwrap().runtime.get();
        assert!(
            all_sc < 0.9 * best,
            "all-SC runtime {all_sc} should trail the optimum {best}"
        );
    }

    #[test]
    fn all_runtimes_positive() {
        for p in sweep() {
            assert!(p.runtime.get() > 0.0, "split {} never ran", p.sc_servers);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = assignment_sweep(
            0,
            Watts::new(65.0),
            Joules::from_watt_hours(150.0),
            Ratio::new_clamped(0.3),
        );
    }
}
