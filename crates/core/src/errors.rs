//! Typed construction-time errors for the simulation stack.
//!
//! [`SimConfig::try_validate`](crate::SimConfig::try_validate) and
//! [`Simulation::try_new`](crate::Simulation::try_new) return these
//! instead of panicking, so library callers (CLI flag parsing, sweep
//! harnesses) can report bad inputs gracefully. The panicking
//! constructors remain as thin wrappers whose messages are exactly the
//! [`Display`](core::fmt::Display) strings below.

/// Why a simulation could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The workload list was empty.
    NoWorkloads,
    /// The configured rack has zero servers.
    NoServers,
    /// The metering tick is zero or negative.
    NonPositiveTick,
    /// The control slot is shorter than one metering tick.
    SlotShorterThanTick,
    /// The total buffer capacity is zero or negative.
    NonPositiveCapacity,
    /// The utility budget is negative.
    NegativeBudget,
    /// The Holt-Winters seasonal period is below two slots.
    ForecastPeriodTooShort,
    /// The IPDU noise sigma is negative.
    NegativeMeteringNoise,
    /// A PAT bucket width is zero or negative.
    NonPositivePatBucket,
    /// The small-peak threshold is negative.
    NegativeSmallPeakThreshold,
    /// The battery pool was configured with zero strings.
    NoBatteryStrings,
    /// A solar trace with no samples was supplied.
    EmptySolarTrace,
    /// The SC capacity fraction is outside `[0, 1]`.
    ScFractionOutOfRange,
    /// The depth-of-discharge limit is outside `(0, 1]`.
    DodLimitOutOfRange,
    /// The PAT self-optimisation step `Δr` is outside `(0, 1]`.
    DeltaROutOfRange,
    /// A metering history window of zero samples.
    EmptyMeterWindow,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            SimError::NoWorkloads => "need at least one workload",
            SimError::NoServers => "need at least one server",
            SimError::NonPositiveTick => "tick must be positive",
            SimError::SlotShorterThanTick => "slot must span at least one tick",
            SimError::NonPositiveCapacity => "buffer capacity must be positive",
            SimError::NegativeBudget => "budget must be non-negative",
            SimError::ForecastPeriodTooShort => "forecast period must be >= 2",
            SimError::NegativeMeteringNoise => "metering noise must be non-negative",
            SimError::NonPositivePatBucket => "PAT bucket widths must be positive",
            SimError::NegativeSmallPeakThreshold => "threshold must be non-negative",
            SimError::NoBatteryStrings => "need at least one battery string",
            SimError::EmptySolarTrace => "solar trace must contain at least one sample",
            SimError::ScFractionOutOfRange => "sc_fraction must be within [0, 1]",
            SimError::DodLimitOutOfRange => "dod_limit must be within (0, 1]",
            SimError::DeltaROutOfRange => "delta_r must be within (0, 1]",
            SimError::EmptyMeterWindow => "history window must be non-empty",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SimError {}

/// Power-system construction failures map onto the matching simulation
/// errors, so callers assembling a stack can `?` across the crate
/// boundary instead of unwrapping intermediate error types ad hoc.
impl From<heb_powersys::PowerSysError> for SimError {
    fn from(err: heb_powersys::PowerSysError) -> Self {
        use heb_powersys::PowerSysError;
        match err {
            PowerSysError::NegativeBudget => SimError::NegativeBudget,
            PowerSysError::EmptyMeterWindow => SimError::EmptyMeterWindow,
            PowerSysError::NegativeNoise => SimError::NegativeMeteringNoise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_match_panic_messages() {
        // The panicking constructors format these errors verbatim, so
        // the strings are load-bearing for `should_panic(expected)`
        // tests downstream.
        assert_eq!(SimError::NoServers.to_string(), "need at least one server");
        assert_eq!(
            SimError::EmptySolarTrace.to_string(),
            "solar trace must contain at least one sample"
        );
        let err: &dyn std::error::Error = &SimError::NoWorkloads;
        assert!(err.to_string().contains("workload"));
    }
}
