//! The power allocation table (PAT) of Figure 10.
//!
//! The PAT answers: given how much energy each pool holds and how big
//! the predicted mismatch is, what fraction `R_λ` of buffer-powered
//! servers should ride on super-capacitors? Keys are coarse buckets
//! (the paper "formats" results before insertion to bound table size);
//! misses fall back to the nearest stored entry (the paper's
//! `Similar(...)` search); and at the end of every slot the controller
//! either inserts a new entry or nudges the hit entry by `±Δr`
//! depending on which pool drained faster than expected.

use heb_units::{Joules, Ratio, Watts};
use std::collections::BTreeMap;

/// A bucketed PAT key: (SC level, battery level, mismatch) in grid
/// units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PatKey {
    /// SC available energy, in energy-bucket units.
    pub sc_bucket: i64,
    /// Battery available energy, in energy-bucket units.
    pub ba_bucket: i64,
    /// Predicted mismatch, in power-bucket units.
    pub pm_bucket: i64,
}

/// A stored allocation with bookkeeping for the update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatEntry {
    /// The stored load-assignment ratio.
    pub r_lambda: Ratio,
    /// How many slots have hit this entry (diagnostics).
    pub hits: u64,
}

/// The lookup table.
///
/// # Examples
///
/// ```
/// use heb_core::PowerAllocationTable;
/// use heb_units::{Joules, Ratio, Watts};
///
/// let mut pat = PowerAllocationTable::new(
///     Joules::from_watt_hours(10.0),
///     Watts::new(20.0),
///     Ratio::new_clamped(0.01),
/// );
/// let key = pat.key(
///     Joules::from_watt_hours(45.0),
///     Joules::from_watt_hours(105.0),
///     Watts::new(120.0),
/// );
/// pat.insert(key, Ratio::new_clamped(0.4));
/// assert_eq!(pat.lookup(key).unwrap().get(), 0.4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAllocationTable {
    // BTreeMap, not HashMap: the controller reports table contents and
    // the similar-search iterates entries, so iteration order must be
    // deterministic (HEB002).
    entries: BTreeMap<PatKey, PatEntry>,
    energy_bucket: Joules,
    power_bucket: Watts,
    delta_r: Ratio,
}

impl PowerAllocationTable {
    /// Creates an empty table with the given bucket widths and update
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if either bucket width is not positive.
    #[must_use]
    pub fn new(energy_bucket: Joules, power_bucket: Watts, delta_r: Ratio) -> Self {
        assert!(energy_bucket.get() > 0.0, "energy bucket must be positive");
        assert!(power_bucket.get() > 0.0, "power bucket must be positive");
        Self {
            entries: BTreeMap::new(),
            energy_bucket,
            power_bucket,
            delta_r,
        }
    }

    /// Buckets raw state into a key (the paper's `Round(...)`).
    #[must_use]
    pub fn key(&self, sc: Joules, ba: Joules, pm: Watts) -> PatKey {
        PatKey {
            sc_bucket: (sc.get() / self.energy_bucket.get()).round() as i64,
            ba_bucket: (ba.get() / self.energy_bucket.get()).round() as i64,
            pm_bucket: (pm.get() / self.power_bucket.get()).round() as i64,
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact lookup (Figure 10 lines 2–6).
    #[must_use]
    pub fn lookup(&self, key: PatKey) -> Option<Ratio> {
        self.entries.get(&key).map(|e| e.r_lambda)
    }

    /// Exact-then-similar lookup (lines 2–10): on a miss, returns the
    /// entry with the smallest squared bucket distance, ties broken by
    /// insertion-independent ordering on the key.
    #[must_use]
    pub fn lookup_similar(&self, key: PatKey) -> Option<(PatKey, Ratio)> {
        if let Some(r) = self.lookup(key) {
            return Some((key, r));
        }
        self.entries
            .iter()
            .min_by_key(|(k, _)| {
                let d_sc = k.sc_bucket - key.sc_bucket;
                let d_ba = k.ba_bucket - key.ba_bucket;
                let d_pm = k.pm_bucket - key.pm_bucket;
                (
                    d_sc * d_sc + d_ba * d_ba + d_pm * d_pm,
                    k.sc_bucket,
                    k.ba_bucket,
                    k.pm_bucket,
                )
            })
            .map(|(k, e)| (*k, e.r_lambda))
    }

    /// Inserts a new entry (lines 13–15). Overwrites an existing one.
    pub fn insert(&mut self, key: PatKey, r_lambda: Ratio) {
        self.entries.insert(
            key,
            PatEntry {
                r_lambda: r_lambda.clamp_unit(),
                hits: 0,
            },
        );
    }

    /// The slot-end update (lines 16–23): compares how the SC:battery
    /// energy ratio evolved over the slot against the starting ratio
    /// and nudges `R_λ` by `±Δr`.
    ///
    /// * Ratio grew (battery drained relatively faster than expected) →
    ///   shift more load onto SCs: `R_λ += Δr`.
    /// * Ratio shrank → shift load back to batteries: `R_λ −= Δr`.
    ///
    /// No-op when the key is absent (callers insert first).
    pub fn update(
        &mut self,
        key: PatKey,
        sc_start: Joules,
        ba_start: Joules,
        sc_end: Joules,
        ba_end: Joules,
    ) {
        let Some(entry) = self.entries.get_mut(&key) else {
            return;
        };
        entry.hits += 1;
        let start_ratio = safe_ratio(sc_start, ba_start);
        let end_ratio = safe_ratio(sc_end, ba_end);
        let dr = self.delta_r.get();
        let r = entry.r_lambda.get();
        if end_ratio > start_ratio {
            entry.r_lambda = Ratio::new_clamped(r + dr);
        } else if end_ratio < start_ratio {
            entry.r_lambda = Ratio::new_clamped(r - dr);
        }
    }

    /// Diagnostics view of an entry.
    #[must_use]
    pub fn entry(&self, key: PatKey) -> Option<&PatEntry> {
        self.entries.get(&key)
    }

    /// Iterates all `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PatKey, &PatEntry)> {
        self.entries.iter()
    }
}

/// SC:battery energy ratio with an empty-battery guard: an empty
/// battery pool maps to +∞ so the comparison still orders correctly.
fn safe_ratio(sc: Joules, ba: Joules) -> f64 {
    if ba.get() <= 1e-9 {
        if sc.get() <= 1e-9 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        sc.get() / ba.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PowerAllocationTable {
        PowerAllocationTable::new(
            Joules::from_watt_hours(10.0),
            Watts::new(20.0),
            Ratio::new_clamped(0.01),
        )
    }

    fn wh(x: f64) -> Joules {
        Joules::from_watt_hours(x)
    }

    #[test]
    fn bucketing_rounds_to_grid() {
        let pat = table();
        let a = pat.key(wh(42.0), wh(102.0), Watts::new(118.0));
        let b = pat.key(wh(44.0), wh(104.0), Watts::new(122.0));
        assert_eq!(a, b, "nearby states share a bucket");
        let c = pat.key(wh(75.0), wh(104.0), Watts::new(118.0));
        assert_ne!(a, c);
    }

    #[test]
    fn exact_lookup() {
        let mut pat = table();
        let key = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        assert!(pat.lookup(key).is_none());
        pat.insert(key, Ratio::new_clamped(0.35));
        assert_eq!(pat.lookup(key).unwrap().get(), 0.35);
        assert_eq!(pat.len(), 1);
    }

    #[test]
    fn similar_search_finds_nearest() {
        let mut pat = table();
        let near = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        let far = pat.key(wh(10.0), wh(20.0), Watts::new(40.0));
        pat.insert(near, Ratio::new_clamped(0.4));
        pat.insert(far, Ratio::new_clamped(0.9));
        let probe = pat.key(wh(50.0), wh(100.0), Watts::new(120.0));
        let (hit, r) = pat.lookup_similar(probe).unwrap();
        assert_eq!(hit, near);
        assert_eq!(r.get(), 0.4);
    }

    #[test]
    fn similar_search_on_empty_table_is_none() {
        let pat = table();
        let probe = pat.key(wh(1.0), wh(1.0), Watts::new(1.0));
        assert!(pat.lookup_similar(probe).is_none());
    }

    #[test]
    fn update_nudges_toward_sc_when_battery_drains_fast() {
        let mut pat = table();
        let key = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        pat.insert(key, Ratio::new_clamped(0.30));
        // Battery fell 100→60 Wh, SC 40→35: ratio rose 0.4→0.58.
        pat.update(key, wh(40.0), wh(100.0), wh(35.0), wh(60.0));
        assert!((pat.lookup(key).unwrap().get() - 0.31).abs() < 1e-12);
        assert_eq!(pat.entry(key).unwrap().hits, 1);
    }

    #[test]
    fn update_nudges_toward_battery_when_sc_drains_fast() {
        let mut pat = table();
        let key = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        pat.insert(key, Ratio::new_clamped(0.30));
        // SC fell 40→10, battery 100→95: ratio fell.
        pat.update(key, wh(40.0), wh(100.0), wh(10.0), wh(95.0));
        assert!((pat.lookup(key).unwrap().get() - 0.29).abs() < 1e-12);
    }

    #[test]
    fn update_is_noop_for_unchanged_ratio_or_missing_key() {
        let mut pat = table();
        let key = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        pat.update(key, wh(40.0), wh(100.0), wh(20.0), wh(50.0));
        assert!(pat.is_empty(), "missing key must not be created");
        pat.insert(key, Ratio::new_clamped(0.5));
        // Equal drain keeps the ratio: 40/100 == 20/50.
        pat.update(key, wh(40.0), wh(100.0), wh(20.0), wh(50.0));
        assert_eq!(pat.lookup(key).unwrap().get(), 0.5);
    }

    #[test]
    fn update_clamps_at_unit_interval() {
        let mut pat = table();
        let key = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        pat.insert(key, Ratio::new_clamped(0.995));
        for _ in 0..5 {
            pat.update(key, wh(40.0), wh(100.0), wh(40.0), wh(50.0));
        }
        assert_eq!(pat.lookup(key).unwrap().get(), 1.0);
    }

    #[test]
    fn empty_battery_counts_as_infinite_ratio() {
        let mut pat = table();
        let key = pat.key(wh(40.0), wh(100.0), Watts::new(120.0));
        pat.insert(key, Ratio::new_clamped(0.5));
        // Battery hit empty during the slot: ratio -> infinity -> +Δr.
        pat.update(key, wh(40.0), wh(100.0), wh(30.0), wh(0.0));
        assert!((pat.lookup(key).unwrap().get() - 0.51).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "energy bucket")]
    fn zero_bucket_panics() {
        let _ = PowerAllocationTable::new(Joules::zero(), Watts::new(1.0), Ratio::ZERO);
    }
}
