//! The hControl slot-level decision loop (Section 5).

use crate::config::SimConfig;
use crate::pat::{PatKey, PowerAllocationTable};
use crate::policy::{ChargePriority, DischargePriority, PeakSize, PolicyKind};
use heb_forecast::{HoltWinters, LastValue, Predictor};
use heb_telemetry::{null_recorder, ControllerEvent, Event, RecorderHandle};
use heb_units::{Joules, Ratio, Watts};

/// The slot forecaster: either the paper's Holt-Winters or the naive
/// last-value model that `HEB-F` amounts to.
#[derive(Debug, Clone)]
enum SlotPredictor {
    HoltWinters(HoltWinters),
    Naive(LastValue),
}

impl SlotPredictor {
    fn observe(&mut self, value: f64) {
        match self {
            SlotPredictor::HoltWinters(p) => p.observe(value),
            SlotPredictor::Naive(p) => p.observe(value),
        }
    }

    fn forecast(&self) -> f64 {
        match self {
            SlotPredictor::HoltWinters(p) => p.forecast(1),
            SlotPredictor::Naive(p) => p.forecast(1),
        }
    }
}

/// The controller's decision for one control slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotPlan {
    /// Predicted net mismatch `ΔPM = P_peak − P_valley` for the slot.
    pub predicted_mismatch: Watts,
    /// Small/large classification of the predicted peak.
    pub peak_size: PeakSize,
    /// Load-assignment ratio: fraction of buffer-carried load on SCs.
    pub r_lambda: Ratio,
    /// Discharge routing for the slot.
    pub discharge: DischargePriority,
    /// Charge routing for the slot.
    pub charge: ChargePriority,
}

/// State remembered from `begin_slot` so `end_slot` can run the PAT
/// update against the right entry.
#[derive(Debug, Clone, Copy)]
struct OpenSlot {
    sc_start: Joules,
    ba_start: Joules,
    r_used: Ratio,
    matched_key: Option<PatKey>,
    planned_size: PeakSize,
}

/// The hControl decision component.
///
/// Drive it with [`HebController::begin_slot`] at each slot boundary and
/// [`HebController::end_slot`] when the slot's actual peak/valley and
/// final buffer levels are known.
///
/// # Examples
///
/// ```
/// use heb_core::{HebController, SimConfig};
/// use heb_units::{Joules, Watts};
///
/// let config = SimConfig::prototype();
/// let mut ctl = HebController::new(&config);
/// let plan = ctl.begin_slot(
///     Joules::from_watt_hours(45.0),
///     Joules::from_watt_hours(105.0),
/// );
/// assert!(plan.r_lambda.in_unit_interval());
/// ```
#[derive(Debug, Clone)]
pub struct HebController {
    policy: PolicyKind,
    peak_predictor: SlotPredictor,
    valley_predictor: SlotPredictor,
    pat: PowerAllocationTable,
    small_peak_threshold: Watts,
    open_slot: Option<OpenSlot>,
    slots_completed: u64,
    /// Last trustworthy metered peak/valley, kept for degraded
    /// operation when the metering path goes dark.
    last_peak: Option<f64>,
    last_valley: Option<f64>,
    /// When set, predictions come from the last good values instead of
    /// the (stale-fed) forecaster.
    degraded: bool,
    /// Telemetry sink (default null); `trace` caches `is_enabled()` so
    /// the hot path pays one bool test, not a virtual call.
    recorder: RecorderHandle,
    trace: bool,
}

impl HebController {
    /// Creates a controller for the configured policy.
    ///
    /// For `HEB-S` the PAT is pre-populated with a coarse static profile
    /// (the paper's pilot-run table) and never updated afterwards.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        let make_predictor = || {
            if config.policy.uses_holt_winters() {
                SlotPredictor::HoltWinters(HoltWinters::for_power_series(config.forecast_period))
            } else {
                SlotPredictor::Naive(LastValue::new())
            }
        };
        let mut pat = PowerAllocationTable::new(
            config.pat_energy_bucket,
            config.pat_power_bucket,
            config.delta_r,
        );
        if config.policy == PolicyKind::HebS {
            Self::populate_static_profile(&mut pat, config);
        }
        Self {
            policy: config.policy,
            peak_predictor: make_predictor(),
            valley_predictor: make_predictor(),
            pat,
            small_peak_threshold: config.small_peak_threshold,
            open_slot: None,
            slots_completed: 0,
            last_peak: None,
            last_valley: None,
            degraded: false,
            recorder: null_recorder(),
            trace: false,
        }
    }

    /// Routes this controller's decisions (slot plans, PAT changes,
    /// degraded-mode flips) to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.trace = recorder.is_enabled();
        self.recorder = recorder;
    }

    /// Seeds the coarse pilot-run profile used by `HEB-S`: a sparse grid
    /// over buffer levels and mismatch magnitudes whose `R_λ` follows
    /// the available-energy share of the SC pool (the Figure 6
    /// observation: runtime is maximised near the proportional split).
    fn populate_static_profile(pat: &mut PowerAllocationTable, config: &SimConfig) {
        let total = config.total_capacity;
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let mismatches = [0.25, 0.5, 1.0];
        let sc_cap = total.get() * config.sc_fraction.get();
        let ba_cap = total.get() - sc_cap;
        let max_mismatch = 70.0 * config.servers as f64;
        for &fs in &fractions {
            for &fb in &fractions {
                for &fm in &mismatches {
                    let sc = Joules::new(sc_cap * fs);
                    let ba = Joules::new(ba_cap * fb);
                    let pm = Watts::new(max_mismatch * fm);
                    let share = if sc.get() + ba.get() > 0.0 {
                        sc.get() / (sc.get() + ba.get())
                    } else {
                        0.0
                    };
                    pat.insert(pat.key(sc, ba, pm), Ratio::new_clamped(share));
                }
            }
        }
    }

    /// The policy driving this controller.
    #[must_use]
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Read-only access to the PAT (diagnostics, experiments).
    #[must_use]
    pub fn pat(&self) -> &PowerAllocationTable {
        &self.pat
    }

    /// Number of slots for which `end_slot` has run.
    #[must_use]
    pub fn slots_completed(&self) -> u64 {
        self.slots_completed
    }

    /// Classifies a predicted mismatch (Section 5.2's small/large
    /// dichotomy).
    #[must_use]
    pub fn classify(&self, mismatch: Watts) -> PeakSize {
        if mismatch <= self.small_peak_threshold {
            PeakSize::Small
        } else {
            PeakSize::Large
        }
    }

    /// Runs the slot-start decision (Figure 10 lines 1–11): predicts
    /// `ΔPM`, classifies it, and selects `R_λ`.
    pub fn begin_slot(&mut self, sc_available: Joules, ba_available: Joules) -> SlotPlan {
        // Degraded mode: the metering path is unreliable, so the
        // forecaster's state cannot be trusted to extrapolate. Fall
        // back to the last slot that was fully metered.
        let (p_peak, p_valley) = if self.degraded {
            (
                self.last_peak.unwrap_or(0.0).max(0.0),
                self.last_valley.unwrap_or(0.0).max(0.0),
            )
        } else {
            (
                self.peak_predictor.forecast().max(0.0),
                self.valley_predictor.forecast().max(0.0),
            )
        };
        let mismatch = Watts::new((p_peak - p_valley).max(0.0));
        let peak_size = self.classify(mismatch);

        let (r_lambda, matched_key) = if self.policy.uses_pat() {
            match peak_size {
                PeakSize::Small => (Ratio::ONE, None),
                PeakSize::Large => {
                    let key = self.pat.key(sc_available, ba_available, mismatch);
                    match self.pat.lookup_similar(key) {
                        Some((hit, r)) => (r, Some(hit)),
                        None => {
                            // Cold table: start from the available-energy
                            // share, the Figure 6 heuristic.
                            let total = sc_available.get() + ba_available.get();
                            let share = if total > 0.0 {
                                sc_available.get() / total
                            } else {
                                0.0
                            };
                            (Ratio::new_clamped(share), None)
                        }
                    }
                }
            }
        } else {
            (Ratio::ZERO, None)
        };

        self.open_slot = Some(OpenSlot {
            sc_start: sc_available,
            ba_start: ba_available,
            r_used: r_lambda,
            matched_key,
            planned_size: peak_size,
        });

        let plan = SlotPlan {
            predicted_mismatch: mismatch,
            peak_size,
            r_lambda,
            discharge: self.policy.discharge_priority(peak_size),
            charge: self.policy.charge_priority(),
        };
        if self.trace {
            self.recorder
                .record(&Event::Controller(ControllerEvent::SlotPlanned {
                    slot: self.slots_completed,
                    predicted_mismatch: plan.predicted_mismatch,
                    peak_size: plan.peak_size.name(),
                    r_lambda: plan.r_lambda.get(),
                    discharge: plan.discharge.name(),
                    charge: plan.charge.name(),
                }));
        }
        plan
    }

    /// Runs the slot-end bookkeeping (Figure 10 lines 12–23): feeds the
    /// observed peak/valley into the predictors and inserts/updates the
    /// PAT entry for optimising policies.
    pub fn end_slot(
        &mut self,
        actual_peak: Watts,
        actual_valley: Watts,
        sc_end: Joules,
        ba_end: Joules,
    ) {
        self.peak_predictor.observe(actual_peak.get().max(0.0));
        self.valley_predictor.observe(actual_valley.get().max(0.0));
        self.last_peak = Some(actual_peak.get().max(0.0));
        self.last_valley = Some(actual_valley.get().max(0.0));
        // A fully metered slot just closed: fresh data is flowing again.
        if self.trace && self.degraded {
            self.recorder
                .record(&Event::Controller(ControllerEvent::ForecastDegraded {
                    slot: self.slots_completed,
                    degraded: false,
                }));
        }
        self.degraded = false;
        self.slots_completed += 1;

        let Some(open) = self.open_slot.take() else {
            return;
        };
        if !self.policy.optimizes_pat() {
            return;
        }
        let actual_pm = (actual_peak - actual_valley).max(Watts::zero());
        // Only slots that actually exercised a split carry meaningful
        // R_λ information: the slot must have been *planned* large (so
        // `r_used` drove a split) and the realised mismatch must have
        // been large too.
        if open.planned_size == PeakSize::Small || self.classify(actual_pm) == PeakSize::Small {
            return;
        }
        match open.matched_key {
            Some(key) => {
                self.pat
                    .update(key, open.sc_start, open.ba_start, sc_end, ba_end);
                if self.trace {
                    self.recorder
                        .record(&Event::Controller(ControllerEvent::PatUpdated {
                            slot: self.slots_completed,
                        }));
                }
            }
            None => {
                // New entry keyed by the *actual* demand (line 14's
                // Round on real measurements).
                let key = self.pat.key(open.sc_start, open.ba_start, actual_pm);
                self.pat.insert(key, open.r_used);
                if self.trace {
                    self.recorder
                        .record(&Event::Controller(ControllerEvent::PatInserted {
                            slot: self.slots_completed,
                            r_lambda: open.r_used.get(),
                        }));
                }
            }
        }
    }

    /// Closes a slot for which metering was mostly or entirely missing.
    ///
    /// The slot still counts, but nothing is fed to the predictors and
    /// no PAT update runs — a blind slot carries no trustworthy
    /// peak/valley observation, and learning from garbage would poison
    /// both the forecast state and the table. Pair this with
    /// [`HebController::set_forecast_degraded`] so the next
    /// [`HebController::begin_slot`] plans from the last good values.
    pub fn end_slot_unmetered(&mut self) {
        self.slots_completed += 1;
        self.open_slot = None;
    }

    /// Switches degraded forecasting on or off. While degraded,
    /// [`HebController::begin_slot`] plans from the last fully metered
    /// slot instead of the forecaster. The flag self-clears on the next
    /// healthy [`HebController::end_slot`].
    pub fn set_forecast_degraded(&mut self, degraded: bool) {
        if self.trace && self.degraded != degraded {
            self.recorder
                .record(&Event::Controller(ControllerEvent::ForecastDegraded {
                    slot: self.slots_completed,
                    degraded,
                }));
        }
        self.degraded = degraded;
    }

    /// Whether the controller is currently planning from last-good
    /// values rather than live forecasts.
    #[must_use]
    pub fn is_forecast_degraded(&self) -> bool {
        self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wh(x: f64) -> Joules {
        Joules::from_watt_hours(x)
    }

    fn controller(policy: PolicyKind) -> HebController {
        HebController::new(&SimConfig::prototype().with_policy(policy))
    }

    /// Drives `n` identical slots of the given peak/valley through the
    /// controller, returning the last plan.
    fn drive_slots(
        ctl: &mut HebController,
        n: usize,
        peak: f64,
        valley: f64,
        sc: f64,
        ba: f64,
    ) -> SlotPlan {
        let mut plan = ctl.begin_slot(wh(sc), wh(ba));
        for _ in 0..n {
            ctl.end_slot(Watts::new(peak), Watts::new(valley), wh(sc), wh(ba));
            plan = ctl.begin_slot(wh(sc), wh(ba));
        }
        plan
    }

    #[test]
    fn classification_threshold() {
        let ctl = controller(PolicyKind::HebD);
        assert_eq!(ctl.classify(Watts::new(50.0)), PeakSize::Small);
        assert_eq!(ctl.classify(Watts::new(80.0)), PeakSize::Small);
        assert_eq!(ctl.classify(Watts::new(81.0)), PeakSize::Large);
    }

    #[test]
    fn small_peaks_route_everything_to_sc() {
        let mut ctl = controller(PolicyKind::HebD);
        let plan = drive_slots(&mut ctl, 8, 300.0, 260.0, 45.0, 105.0);
        assert_eq!(plan.peak_size, PeakSize::Small);
        assert_eq!(plan.r_lambda, Ratio::ONE);
        assert_eq!(plan.discharge, DischargePriority::ScThenBattery);
    }

    #[test]
    fn large_peaks_split_between_pools() {
        let mut ctl = controller(PolicyKind::HebD);
        let plan = drive_slots(&mut ctl, 10, 420.0, 260.0, 45.0, 105.0);
        assert_eq!(plan.peak_size, PeakSize::Large);
        assert_eq!(plan.discharge, DischargePriority::Split);
        assert!(plan.r_lambda.get() > 0.0 && plan.r_lambda.get() < 1.0);
    }

    #[test]
    fn heb_d_learns_pat_entries() {
        let mut ctl = controller(PolicyKind::HebD);
        assert!(ctl.pat().is_empty());
        drive_slots(&mut ctl, 10, 420.0, 260.0, 45.0, 105.0);
        assert!(!ctl.pat().is_empty(), "large peaks must populate the PAT");
    }

    #[test]
    fn heb_s_profile_is_static() {
        let mut ctl = controller(PolicyKind::HebS);
        let before = ctl.pat().len();
        assert!(before > 0, "HEB-S ships a pilot profile");
        drive_slots(&mut ctl, 10, 420.0, 260.0, 45.0, 105.0);
        assert_eq!(ctl.pat().len(), before, "HEB-S never grows its table");
    }

    #[test]
    fn non_pat_policies_keep_empty_tables() {
        for policy in [PolicyKind::BaOnly, PolicyKind::BaFirst, PolicyKind::ScFirst] {
            let mut ctl = controller(policy);
            drive_slots(&mut ctl, 6, 420.0, 260.0, 45.0, 105.0);
            assert!(ctl.pat().is_empty(), "{policy} must not use the PAT");
        }
    }

    #[test]
    fn pat_update_shifts_r_lambda_toward_lagging_pool() {
        let mut ctl = controller(PolicyKind::HebD);
        // Slot 1: warms the predictors (planned small, no PAT effect).
        ctl.begin_slot(wh(45.0), wh(105.0));
        ctl.end_slot(Watts::new(420.0), Watts::new(260.0), wh(45.0), wh(105.0));
        // Slot 2: planned large on a cold table -> inserts the entry.
        ctl.begin_slot(wh(45.0), wh(105.0));
        ctl.end_slot(Watts::new(420.0), Watts::new(260.0), wh(45.0), wh(105.0));
        let plan = ctl.begin_slot(wh(45.0), wh(105.0));
        let before = plan.r_lambda.get();
        // Slot 3 hits the entry; battery drains disproportionately, so
        // the Δr update must shift load toward the SC pool.
        ctl.end_slot(Watts::new(420.0), Watts::new(260.0), wh(44.0), wh(70.0));
        let plan = ctl.begin_slot(wh(45.0), wh(105.0));
        assert!(
            plan.r_lambda.get() > before,
            "R_λ should rise when battery drains fast: {before} -> {}",
            plan.r_lambda.get()
        );
    }

    #[test]
    fn first_slot_without_history_is_small() {
        let mut ctl = controller(PolicyKind::HebD);
        let plan = ctl.begin_slot(wh(45.0), wh(105.0));
        assert_eq!(plan.predicted_mismatch, Watts::zero());
        assert_eq!(plan.peak_size, PeakSize::Small);
    }

    #[test]
    fn slots_completed_counts_end_slots() {
        let mut ctl = controller(PolicyKind::BaOnly);
        drive_slots(&mut ctl, 4, 300.0, 200.0, 0.0, 150.0);
        assert_eq!(ctl.slots_completed(), 4);
    }

    #[test]
    fn degraded_mode_plans_from_last_good_slot() {
        let mut ctl = controller(PolicyKind::HebD);
        // Two healthy slots establish 420/260 as the last good values.
        drive_slots(&mut ctl, 2, 420.0, 260.0, 45.0, 105.0);
        // Meters go dark: the controller must keep planning a 160 W
        // mismatch from memory, not from a stale forecaster.
        ctl.set_forecast_degraded(true);
        assert!(ctl.is_forecast_degraded());
        let plan = ctl.begin_slot(wh(45.0), wh(105.0));
        assert_eq!(plan.predicted_mismatch, Watts::new(160.0));
        // A healthy slot end clears the flag.
        ctl.end_slot(Watts::new(400.0), Watts::new(280.0), wh(45.0), wh(105.0));
        assert!(!ctl.is_forecast_degraded());
    }

    #[test]
    fn degraded_mode_without_history_predicts_zero() {
        let mut ctl = controller(PolicyKind::HebD);
        ctl.set_forecast_degraded(true);
        let plan = ctl.begin_slot(wh(45.0), wh(105.0));
        assert_eq!(plan.predicted_mismatch, Watts::zero());
        assert_eq!(plan.peak_size, PeakSize::Small);
    }

    #[test]
    fn unmetered_slot_counts_but_never_learns() {
        let mut ctl = controller(PolicyKind::HebD);
        drive_slots(&mut ctl, 3, 420.0, 260.0, 45.0, 105.0);
        let pat_before = ctl.pat().len();
        let slots_before = ctl.slots_completed();
        let plan_before = {
            let mut probe = ctl.clone();
            probe.begin_slot(wh(45.0), wh(105.0)).predicted_mismatch
        };
        ctl.begin_slot(wh(45.0), wh(105.0));
        ctl.end_slot_unmetered();
        assert_eq!(ctl.slots_completed(), slots_before + 1);
        assert_eq!(ctl.pat().len(), pat_before, "blind slot must not touch PAT");
        // Predictor state untouched: the next forecast matches what it
        // would have been before the blind slot.
        let plan_after = ctl.begin_slot(wh(45.0), wh(105.0)).predicted_mismatch;
        assert_eq!(plan_after, plan_before);
    }

    #[test]
    fn heb_f_uses_last_value_prediction() {
        let mut ctl = controller(PolicyKind::HebF);
        // One observed slot of 420/260 ...
        ctl.begin_slot(wh(45.0), wh(105.0));
        ctl.end_slot(Watts::new(420.0), Watts::new(260.0), wh(45.0), wh(105.0));
        // ... is parroted verbatim as the next prediction.
        let plan = ctl.begin_slot(wh(45.0), wh(105.0));
        assert_eq!(plan.predicted_mismatch, Watts::new(160.0));
    }
}
